//! End-to-end campaign deployment over the simulated network.
//!
//! This wires the whole of Figure 1 together as [`simnet`] actors:
//! a Honeycomb uploads its task to the Hive, the Hive offloads the script to
//! every registered device, devices execute it on their own schedule and
//! stream records back, and the Hive forwards them to the Honeycomb.
//! Experiment E4 measures deployment latency and collection throughput on
//! this pipeline as the population grows.
//!
//! Time convention: 1 simulated millisecond = 1 wall-clock millisecond;
//! device clocks map to mobility [`Timestamp`]s as
//! `start_time + sim_ms / 1000`.

use crate::device::{Device, DeviceId, SensedRecord};
use crate::hive::TaskId;
use crate::honeycomb::SensingTask;
use crate::script::{Script, Value};
use mobility::gen::{CityModel, PopulationConfig};
use mobility::{Timestamp, Trajectory, UserId};
use simnet::wire::{Decode, Encode};
use simnet::{Actor, Context, LinkModel, Message, NodeId, SimTime, Simulation};
use std::collections::BTreeMap;

/// Message kinds used by the deployment protocol.
mod kind {
    /// Honeycomb → Hive: publish a task.
    pub const TASK_UPLOAD: u16 = 1;
    /// Hive → device: offload a task script.
    pub const TASK_DEPLOY: u16 = 2;
    /// Device → Hive: deployment acknowledgement.
    pub const DEPLOY_ACK: u16 = 3;
    /// Device → Hive: a batch of sensed records.
    pub const RECORDS: u16 = 4;
    /// Hive → Honeycomb: forwarded records.
    pub const RECORDS_FORWARD: u16 = 5;
}

/// Wire form of a record batch entry.
type WireRecord = (u64, (u64, (i64, String)));

fn encode_records(records: &[SensedRecord]) -> Vec<u8> {
    let entries: Vec<WireRecord> = records
        .iter()
        .map(|r| {
            let payload = r.payload.to_json();
            (r.user.0, (r.device.0, (r.time.seconds(), payload)))
        })
        .collect();
    entries.encode_to_vec()
}

fn decode_records(task: TaskId, payload: &[u8]) -> Vec<SensedRecord> {
    let Ok(entries) = Vec::<WireRecord>::decode_from_slice(payload) else {
        return Vec::new();
    };
    entries
        .into_iter()
        .map(|(user, (device, (time, json)))| SensedRecord {
            task,
            user: UserId(user),
            device: DeviceId(device),
            time: Timestamp::new(time),
            payload: Value::from_json(&json).unwrap_or(Value::Null),
        })
        .collect()
}

/// The Honeycomb endpoint actor: uploads the task once, then accumulates
/// forwarded records.
#[derive(Debug)]
pub struct HoneycombActor {
    hive: NodeId,
    task_name: String,
    script_source: String,
    sampling_interval_s: i64,
    min_battery: f64,
    /// Records received back, in arrival order.
    pub received: Vec<SensedRecord>,
}

impl HoneycombActor {
    /// Creates the actor from a task definition.
    pub fn new(hive: NodeId, task: &SensingTask) -> Self {
        Self {
            hive,
            task_name: task.name().to_string(),
            script_source: task.script().source().to_string(),
            sampling_interval_s: task.sampling_interval_s(),
            min_battery: task.min_battery(),
            received: Vec::new(),
        }
    }
}

impl Actor for HoneycombActor {
    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer_id: u64) {
        // Fired once at campaign start: upload the task to the Hive.
        let payload = (
            self.task_name.clone(),
            (
                self.script_source.clone(),
                (self.sampling_interval_s, self.min_battery),
            ),
        )
            .encode_to_vec();
        ctx.send(self.hive, Message::event(kind::TASK_UPLOAD, payload));
    }

    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, msg: Message) {
        if msg.kind == kind::RECORDS_FORWARD {
            self.received
                .extend(decode_records(TaskId(msg.request_id), &msg.payload));
        }
    }
}

/// The Hive actor: offloads uploaded tasks to the device fleet and routes
/// records back to the owning Honeycomb.
#[derive(Debug)]
pub struct HiveActor {
    devices: Vec<NodeId>,
    honeycomb_of: BTreeMap<u64, NodeId>,
    next_task: u64,
    /// Deployment acknowledgement times per task, in sim milliseconds.
    pub ack_times_ms: BTreeMap<u64, Vec<u64>>,
    /// When each task was offloaded, in sim milliseconds.
    pub deploy_start_ms: BTreeMap<u64, u64>,
    /// Records routed through the Hive.
    pub routed_records: u64,
}

impl HiveActor {
    /// Creates the actor with the fleet's node addresses.
    pub fn new(devices: Vec<NodeId>) -> Self {
        Self {
            devices,
            honeycomb_of: BTreeMap::new(),
            next_task: 0,
            ack_times_ms: BTreeMap::new(),
            deploy_start_ms: BTreeMap::new(),
            routed_records: 0,
        }
    }
}

impl Actor for HiveActor {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Message) {
        match msg.kind {
            kind::TASK_UPLOAD => {
                self.next_task += 1;
                let task_id = self.next_task;
                self.honeycomb_of.insert(task_id, from);
                self.deploy_start_ms.insert(task_id, ctx.now().as_millis());
                for device in self.devices.clone() {
                    // The deploy message carries the task id as the RPC
                    // correlation id so acks and records can be routed.
                    ctx.send(
                        device,
                        Message {
                            kind: kind::TASK_DEPLOY,
                            request_id: task_id,
                            payload: msg.payload.clone(),
                        },
                    );
                }
            }
            kind::DEPLOY_ACK => {
                self.ack_times_ms
                    .entry(msg.request_id)
                    .or_default()
                    .push(ctx.now().as_millis());
            }
            kind::RECORDS => {
                let task_id = msg.request_id;
                if let Some(&honeycomb) = self.honeycomb_of.get(&task_id) {
                    self.routed_records += 1;
                    ctx.send(
                        honeycomb,
                        Message {
                            kind: kind::RECORDS_FORWARD,
                            request_id: task_id,
                            payload: msg.payload,
                        },
                    );
                }
            }
            _ => {}
        }
    }
}

/// A device actor: runs the client runtime, samples on its schedule and
/// uploads its outbox.
#[derive(Debug)]
pub struct DeviceActor {
    device: Device,
    hive: NodeId,
    start_time: Timestamp,
    task: Option<(u64, i64)>,
    /// Records uploaded so far.
    pub uploaded: u64,
}

impl DeviceActor {
    /// Creates the actor.
    pub fn new(device: Device, hive: NodeId, start_time: Timestamp) -> Self {
        Self {
            device,
            hive,
            start_time,
            task: None,
            uploaded: 0,
        }
    }

    fn device_time(&self, now: SimTime) -> Timestamp {
        self.start_time + (now.as_millis() / 1_000) as i64
    }
}

impl Actor for DeviceActor {
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, msg: Message) {
        if msg.kind != kind::TASK_DEPLOY {
            return;
        }
        let Ok((_name, (source, (interval_s, min_battery)))) =
            <(String, (String, (i64, f64)))>::decode_from_slice(&msg.payload)
        else {
            return;
        };
        let Ok(script) = Script::compile(&source) else {
            return;
        };
        let task_id = msg.request_id;
        let now = self.device_time(ctx.now());
        self.device
            .install(TaskId(task_id), script, interval_s, min_battery, now);
        self.task = Some((task_id, interval_s));
        ctx.send(
            self.hive,
            Message {
                kind: kind::DEPLOY_ACK,
                request_id: task_id,
                payload: Vec::new().into(),
            },
        );
        // Start the sampling loop.
        ctx.set_timer(0, task_id);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer_id: u64) {
        let Some((task_id, interval_s)) = self.task else {
            return;
        };
        if timer_id != task_id {
            return;
        }
        let now = self.device_time(ctx.now());
        self.device.tick(now);
        let outbox = self.device.drain_outbox();
        if !outbox.is_empty() {
            self.uploaded += outbox.len() as u64;
            ctx.send(
                self.hive,
                Message {
                    kind: kind::RECORDS,
                    request_id: task_id,
                    payload: encode_records(&outbox).into(),
                },
            );
        }
        if !self.device.battery().is_depleted() {
            ctx.set_timer((interval_s * 1_000) as u64, task_id);
        }
    }
}

/// Configuration of a simulated campaign (experiment E4).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Fleet size.
    pub devices: usize,
    /// Campaign duration, in simulated seconds.
    pub duration_s: u64,
    /// Device ↔ Hive link model.
    pub device_link: LinkModel,
    /// Honeycomb ↔ Hive link model.
    pub backbone_link: LinkModel,
    /// RNG seed (drives mobility and the network).
    pub seed: u64,
    /// On-device sampling interval, seconds.
    pub sampling_interval_s: i64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            devices: 50,
            duration_s: 6 * 3_600,
            device_link: LinkModel::mobile(),
            backbone_link: LinkModel::wan(),
            seed: 0xE4,
            sampling_interval_s: 300,
        }
    }
}

/// Outcome of a simulated campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Devices the task was offloaded to.
    pub deployed_devices: usize,
    /// Devices that acknowledged the deployment.
    pub acked_devices: usize,
    /// Median time from upload to device acknowledgement, milliseconds.
    pub deploy_latency_p50_ms: u64,
    /// 95th-percentile deployment latency, milliseconds.
    pub deploy_latency_p95_ms: u64,
    /// Records received by the Honeycomb.
    pub records_received: usize,
    /// Records uploaded by devices.
    pub records_uploaded: u64,
    /// Collection throughput, records per simulated second.
    pub throughput_rps: f64,
    /// Network delivery ratio.
    pub delivery_ratio: f64,
}

/// Runs a full campaign and reports platform metrics.
pub fn run_campaign(task: &SensingTask, config: &CampaignConfig) -> CampaignReport {
    // Synthetic population: one device per user, trajectories from the city
    // model (enough days to cover the campaign).
    let days = (config.duration_s / 86_400 + 2) as usize;
    let city = CityModel::builder().seed(config.seed).build();
    let data = city.generate_population(&PopulationConfig {
        users: config.devices,
        days,
        sampling_interval_s: 60,
        ..PopulationConfig::default()
    });

    let mut sim = Simulation::new(config.seed);
    sim.set_default_link(config.device_link);

    // Campaign starts at 07:00 of day 0 so devices are active.
    let start_time = Timestamp::from_day_time(0, 7, 0, 0);

    // Create the hive first (placeholder node wiring: hive needs device ids,
    // devices need the hive id — allocate hive last but reference by the
    // known next index).
    let device_nodes: Vec<NodeId> = (0..config.devices as u32).map(NodeId).collect();
    let hive_node = NodeId(config.devices as u32);
    let honeycomb_node = NodeId(config.devices as u32 + 1);

    for (i, user) in data.users().iter().enumerate() {
        let records = data.records_of(*user);
        let trajectory = Trajectory::new(*user, records);
        let device = Device::new(DeviceId(i as u64), *user, trajectory);
        let node = sim.add_node(
            &format!("device-{i}"),
            Box::new(DeviceActor::new(device, hive_node, start_time)),
        );
        debug_assert_eq!(node, device_nodes[i]);
    }
    let node = sim.add_node("hive", Box::new(HiveActor::new(device_nodes)));
    debug_assert_eq!(node, hive_node);
    let node = sim.add_node("honeycomb", Box::new(HoneycombActor::new(hive_node, task)));
    debug_assert_eq!(node, honeycomb_node);

    sim.set_link_bidirectional(honeycomb_node, hive_node, config.backbone_link);

    // Kick off: the honeycomb uploads at t=0.
    sim.post_timer(honeycomb_node, 0, 0);
    sim.run_until(SimTime::from_millis(config.duration_s * 1_000));

    let stats = sim.stats();
    let hive = sim
        .actor_as::<HiveActor>(hive_node)
        .expect("hive actor type");
    let mut ack_latencies: Vec<u64> = Vec::new();
    for (task_id, acks) in &hive.ack_times_ms {
        let start = hive.deploy_start_ms.get(task_id).copied().unwrap_or(0);
        for &t in acks {
            ack_latencies.push(t.saturating_sub(start));
        }
    }
    ack_latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if ack_latencies.is_empty() {
            return 0;
        }
        let idx = ((ack_latencies.len() as f64 - 1.0) * p).round() as usize;
        ack_latencies[idx]
    };
    let acked = ack_latencies.len();
    let deploy_p50 = percentile(0.50);
    let deploy_p95 = percentile(0.95);

    let mut uploaded = 0;
    for node in 0..config.devices as u32 {
        if let Some(actor) = sim.actor_as::<DeviceActor>(NodeId(node)) {
            uploaded += actor.uploaded;
        }
    }
    let honeycomb = sim
        .actor_as::<HoneycombActor>(honeycomb_node)
        .expect("honeycomb actor type");
    CampaignReport {
        deployed_devices: config.devices,
        acked_devices: acked,
        deploy_latency_p50_ms: deploy_p50,
        deploy_latency_p95_ms: deploy_p95,
        records_received: honeycomb.received.len(),
        records_uploaded: uploaded,
        throughput_rps: honeycomb.received.len() as f64 / config.duration_s.max(1) as f64,
        delivery_ratio: stats.delivery_ratio(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SensorKind;
    use crate::honeycomb::ExperimentBuilder;

    fn small_campaign() -> CampaignConfig {
        CampaignConfig {
            devices: 8,
            duration_s: 2 * 3_600,
            seed: 11,
            sampling_interval_s: 300,
            ..CampaignConfig::default()
        }
    }

    fn gps_task() -> SensingTask {
        ExperimentBuilder::new("gps-map")
            .require_sensor(SensorKind::Gps)
            .sampling_interval_s(300)
            .build()
    }

    #[test]
    fn campaign_collects_records_end_to_end() {
        let report = run_campaign(&gps_task(), &small_campaign());
        assert_eq!(report.deployed_devices, 8);
        assert!(report.acked_devices >= 7, "acks {}", report.acked_devices);
        assert!(
            report.records_received > 50,
            "records {}",
            report.records_received
        );
        // Mobile link: 80 ± 60 ms one way; upload + deploy ≈ 2 hops.
        assert!(report.deploy_latency_p50_ms >= 80);
        assert!(report.deploy_latency_p95_ms < 2_000);
        assert!(report.throughput_rps > 0.0);
        assert!(report.delivery_ratio > 0.9);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_campaign(&gps_task(), &small_campaign());
        let b = run_campaign(&gps_task(), &small_campaign());
        assert_eq!(a, b);
    }

    #[test]
    fn lossy_network_degrades_gracefully() {
        let mut config = small_campaign();
        config.device_link = config.device_link.with_loss(0.3);
        let lossy = run_campaign(&gps_task(), &config);
        let clean = run_campaign(&gps_task(), &small_campaign());
        assert!(lossy.records_received < clean.records_received);
        assert!(lossy.delivery_ratio < clean.delivery_ratio);
        // The pipeline still works.
        assert!(lossy.records_received > 0);
    }

    #[test]
    fn record_batch_roundtrip() {
        use std::collections::BTreeMap;
        let mut payload = BTreeMap::new();
        payload.insert("lat".to_string(), Value::Num(45.0));
        payload.insert("lon".to_string(), Value::Num(4.0));
        let records = vec![SensedRecord {
            task: TaskId(3),
            user: UserId(7),
            device: DeviceId(9),
            time: Timestamp::new(1234),
            payload: Value::Map(payload),
        }];
        let encoded = encode_records(&records);
        let decoded = decode_records(TaskId(3), &encoded);
        assert_eq!(decoded, records);
    }

    #[test]
    fn malformed_record_batch_is_dropped() {
        assert!(decode_records(TaskId(1), &[1, 2, 3]).is_empty());
    }
}
