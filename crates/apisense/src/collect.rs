//! Reliable device→Hive ingestion: the platform's `collect` endpoint.
//!
//! Devices upload their sensed location records as per-day [`DayBatch`]
//! chunks over the at-least-once transport of [`simnet::reliable`]. The
//! network may drop, duplicate, reorder, partition or crash-restart — so the
//! Hive-side [`Collector`] must turn that chaos back into the clean,
//! strictly-ascending day-window stream the PRIVAPI publication pipeline
//! demands ([`privapi::streaming::PopulationCache::advance`] rejects any
//! day that does not strictly ascend):
//!
//! * **dedup** — each device's frames carry a sequence number; the per-device
//!   [`simnet::reliable::ReliableReceiver`] watermark absorbs every duplicate
//!   delivery (retransmissions and fault-injected copies alike);
//! * **reorder** — out-of-order frames are buffered per device and applied in
//!   sequence order, so a device's batches always take effect in the order
//!   they were produced;
//! * **windowing** — records accumulate in per-day buckets; [`Collector::close_day`]
//!   seals one day into a [`DatasetWindow`], in ascending day order, exactly
//!   once. The ascending-day contract is therefore satisfied *by protocol*,
//!   not by trusting the network;
//! * **quarantine** — records that arrive after their day was closed (e.g. a
//!   partitioned region's stragglers) are folded into the *next* closed
//!   window instead of poisoning the stream, and the per-window
//!   [`IngestDelta`] audit trail counts exactly what happened.
//!
//! The device side is [`DeviceOutbox`]: it stages day batches into a
//! persistent [`simnet::reliable::ReliableSender`] outbox, survives
//! simulated crashes (in-flight chunks are requeued, the staging cursor is
//! durable) and resumes from its last acknowledged sequence — at-least-once
//! delivery end to end.
//!
//! # Example
//!
//! ```
//! use apisense::collect::{Collector, DayBatch, DeviceOutbox};
//! use mobility::{LocationRecord, Timestamp, UserId};
//! use simnet::reliable::{DataFrame, ReliableConfig};
//!
//! let rec = LocationRecord::new(
//!     UserId(7),
//!     Timestamp::new(120),
//!     geo::GeoPoint::new(45.0, 4.0).unwrap(),
//! );
//! let mut device = DeviceOutbox::new(1, UserId(7), ReliableConfig::default(), vec![rec]);
//! let mut hive = Collector::new();
//! hive.register(1, UserId(7));
//!
//! // One upload tick after the day ended: the outbox stages the final
//! // day-0 batch; deliver its transmissions to the collector.
//! device.stage(86_400);
//! for tx in device.sender_mut().poll(0) {
//!     let ack = hive.ingest(&tx.frame).unwrap();
//!     device.sender_mut().on_ack(&ack, 1);
//! }
//! let (window, delta) = hive.close_day(0).unwrap();
//! assert_eq!(window.record_count(), 1);
//! assert!(delta.is_clean());
//! ```

use bytes::{Bytes, BytesMut};
use mobility::{
    Dataset, DatasetWindow, LocationRecord, Timestamp, Trajectory, UserId, DAY_SECONDS,
};
use privapi::streaming::IngestDelta;
use simnet::reliable::{AckFrame, DataFrame, ReliableConfig, ReliableReceiver, ReliableSender};
use simnet::wire::{Decode, Encode, WireError};
use std::collections::BTreeMap;

/// One device's upload unit: the records it sensed for one day (possibly a
/// partial slice — devices upload several batches per day), plus the
/// `end_of_day` marker that tells the collector no more day-`day` batches
/// will ever be produced by this device.
#[derive(Debug, Clone, PartialEq)]
pub struct DayBatch {
    /// The uploading device.
    pub device: u64,
    /// The participant the device belongs to.
    pub user: UserId,
    /// The day the batch reports on.
    pub day: i64,
    /// `true` on the last batch a device produces for `day` (it may be
    /// empty — a device with no fixes that day still closes it).
    pub end_of_day: bool,
    /// The sensed fixes, in sensing (time) order.
    pub records: Vec<LocationRecord>,
}

impl Encode for DayBatch {
    fn encode(&self, buf: &mut BytesMut) {
        self.device.encode(buf);
        self.user.0.encode(buf);
        self.day.encode(buf);
        self.end_of_day.encode(buf);
        let recs: Vec<(i64, f64, f64)> = self
            .records
            .iter()
            .map(|r| (r.time.seconds(), r.point.latitude(), r.point.longitude()))
            .collect();
        recs.encode(buf);
    }
}

impl Decode for DayBatch {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let device = u64::decode(buf)?;
        let user = UserId(u64::decode(buf)?);
        let day = i64::decode(buf)?;
        let end_of_day = bool::decode(buf)?;
        let raw: Vec<(i64, f64, f64)> = Vec::decode(buf)?;
        let mut records = Vec::with_capacity(raw.len());
        for (t, lat, lon) in raw {
            let point = geo::GeoPoint::new(lat, lon)
                .map_err(|_| WireError::Corrupt("record coordinates out of range"))?;
            records.push(LocationRecord::new(user, Timestamp::new(t), point));
        }
        Ok(Self {
            device,
            user,
            day,
            end_of_day,
            records,
        })
    }
}

/// Errors of the ingestion endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectError {
    /// A frame arrived from a device that never registered.
    UnknownDevice(u64),
    /// A released chunk did not decode as a [`DayBatch`].
    Wire(WireError),
    /// A batch's claimed device id did not match the lane it arrived on.
    Misrouted {
        /// The lane (transport sender) the batch arrived on.
        lane: u64,
        /// The device id the batch body claims.
        claimed: u64,
    },
    /// [`Collector::close_day`] called out of order.
    CloseOutOfOrder {
        /// The requested day.
        day: i64,
        /// The last day already closed.
        last_closed: i64,
    },
}

impl std::fmt::Display for CollectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            CollectError::Wire(e) => write!(f, "bad day batch: {e}"),
            CollectError::Misrouted { lane, claimed } => {
                write!(f, "batch for device {claimed} arrived on lane {lane}")
            }
            CollectError::CloseOutOfOrder { day, last_closed } => {
                write!(
                    f,
                    "close of day {day} after day {last_closed} already closed"
                )
            }
        }
    }
}

impl std::error::Error for CollectError {}

impl From<WireError> for CollectError {
    fn from(e: WireError) -> Self {
        CollectError::Wire(e)
    }
}

/// Per-device ingestion lane: the reliable-transport receiver plus the
/// highest day this device has finished reporting.
#[derive(Debug)]
struct DeviceLane {
    user: UserId,
    rx: ReliableReceiver,
    completed_through: Option<i64>,
}

/// The Hive-side `collect` endpoint: per-device deduplicating receivers in
/// front of day-window assembly with straggler quarantine.
///
/// See the [module docs](self) for the protocol.
#[derive(Debug, Default)]
pub struct Collector {
    lanes: BTreeMap<u64, DeviceLane>,
    /// Not-yet-closed days: day → user → records, in application order.
    open: BTreeMap<i64, BTreeMap<UserId, Vec<LocationRecord>>>,
    /// Late records (their day already closed) awaiting the next close.
    quarantine: BTreeMap<UserId, Vec<LocationRecord>>,
    quarantined_records: u64,
    batches_applied: u64,
    batches_duplicate: u64,
    last_closed: Option<i64>,
}

impl Collector {
    /// An endpoint with no registered devices.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a device lane. Frames from unregistered devices are
    /// rejected; registered-but-silent devices count as stragglers on
    /// every close.
    pub fn register(&mut self, device: u64, user: UserId) {
        self.lanes.entry(device).or_insert_with(|| {
            obs::count("collect.lanes", 1);
            DeviceLane {
                user,
                rx: ReliableReceiver::new(),
                completed_through: None,
            }
        });
    }

    /// Registered devices.
    pub fn device_count(&self) -> usize {
        self.lanes.len()
    }

    /// The last day sealed by [`Collector::close_day`], if any.
    pub fn last_closed(&self) -> Option<i64> {
        self.last_closed
    }

    /// Whether any data is still waiting for a close: open day buckets,
    /// quarantined stragglers, or chunks gapped in a reorder buffer.
    pub fn has_backlog(&self) -> bool {
        self.open.values().any(|users| !users.is_empty())
            || !self.quarantine.is_empty()
            || self.lanes.values().any(|l| l.rx.buffered() > 0)
    }

    /// Total duplicate frame deliveries absorbed so far, over all devices.
    pub fn duplicates_absorbed(&self) -> u64 {
        self.lanes.values().map(|l| l.rx.stats().duplicates).sum()
    }

    /// Ingests one transport frame from a device, returning the ack to
    /// answer with. Duplicates are absorbed (and still acked); in-sequence
    /// frames release their day batches into the open window buckets.
    ///
    /// # Errors
    ///
    /// * [`CollectError::UnknownDevice`] — the sender never registered
    ///   (nothing is acked, the device keeps retrying);
    /// * [`CollectError::Wire`] / [`CollectError::Misrouted`] — a released
    ///   chunk is not a well-formed batch of this device. The transport has
    ///   already advanced past the chunk (at-least-once delivery is about
    ///   loss, not about trusting payloads), so the batch is skipped and the
    ///   error reported.
    pub fn ingest(&mut self, frame: &DataFrame) -> Result<AckFrame, CollectError> {
        let lane = self
            .lanes
            .get_mut(&frame.sender)
            .ok_or(CollectError::UnknownDevice(frame.sender))?;
        let (released, ack) = lane.rx.accept(frame.sender, frame.seq, frame.chunk.clone());
        let mut result = Ok(ack);
        for (_seq, chunk) in released {
            if let Err(e) = self.apply(frame.sender, &chunk) {
                // Keep applying later chunks (the transport has moved past
                // them either way) but report the first failure.
                result = result.and(Err(e));
            }
        }
        result
    }

    /// Applies one in-sequence chunk: decode, route each record to its open
    /// bucket (or quarantine if its day already closed), track end-of-day.
    fn apply(&mut self, lane_id: u64, chunk: &[u8]) -> Result<(), CollectError> {
        let batch = DayBatch::decode_from_slice(chunk)?;
        if batch.device != lane_id {
            obs::count("collect.misrouted", 1);
            return Err(CollectError::Misrouted {
                lane: lane_id,
                claimed: batch.device,
            });
        }
        if batch.user != self.lanes.get(&lane_id).expect("lane exists").user {
            return Err(CollectError::Wire(WireError::Corrupt(
                "batch user does not match the device's registered owner",
            )));
        }
        self.batches_applied += 1;
        let mut quarantined_here: u64 = 0;
        for rec in &batch.records {
            let day = rec.time.day_index();
            if self.last_closed.is_some_and(|closed| day <= closed) {
                self.quarantine.entry(rec.user).or_default().push(*rec);
                self.quarantined_records += 1;
                quarantined_here += 1;
            } else {
                self.open
                    .entry(day)
                    .or_default()
                    .entry(rec.user)
                    .or_default()
                    .push(*rec);
            }
        }
        if quarantined_here > 0 && obs::enabled() {
            // One aggregated event per offending batch, carrying the
            // quarantine reason for the trace.
            obs::event(
                "ingest.quarantine",
                &[
                    ("device", obs::AttrValue::U64(lane_id)),
                    ("records", obs::AttrValue::U64(quarantined_here)),
                    ("reason", obs::AttrValue::Str("day_already_closed".into())),
                ],
            );
        }
        if batch.end_of_day {
            let lane = self.lanes.get_mut(&lane_id).expect("lane exists");
            lane.completed_through = Some(
                lane.completed_through
                    .map_or(batch.day, |c| c.max(batch.day)),
            );
        }
        Ok(())
    }

    /// Seals day `day`: everything collected for it (plus any quarantined
    /// stragglers from earlier closed days) becomes one [`DatasetWindow`],
    /// and the [`IngestDelta`] audit records how cleanly it was assembled.
    ///
    /// Days must be closed in strictly ascending order — that is exactly how
    /// the endpoint guarantees the publication stream's ascending-day
    /// contract. The returned window may be empty (no device reported).
    ///
    /// # Errors
    ///
    /// [`CollectError::CloseOutOfOrder`] when `day` does not exceed the last
    /// closed day.
    pub fn close_day(
        &mut self,
        day: i64,
    ) -> Result<(DatasetWindow, IngestDelta), CollectError> {
        if let Some(last) = self.last_closed {
            if day <= last {
                return Err(CollectError::CloseOutOfOrder {
                    day,
                    last_closed: last,
                });
            }
        }
        let mut delta = IngestDelta::new(day);
        delta.batches_applied = std::mem::take(&mut self.batches_applied);
        delta.batches_duplicate = {
            let total = self.duplicates_absorbed();
            let new = total - std::mem::replace(&mut self.batches_duplicate, total);
            // self.batches_duplicate now carries the running total; `new`
            // is this window's share.
            new
        };
        delta.records_quarantined = std::mem::take(&mut self.quarantined_records);

        // Quarantined stragglers first: their timestamps predate this day,
        // so the stable time sort in `Trajectory::new` orders them first
        // regardless of insertion order.
        let mut users: BTreeMap<UserId, Vec<LocationRecord>> =
            std::mem::take(&mut self.quarantine);
        let mut own_days: Vec<i64> = self.open.range(..=day).map(|(d, _)| *d).collect();
        own_days.sort_unstable();
        for d in own_days {
            let bucket = self.open.remove(&d).unwrap_or_default();
            for (user, recs) in bucket {
                delta.records += recs.len() as u64;
                users.entry(user).or_default().extend(recs);
            }
        }
        delta.straggler_devices = self
            .lanes
            .values()
            .filter(|l| l.completed_through.is_none_or(|c| c < day))
            .count() as u64;
        delta.records_deferred = self
            .lanes
            .values()
            .flat_map(|l| l.rx.buffered_chunks())
            .filter_map(|chunk| DayBatch::decode_from_slice(chunk).ok())
            .flat_map(|b| b.records)
            .filter(|r| r.time.day_index() <= day)
            .count() as u64;

        let dataset: Dataset = users
            .into_iter()
            .map(|(user, recs)| Trajectory::new(user, recs))
            .collect();
        self.last_closed = Some(day);
        record_ingest_delta(&delta);
        Ok((DatasetWindow::from_parts(day, dataset), delta))
    }
}

/// Re-plumb one window's [`IngestDelta`] into the `ingest.*` obs
/// instruments (the struct itself stays the public audit API). Emits a
/// window-closed trace event alongside the counters. No-op while
/// recording is off.
fn record_ingest_delta(delta: &IngestDelta) {
    if !obs::enabled() {
        return;
    }
    obs::count("ingest.batches_applied", delta.batches_applied);
    obs::count("ingest.batches_duplicate", delta.batches_duplicate);
    obs::count("ingest.records", delta.records);
    obs::count("ingest.quarantined", delta.records_quarantined);
    obs::count("ingest.deferred", delta.records_deferred);
    obs::count("ingest.stragglers", delta.straggler_devices);
    obs::count("ingest.windows_closed", 1);
    obs::event(
        "ingest.window_closed",
        &[
            ("day", obs::AttrValue::I64(delta.day)),
            ("records", obs::AttrValue::U64(delta.records)),
            (
                "quarantined",
                obs::AttrValue::U64(delta.records_quarantined),
            ),
            ("deferred", obs::AttrValue::U64(delta.records_deferred)),
            ("stragglers", obs::AttrValue::U64(delta.straggler_devices)),
            ("clean", obs::AttrValue::Bool(delta.is_clean())),
        ],
    );
}

/// The device-side staging store: walks a pregenerated sensing schedule,
/// cuts it into [`DayBatch`] chunks and feeds them to a persistent
/// [`ReliableSender`] outbox.
///
/// The record schedule and the staging cursor model the device's flash
/// storage: they survive crashes. Only the transport's in-flight state is
/// volatile — on restart call [`ReliableSender::crash`] via
/// [`DeviceOutbox::sender_mut`] and carry on.
#[derive(Debug)]
pub struct DeviceOutbox {
    device: u64,
    user: UserId,
    tx: ReliableSender,
    records: Vec<LocationRecord>,
    cursor: usize,
    /// Next day that still needs its `end_of_day` marker.
    finalize_next: i64,
}

impl DeviceOutbox {
    /// A device outbox over a pregenerated, time-sorted sensing schedule.
    /// Day finalization starts at the schedule's first day (or day 0 for an
    /// empty schedule).
    pub fn new(
        device: u64,
        user: UserId,
        config: ReliableConfig,
        mut records: Vec<LocationRecord>,
    ) -> Self {
        records.sort_by_key(|r| r.time);
        let first_day = records.first().map_or(0, |r| r.time.day_index());
        Self {
            device,
            user,
            tx: ReliableSender::new(device, config),
            records,
            cursor: 0,
            finalize_next: first_day,
        }
    }

    /// The device id.
    pub fn device(&self) -> u64 {
        self.device
    }

    /// The owning participant.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The reliable transport sender (poll transmissions, apply acks,
    /// requeue on crash).
    pub fn sender_mut(&mut self) -> &mut ReliableSender {
        &mut self.tx
    }

    /// Read access to the transport sender.
    pub fn sender(&self) -> &ReliableSender {
        &self.tx
    }

    /// Whether every scheduled record has been staged, every elapsed day
    /// finalized, and every staged chunk acknowledged.
    pub fn drained(&self, last_day: i64) -> bool {
        self.cursor >= self.records.len() && self.finalize_next > last_day && self.tx.is_idle()
    }

    /// Stages everything sensed up to wall-clock `now_s` (seconds since the
    /// dataset epoch): a final batch for every fully elapsed day not yet
    /// finalized (possibly empty), then a partial batch of the current day's
    /// new fixes. Returns the number of batches enqueued.
    pub fn stage(&mut self, now_s: i64) -> usize {
        let current_day = now_s.div_euclid(DAY_SECONDS);
        let mut batches = 0;
        while self.finalize_next < current_day {
            let day = self.finalize_next;
            let recs = self.take_records(|t| t.day_index() == day);
            self.enqueue_batch(day, true, recs);
            self.finalize_next += 1;
            batches += 1;
        }
        let fresh = self.take_records(|t| t.seconds() <= now_s);
        if !fresh.is_empty() {
            self.enqueue_batch(current_day, false, fresh);
            batches += 1;
        }
        batches
    }

    fn take_records(&mut self, keep: impl Fn(Timestamp) -> bool) -> Vec<LocationRecord> {
        let start = self.cursor;
        while self.cursor < self.records.len() && keep(self.records[self.cursor].time) {
            self.cursor += 1;
        }
        self.records[start..self.cursor].to_vec()
    }

    fn enqueue_batch(&mut self, day: i64, end_of_day: bool, records: Vec<LocationRecord>) {
        let batch = DayBatch {
            device: self.device,
            user: self.user,
            day,
            end_of_day,
            records,
        };
        self.tx.enqueue(batch.encode_to_vec());
    }
}

/// A canonical byte encoding of a window — two windows are *byte-identical*
/// exactly when their fingerprints are equal. Used by the chaos tests to
/// state the headline invariant: published windows under faults equal the
/// fault-free run's, byte for byte.
pub fn window_fingerprint(window: &DatasetWindow) -> Vec<u8> {
    let mut buf = BytesMut::new();
    window.day().encode(&mut buf);
    (window.dataset().trajectory_count() as u64).encode(&mut buf);
    for traj in window.dataset().trajectories() {
        traj.user().0.encode(&mut buf);
        let recs: Vec<(i64, f64, f64)> = traj
            .records()
            .iter()
            .map(|r| (r.time.seconds(), r.point.latitude(), r.point.longitude()))
            .collect();
        recs.encode(&mut buf);
    }
    buf.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::WindowedDataset;

    fn rec(user: u64, t: i64, lon: f64) -> LocationRecord {
        LocationRecord::new(
            UserId(user),
            Timestamp::new(t),
            geo::GeoPoint::new(45.0, lon).unwrap(),
        )
    }

    fn frame(device: u64, seq: u64, batch: &DayBatch) -> DataFrame {
        DataFrame {
            sender: device,
            seq,
            chunk: batch.encode_to_vec(),
        }
    }

    fn batch(
        device: u64,
        user: u64,
        day: i64,
        eod: bool,
        records: Vec<LocationRecord>,
    ) -> DayBatch {
        DayBatch {
            device,
            user: UserId(user),
            day,
            end_of_day: eod,
            records,
        }
    }

    #[test]
    fn day_batch_roundtrips_on_the_wire() {
        let b = batch(3, 9, 2, true, vec![rec(9, 2 * DAY_SECONDS + 5, 4.1)]);
        let back = DayBatch::decode_from_slice(&b.encode_to_vec()).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn corrupt_coordinates_are_a_typed_wire_error() {
        let mut b = batch(3, 9, 0, false, vec![rec(9, 5, 4.1)]);
        // Hand-encode with an out-of-range latitude.
        b.records.clear();
        let mut buf = BytesMut::new();
        b.device.encode(&mut buf);
        b.user.0.encode(&mut buf);
        b.day.encode(&mut buf);
        b.end_of_day.encode(&mut buf);
        vec![(5i64, 123.0f64, 4.1f64)].encode(&mut buf);
        let err = DayBatch::decode_from_slice(&buf).unwrap_err();
        assert!(matches!(err, WireError::Corrupt(_)));
    }

    #[test]
    fn in_order_ingest_matches_batch_partition() {
        // Two devices, two days, several partial batches — the closed
        // windows must be byte-identical to partitioning the merged dataset.
        let recs: Vec<LocationRecord> = vec![
            rec(1, 10, 4.0),
            rec(1, 400, 4.1),
            rec(1, DAY_SECONDS + 20, 4.2),
            rec(2, 30, 4.3),
            rec(2, DAY_SECONDS + 40, 4.4),
        ];
        let dataset = Dataset::from_records(recs.clone());
        let baseline = WindowedDataset::partition(&dataset);

        let mut hive = Collector::new();
        hive.register(1, UserId(1));
        hive.register(2, UserId(2));
        // Device 1 splits day 0 over two batches.
        let deliveries = [
            frame(1, 1, &batch(1, 1, 0, false, vec![recs[0]])),
            frame(1, 2, &batch(1, 1, 0, true, vec![recs[1]])),
            frame(2, 1, &batch(2, 2, 0, true, vec![recs[3]])),
            frame(1, 3, &batch(1, 1, 1, true, vec![recs[2]])),
            frame(2, 2, &batch(2, 2, 1, true, vec![recs[4]])),
        ];
        for f in &deliveries {
            hive.ingest(f).unwrap();
        }
        for expected in &baseline {
            let (window, delta) = hive.close_day(expected.day()).unwrap();
            assert!(delta.is_clean(), "clean run: {delta}");
            assert_eq!(
                window_fingerprint(&window),
                window_fingerprint(expected),
                "day {} must be byte-identical",
                expected.day()
            );
        }
    }

    #[test]
    fn duplicates_and_reordering_are_absorbed() {
        let mut hive = Collector::new();
        hive.register(1, UserId(1));
        let b1 = batch(1, 1, 0, false, vec![rec(1, 10, 4.0)]);
        let b2 = batch(1, 1, 0, true, vec![rec(1, 20, 4.1)]);
        // Out of order: seq 2 first (buffered), then seq 1 (releases both),
        // then seq 1 again (duplicate) and seq 2 again (duplicate).
        let ack = hive.ingest(&frame(1, 2, &b2)).unwrap();
        assert_eq!(ack.cumulative, 0, "gapped frame must not advance");
        hive.ingest(&frame(1, 1, &b1)).unwrap();
        let ack = hive.ingest(&frame(1, 1, &b1)).unwrap();
        assert_eq!(ack.cumulative, 2);
        hive.ingest(&frame(1, 2, &b2)).unwrap();

        let (window, delta) = hive.close_day(0).unwrap();
        assert_eq!(window.record_count(), 2, "each record applied once");
        assert_eq!(delta.batches_applied, 2);
        assert_eq!(delta.batches_duplicate, 2);
        assert!(delta.is_clean());
    }

    #[test]
    fn stragglers_quarantine_into_the_next_window() {
        let mut hive = Collector::new();
        hive.register(1, UserId(1));
        hive.register(2, UserId(2));
        hive.ingest(&frame(1, 1, &batch(1, 1, 0, true, vec![rec(1, 10, 4.0)])))
            .unwrap();
        // Device 2 is partitioned: nothing arrives before the close.
        let (w0, d0) = hive.close_day(0).unwrap();
        assert_eq!(w0.record_count(), 1);
        assert_eq!(d0.straggler_devices, 1);
        assert!(!d0.is_clean());

        // The partition heals: device 2's day-0 data arrives late, together
        // with both devices' day-1 data.
        hive.ingest(&frame(2, 1, &batch(2, 2, 0, true, vec![rec(2, 30, 4.3)])))
            .unwrap();
        hive.ingest(&frame(
            1,
            2,
            &batch(1, 1, 1, true, vec![rec(1, DAY_SECONDS + 5, 4.1)]),
        ))
        .unwrap();
        hive.ingest(&frame(
            2,
            2,
            &batch(2, 2, 1, true, vec![rec(2, DAY_SECONDS + 6, 4.4)]),
        ))
        .unwrap();
        let (w1, d1) = hive.close_day(1).unwrap();
        assert_eq!(d1.records_quarantined, 1, "{d1}");
        assert_eq!(d1.records, 2);
        assert_eq!(d1.straggler_devices, 0);
        // The quarantined day-0 record leads user 2's window-1 trajectory.
        let u2 = &w1.dataset().trajectories_of(UserId(2))[0];
        assert_eq!(u2.records()[0].time.seconds(), 30);
        assert_eq!(u2.len(), 2);
        assert!(hive.close_day(1).is_err(), "days close exactly once");
    }

    #[test]
    fn gapped_chunks_count_as_deferred_at_close() {
        let mut hive = Collector::new();
        hive.register(1, UserId(1));
        // seq 1 never arrives before the close; seq 2 sits gapped.
        hive.ingest(&frame(
            1,
            2,
            &batch(1, 1, 0, true, vec![rec(1, 40, 4.0), rec(1, 50, 4.1)]),
        ))
        .unwrap();
        let (w0, d0) = hive.close_day(0).unwrap();
        assert_eq!(w0.record_count(), 0);
        assert_eq!(d0.records_deferred, 2);
        assert!(hive.has_backlog());
        // The gap fills after the close → both records quarantine next day.
        hive.ingest(&frame(1, 1, &batch(1, 1, 0, false, Vec::new())))
            .unwrap();
        let (_, d1) = hive.close_day(1).unwrap();
        assert_eq!(d1.records_quarantined, 2);
    }

    #[test]
    fn unknown_devices_and_misrouted_batches_are_rejected() {
        let mut hive = Collector::new();
        hive.register(1, UserId(1));
        let err = hive
            .ingest(&frame(9, 1, &batch(9, 9, 0, false, Vec::new())))
            .unwrap_err();
        assert_eq!(err, CollectError::UnknownDevice(9));
        // A batch claiming device 2 arriving on device 1's lane.
        let err = hive
            .ingest(&frame(1, 1, &batch(2, 1, 0, false, Vec::new())))
            .unwrap_err();
        assert!(matches!(
            err,
            CollectError::Misrouted {
                lane: 1,
                claimed: 2
            }
        ));
    }

    #[test]
    fn outbox_stages_partial_and_final_batches_and_survives_crashes() {
        let recs = vec![
            rec(1, 100, 4.0),
            rec(1, 200, 4.1),
            rec(1, DAY_SECONDS + 10, 4.2),
        ];
        let mut outbox = DeviceOutbox::new(1, UserId(1), ReliableConfig::default(), recs);
        // Mid-day tick: only the first fix is due → one partial batch.
        assert_eq!(outbox.stage(150), 1);
        // Next day: finalize day 0 (remaining fix) + partial for day 1.
        assert_eq!(outbox.stage(DAY_SECONDS + 20), 2);
        let txs = outbox.sender_mut().poll(0);
        assert_eq!(txs.len(), 3);
        let b0 = DayBatch::decode_from_slice(&txs[0].frame.chunk).unwrap();
        assert!(!b0.end_of_day);
        let b1 = DayBatch::decode_from_slice(&txs[1].frame.chunk).unwrap();
        assert!(b1.end_of_day);
        assert_eq!(b1.records.len(), 1);

        // Crash: in-flight requeues; retransmissions resume from seq 1.
        outbox.sender_mut().crash();
        let again = outbox.sender_mut().poll(10_000);
        assert_eq!(again.len(), 3);
        assert_eq!(again[0].frame.seq, 1);
        assert!(!outbox.drained(1));
        // Day 1 closes with no further fixes → one empty final batch.
        assert_eq!(outbox.stage(2 * DAY_SECONDS), 1);
        let last = outbox.sender_mut().poll(20_000);
        let fin = DayBatch::decode_from_slice(&last.last().unwrap().frame.chunk).unwrap();
        assert!(fin.end_of_day && fin.day == 1);
    }

    #[test]
    fn empty_final_batches_complete_silent_days() {
        // A device with no fixes at all still closes every elapsed day, so
        // it never counts as a straggler.
        let mut outbox = DeviceOutbox::new(1, UserId(1), ReliableConfig::default(), Vec::new());
        assert_eq!(outbox.stage(2 * DAY_SECONDS), 2);
        let mut hive = Collector::new();
        hive.register(1, UserId(1));
        for tx in outbox.sender_mut().poll(0) {
            let ack = hive.ingest(&tx.frame).unwrap();
            outbox.sender_mut().on_ack(&ack, 1);
        }
        let (w, d) = hive.close_day(0).unwrap();
        assert_eq!(w.record_count(), 0);
        assert_eq!(d.straggler_devices, 0);
        assert!(outbox.drained(1));
    }
}
