//! The multi-campaign publication surface: APISENSE tasks mapped onto
//! orchestrated privacy-preserving campaigns.
//!
//! The single-campaign [`crate::privacy::PublicationGateway`] pairs one
//! PRIVAPI session with one task. A real APISENSE deployment runs *many*
//! tasks at once over the same community — each with its own objective,
//! privacy policy and recruited participant set. [`CampaignGateway`]
//! bridges the platform's existing campaign objects (a published
//! [`crate::honeycomb::SensingTask`] plus its [`crate::hive::Hive`]
//! deployment) onto a [`campaign::Orchestrator`], so N concurrent tasks
//! publish daily releases while sharing the original-side attack
//! extraction of the population stream.
//!
//! The mapping is faithful to the platform objects:
//!
//! * the campaign id is the platform [`TaskId`];
//! * the participant filter combines the task's **deployment** (the users
//!   whose devices the Hive offloaded the script to) with the task's
//!   declared **region**, when any;
//! * retiring a task's campaign mirrors ending its collection.

use crate::error::ApisenseError;
use crate::hive::{Hive, TaskId};
use campaign::{Campaign, CampaignError, CampaignId, CampaignRelease, DayReport, Orchestrator};
use mobility::{DatasetWindow, ParticipantFilter};
use privapi::pipeline::PrivApiConfig;
use std::collections::BTreeMap;

/// Orchestrates the publication side of every running task: one campaign
/// per task over the shared population window stream.
///
/// # Example
///
/// ```
/// use apisense::campaigns::CampaignGateway;
/// use apisense::hive::TaskId;
/// use campaign::Campaign;
/// use mobility::gen::{CityModel, PopulationConfig};
/// use mobility::WindowedDataset;
/// use privapi::pipeline::PrivApiConfig;
///
/// let data = CityModel::builder().seed(11).build().generate_population(
///     &PopulationConfig { users: 3, days: 2, ..PopulationConfig::default() },
/// );
/// let mut gateway = CampaignGateway::new();
/// gateway
///     .open(TaskId(1), Campaign::new(1, "noise-map", PrivApiConfig::default()))
///     .unwrap();
/// for window in &WindowedDataset::partition(&data) {
///     let report = gateway.publish_day(window).unwrap();
///     assert!(gateway.release_for(&report, TaskId(1)).is_some());
/// }
/// ```
#[derive(Debug, Default)]
pub struct CampaignGateway {
    orchestrator: Orchestrator,
    tasks: BTreeMap<TaskId, CampaignId>,
}

impl CampaignGateway {
    /// Creates a gateway with no running campaigns.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying orchestrator (registry, statuses, shared sessions).
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orchestrator
    }

    /// The campaign currently mapped to a task.
    pub fn campaign_id(&self, task: TaskId) -> Option<CampaignId> {
        self.tasks.get(&task).copied()
    }

    /// Opens a campaign for a task, with full control over the campaign's
    /// privacy policy, filter and lifetime.
    ///
    /// # Errors
    ///
    /// [`CampaignError::DuplicateId`] when the task (or another task
    /// mapped to the same campaign id) already runs an active campaign.
    pub fn open(
        &mut self,
        task: TaskId,
        campaign: Campaign,
    ) -> Result<CampaignId, CampaignError> {
        if let Some(existing) = self.tasks.get(&task) {
            if self.orchestrator.registry().is_active(*existing) {
                return Err(CampaignError::DuplicateId(*existing));
            }
        }
        let id = self.orchestrator.register(campaign)?;
        self.tasks.insert(task, id);
        Ok(id)
    }

    /// Opens a campaign for a task **as deployed**: the campaign id is the
    /// task id, the participant filter recruits exactly the users whose
    /// devices the Hive offloaded the task to, intersected with the task's
    /// declared region (when any).
    ///
    /// # Errors
    ///
    /// * [`ApisenseError::NotFound`] when the task was never published or
    ///   never deployed;
    /// * [`ApisenseError::InvalidParameter`] when the task already runs an
    ///   active campaign.
    pub fn open_deployment(
        &mut self,
        hive: &Hive,
        task: TaskId,
        config: PrivApiConfig,
    ) -> Result<CampaignId, ApisenseError> {
        let definition = hive
            .task(task)
            .ok_or(ApisenseError::NotFound("task", task.0))?;
        let participants = hive.participants(task)?;
        let mut filter = ParticipantFilter::users(participants);
        if let Some(region) = definition.region() {
            filter = filter.and(ParticipantFilter::region(*region));
        }
        let campaign = Campaign::new(task.0, definition.name(), config).with_filter(filter);
        self.open(task, campaign).map_err(|e| match e {
            CampaignError::DuplicateId(id) => ApisenseError::InvalidParameter {
                name: "campaign.id",
                value: format!("{id} is already active for {task}"),
            },
            other => ApisenseError::InvalidParameter {
                name: "campaign",
                value: other.to_string(),
            },
        })
    }

    /// Retires the campaign of a task (the task stops publishing; its id
    /// becomes reusable). The task-to-campaign mapping is dropped, so a
    /// later `close` of the same task reports [`CampaignError::Unknown`]
    /// instead of touching whichever campaign reuses the id by then.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Unknown`] when the task runs no active campaign.
    pub fn close(&mut self, task: TaskId) -> Result<(), CampaignError> {
        let id = self
            .tasks
            .get(&task)
            .copied()
            .ok_or(CampaignError::Unknown(CampaignId(task.0)))?;
        self.orchestrator.retire(id)?;
        self.tasks.remove(&task);
        Ok(())
    }

    /// Publishes one population day window through every running campaign
    /// — see [`campaign::Orchestrator::advance_day`].
    ///
    /// # Errors
    ///
    /// [`CampaignError::Stream`] for a duplicate or out-of-order day
    /// (nothing ingested anywhere).
    pub fn publish_day(&mut self, window: &DatasetWindow) -> Result<DayReport, CampaignError> {
        self.orchestrator.advance_day(window)
    }

    /// Publishes a day window assembled by the reliable ingestion layer
    /// (see [`crate::collect`]), stamping its
    /// [`privapi::streaming::IngestDelta`] provenance into the report.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`CampaignGateway::publish_day`].
    pub fn publish_day_with_ingest(
        &mut self,
        window: &DatasetWindow,
        ingest: privapi::streaming::IngestDelta,
    ) -> Result<DayReport, CampaignError> {
        self.orchestrator.advance_day_with_ingest(window, ingest)
    }

    /// Publishes a day window assembled by the *federated* release layer
    /// (see [`crate::federated`]), stamping both provenance ledgers — the
    /// reliable-ingest [`privapi::streaming::IngestDelta`] of the raw
    /// calibration cohort (when one ran) and the
    /// [`privapi::federated::FederationDelta`] of the protected lanes —
    /// into the report.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`CampaignGateway::publish_day`].
    pub fn publish_day_federated(
        &mut self,
        window: &DatasetWindow,
        ingest: Option<privapi::streaming::IngestDelta>,
        federation: privapi::federated::FederationDelta,
    ) -> Result<DayReport, CampaignError> {
        self.orchestrator
            .advance_day_federated(window, ingest, federation)
    }

    /// The release a task's campaign published in a day report, if any.
    pub fn release_for<'a>(
        &self,
        report: &'a DayReport,
        task: TaskId,
    ) -> Option<&'a CampaignRelease> {
        report.release_of(self.campaign_id(task)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceId, SensorKind};
    use crate::hive::DeviceDescriptor;
    use crate::honeycomb::ExperimentBuilder;
    use mobility::gen::{CityModel, PopulationConfig};
    use mobility::{UserId, WindowedDataset};
    use privapi::streaming::StreamingPublisher;

    fn population() -> mobility::Dataset {
        CityModel::builder()
            .seed(59)
            .build()
            .generate_population(&PopulationConfig {
                users: 4,
                days: 2,
                sampling_interval_s: 240,
                gps_noise_m: 5.0,
                leisure_probability: 0.4,
            })
    }

    fn hive_with_devices(users: &[u64]) -> Hive {
        let mut hive = Hive::new();
        for &u in users {
            hive.register_device(DeviceDescriptor {
                device: DeviceId(u),
                user: UserId(u),
                sensors: SensorKind::ALL.into_iter().collect(),
                region_hint: None,
                battery_level: 1.0,
            });
        }
        hive
    }

    #[test]
    fn deployment_scoped_campaign_matches_standalone_subset_run() {
        // Publish + deploy a task to a two-user fleet, open its campaign
        // from the deployment, and check the releases equal a standalone
        // streaming run over exactly those users' data.
        let mut hive = hive_with_devices(&[0, 1]);
        let task_id = hive.publish_task(ExperimentBuilder::new("air-quality").build());
        hive.deploy(task_id).unwrap();
        assert_eq!(
            hive.participants(task_id).unwrap(),
            vec![UserId(0), UserId(1)]
        );

        let config = PrivApiConfig::default();
        let mut gateway = CampaignGateway::new();
        let campaign_id = gateway.open_deployment(&hive, task_id, config).unwrap();
        assert_eq!(gateway.campaign_id(task_id), Some(campaign_id));

        let windows = WindowedDataset::partition(&population());
        let filter = ParticipantFilter::users([UserId(0), UserId(1)]);
        let mut standalone =
            StreamingPublisher::from_privapi(privapi::pipeline::PrivApi::new(config));
        for window in &windows {
            let report = gateway.publish_day(window).unwrap();
            let release = gateway
                .release_for(&report, task_id)
                .expect("deployed users report daily in dense data");
            let expected = standalone
                .publish_window(&filter.filter_window(window).unwrap())
                .unwrap();
            assert_eq!(release.published.selection, expected.published.selection);
            assert_eq!(release.published.dataset, expected.published.dataset);
        }
    }

    #[test]
    fn closing_a_closed_task_never_retires_a_campaign_reusing_the_id() {
        // Regression: task 1's campaign id becomes reusable after close;
        // once task 2 adopts it, a stale second close of task 1 must
        // report Unknown instead of retiring task 2's active campaign
        // through the leftover task→id mapping.
        let config = PrivApiConfig::default();
        let mut gateway = CampaignGateway::new();
        gateway
            .open(TaskId(1), Campaign::new(7, "first", config))
            .unwrap();
        gateway.close(TaskId(1)).unwrap();
        let id = gateway
            .open(TaskId(2), Campaign::new(7, "second", config))
            .unwrap();
        assert!(gateway.close(TaskId(1)).is_err(), "stale close must fail");
        assert!(
            gateway.orchestrator().registry().is_active(id),
            "task 2's campaign must survive the stale close"
        );
        gateway.close(TaskId(2)).unwrap();
    }

    #[test]
    fn open_close_lifecycle_and_duplicate_rejection() {
        let mut hive = hive_with_devices(&[0]);
        let task_id = hive.publish_task(ExperimentBuilder::new("t").build());
        hive.deploy(task_id).unwrap();
        let mut gateway = CampaignGateway::new();
        gateway
            .open_deployment(&hive, task_id, PrivApiConfig::default())
            .unwrap();
        // A second open for the same task is an overlapping duplicate.
        let err = gateway
            .open_deployment(&hive, task_id, PrivApiConfig::default())
            .unwrap_err();
        assert!(matches!(
            err,
            ApisenseError::InvalidParameter {
                name: "campaign.id",
                ..
            }
        ));
        gateway.close(task_id).unwrap();
        assert!(gateway.close(task_id).is_err(), "already retired");
        // A retired task can be re-opened.
        gateway
            .open_deployment(&hive, task_id, PrivApiConfig::default())
            .unwrap();
        // Unknown tasks are platform errors.
        assert_eq!(
            gateway
                .open_deployment(&hive, TaskId(99), PrivApiConfig::default())
                .unwrap_err(),
            ApisenseError::NotFound("task", 99)
        );
    }
}
