//! Tokenizer for the task-scripting DSL.

use crate::error::ApisenseError;

/// A lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Numeric literal.
    Num(f64),
    /// String literal (quotes removed, escapes resolved).
    Str(String),
    /// Identifier.
    Ident(String),
    /// Keyword: `let`, `fn`, `if`, `else`, `while`, `return`, `true`,
    /// `false`, `null`.
    Keyword(&'static str),
    /// Punctuation or operator, e.g. `+`, `==`, `{`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

const KEYWORDS: &[&str] = &[
    "let", "fn", "if", "else", "while", "return", "true", "false", "null",
];

/// Tokenizes source text.
///
/// # Errors
///
/// Returns [`ApisenseError::Lex`] for unterminated strings or unexpected
/// characters.
pub fn tokenize(source: &str) -> Result<Vec<Token>, ApisenseError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value = text.parse::<f64>().map_err(|_| ApisenseError::Lex {
                    message: format!("bad number literal '{text}'"),
                    line,
                })?;
                tokens.push(Token {
                    kind: TokenKind::Num(value),
                    line,
                });
            }
            '"' => {
                i += 1;
                let mut text = String::new();
                let start_line = line;
                loop {
                    match chars.get(i) {
                        None => {
                            return Err(ApisenseError::Lex {
                                message: "unterminated string".into(),
                                line: start_line,
                            })
                        }
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            let escaped =
                                chars.get(i + 1).ok_or_else(|| ApisenseError::Lex {
                                    message: "unterminated escape".into(),
                                    line,
                                })?;
                            text.push(match escaped {
                                'n' => '\n',
                                't' => '\t',
                                '"' => '"',
                                '\\' => '\\',
                                other => {
                                    return Err(ApisenseError::Lex {
                                        message: format!("unknown escape '\\{other}'"),
                                        line,
                                    })
                                }
                            });
                            i += 2;
                        }
                        Some('\n') => {
                            line += 1;
                            text.push('\n');
                            i += 1;
                        }
                        Some(other) => {
                            text.push(*other);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(text),
                    line: start_line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let kind = match KEYWORDS.iter().find(|k| **k == text) {
                    Some(kw) => TokenKind::Keyword(kw),
                    None => TokenKind::Ident(text),
                };
                tokens.push(Token { kind, line });
            }
            _ => {
                // Two-character operators first.
                let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
                let two_op = ["==", "!=", "<=", ">=", "&&", "||"]
                    .iter()
                    .find(|op| **op == two);
                if let Some(op) = two_op {
                    tokens.push(Token {
                        kind: TokenKind::Punct(op),
                        line,
                    });
                    i += 2;
                    continue;
                }
                let one = [
                    "+", "-", "*", "/", "%", "<", ">", "=", "!", "(", ")", "{", "}", "[", "]",
                    ",", ";", ":", ".",
                ]
                .iter()
                .find(|op| op.starts_with(c));
                match one {
                    Some(op) => {
                        tokens.push(Token {
                            kind: TokenKind::Punct(op),
                            line,
                        });
                        i += 1;
                    }
                    None => {
                        return Err(ApisenseError::Lex {
                            message: format!("unexpected character '{c}'"),
                            line,
                        })
                    }
                }
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers_and_idents() {
        assert_eq!(
            kinds("let x = 42.5;"),
            vec![
                TokenKind::Keyword("let"),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Num(42.5),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\nb\"c""#),
            vec![TokenKind::Str("a\nb\"c".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 // comment\n2"),
            vec![TokenKind::Num(1.0), TokenKind::Num(2.0), TokenKind::Eof]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("a == b != c <= d >= e && f || g"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("=="),
                TokenKind::Ident("b".into()),
                TokenKind::Punct("!="),
                TokenKind::Ident("c".into()),
                TokenKind::Punct("<="),
                TokenKind::Ident("d".into()),
                TokenKind::Punct(">="),
                TokenKind::Ident("e".into()),
                TokenKind::Punct("&&"),
                TokenKind::Ident("f".into()),
                TokenKind::Punct("||"),
                TokenKind::Ident("g".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let tokens = tokenize("1\n2\n  3").unwrap();
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[1].line, 2);
        assert_eq!(tokens[2].line, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        match tokenize("\"abc") {
            Err(ApisenseError::Lex { message, line }) => {
                assert!(message.contains("unterminated"));
                assert_eq!(line, 1);
            }
            other => panic!("expected lex error, got {other:?}"),
        }
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(matches!(tokenize("@"), Err(ApisenseError::Lex { .. })));
        assert!(matches!(tokenize("1 # 2"), Err(ApisenseError::Lex { .. })));
    }

    #[test]
    fn keywords_recognized() {
        for kw in super::KEYWORDS {
            let tokens = tokenize(kw).unwrap();
            assert_eq!(tokens[0].kind, TokenKind::Keyword(kw));
        }
    }

    #[test]
    fn bad_number_errors() {
        assert!(matches!(tokenize("1.2.3"), Err(ApisenseError::Lex { .. })));
    }
}
