//! Bytecode compiler: lowers a parsed [`Program`] to a [`CompiledProgram`].
//!
//! The compiler is the front half of the script engine's second execution
//! tier (the back half is [`super::vm`]). It resolves as much as possible at
//! compile time so the per-reading hot path does no hashing and no string
//! formatting:
//!
//! - **Locals become frame slots.** Every `let` whose scope is statically
//!   known compiles to a slot index relative to the current call frame;
//!   loads and stores are array accesses. Names that cannot be resolved
//!   within the enclosing function frame fall back to `LoadDyn`/`StoreDyn`,
//!   which walk the live locals exactly like the tree-walker's dynamic
//!   scope chain — semantics are unchanged, only the common case is fast.
//! - **Call sites are pre-interned.** A dotted host path such as
//!   `sensor.gps` is flattened to a single [`CallSite`] string at compile
//!   time instead of being re-formatted on every call, and every site
//!   carries an index into the VM's per-site inline caches.
//! - **Fuel is charged per basic block.** The tree-walker burns one fuel
//!   unit per AST node as it goes; the compiler instead counts the nodes of
//!   each straight-line run and emits one [`Op::Fuel`] charge covering the
//!   run. Charges are flushed *before* every fallible op, every jump and
//!   every jump target, which keeps the cumulative fuel spent at every
//!   observable decision point identical to the interpreter's — the same
//!   programs exhaust fuel, and they fail with the same classification.
//!   The only latitude is *where inside* an infallible straight-line run
//!   the counter moves, which no program can observe.
//!
//! Compilation is pure: it never runs host calls and fails only on
//! capacity limits ([`ApisenseError::ScriptCompile`]).

use std::collections::HashMap;

use crate::error::ApisenseError;
use crate::script::parser::{BinaryOp, Expr, Program, Stmt, UnaryOp};
use crate::script::Value;

/// Maximum interned names / constants / functions / call sites / map shapes.
const MAX_TABLE: usize = 65_536;
/// Maximum locals live in a single call frame.
const MAX_FRAME_LOCALS: usize = 4_096;

/// Why a compiled assignment is statically known to fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AssignFault {
    /// Target has no root identifier (`f().x = v`).
    Unsupported,
    /// Multi-step path under a statically resolved root (`m.a.b = v`).
    Nested,
    /// Multi-step path under a dynamically resolved root: the root lookup
    /// may itself fail first, matching interpreter error precedence.
    NestedDyn,
    /// Target expression form the parser should never produce.
    Invalid,
}

/// One bytecode instruction. Operands index the side tables of the owning
/// [`CompiledProgram`]; slot operands are relative to the current frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Op {
    /// Charge `n` fuel units (the accumulated cost of a straight-line run);
    /// fails with `FuelExhausted` when the budget is smaller.
    Fuel(u32),
    /// Push constant `consts[i]`.
    Const(u32),
    /// Push `null`.
    Null,
    /// Push `true`.
    True,
    /// Push `false`.
    False,
    /// Pop `n` values, push a list of them (in push order).
    MakeList(u32),
    /// Pop `map_shapes[i].len()` values, push a map keyed by the shape.
    MakeMap(u32),
    /// Push a clone of frame slot `i`.
    LoadSlot(u32),
    /// Pop into frame slot `i`.
    StoreSlot(u32),
    /// Pop and push as a new local named `names[i]`.
    PushLocal(u32),
    /// Drop the innermost `n` locals (block exit).
    PopLocals(u32),
    /// Push the innermost live local named `names[i]`, from any frame
    /// (dynamic scoping); error if absent.
    LoadDyn(u32),
    /// Pop into the innermost live local named `names[i]`, from any frame;
    /// error if absent.
    StoreDyn(u32),
    /// Pop a number, push its negation.
    Neg,
    /// Pop, push logical negation of truthiness.
    Not,
    /// Pop, push its truthiness as a bool (short-circuit result coercion).
    ToBool,
    /// Pop rhs and lhs, push `lhs + rhs` (numeric or string concat).
    Add,
    /// Pop rhs and lhs, push numeric difference.
    Sub,
    /// Pop rhs and lhs, push numeric product.
    Mul,
    /// Pop rhs and lhs, push numeric quotient.
    Div,
    /// Pop rhs and lhs, push numeric remainder.
    Rem,
    /// Pop rhs and lhs, push structural equality.
    Eq,
    /// Pop rhs and lhs, push structural inequality.
    Ne,
    /// Pop rhs and lhs, push numeric `<`.
    Lt,
    /// Pop rhs and lhs, push numeric `<=`.
    Le,
    /// Pop rhs and lhs, push numeric `>`.
    Gt,
    /// Pop rhs and lhs, push numeric `>=`.
    Ge,
    /// Pop a value, push its field `names[i]` (maps) or `length`.
    Member(u32),
    /// Pop index and container, push the element.
    IndexGet,
    /// Pop a value, write field `names[f]` of frame slot `slot`
    /// (`MemberSetSlot(slot, f)`).
    MemberSetSlot(u32, u32),
    /// Pop a value, write field `names[f]` of dynamic local `names[root]`
    /// (`MemberSetDyn(root, f)`).
    MemberSetDyn(u32, u32),
    /// Pop index then value, write element of frame slot `slot`.
    IndexSetSlot(u32),
    /// Pop index then value, write element of dynamic local `names[i]`.
    IndexSetDyn(u32),
    /// Raise the statically determined assignment error (operand is the
    /// root name id, used by [`AssignFault::NestedDyn`]).
    FailAssign(AssignFault, u32),
    /// Unconditional jump to `pc`.
    Jump(u32),
    /// Pop; jump to `pc` when falsy.
    JumpIfFalse(u32),
    /// Pop; when falsy push `false` and jump to `pc` (short-circuit `&&`).
    JumpIfFalseBool(u32),
    /// Pop; when truthy push `true` and jump to `pc` (short-circuit `||`).
    JumpIfTrueBool(u32),
    /// Duplicate the top of stack.
    Dup,
    /// Pop and discard.
    Pop,
    /// Pop into the top-level result register.
    PopLast,
    /// Clear the top-level result register (non-expression statements).
    SetLastNull,
    /// Bind function `fns[i]` to its name (dynamic declaration point).
    DeclareFn(u32),
    /// Call the bare name of call site `sites[i]`: a user function when one
    /// is bound, else a host call. Resolution is memoized in the site's
    /// inline cache.
    CallNamed(u32),
    /// Call the pre-interned host path of call site `sites[i]`.
    CallHost(u32),
    /// Raise the invalid-callee error (callee is neither a name nor a
    /// dotted path; arguments were still evaluated first).
    CallInvalid,
    /// Pop the return value, pop the current frame (or finish a top-level
    /// `return`).
    Return,
    /// End of top-level code: yield the result register.
    Halt,
    // ---- fused superinstructions ------------------------------------------
    // Emission-time fusions of the adjacent pairs that dominate loop bodies;
    // each behaves exactly like its two components in sequence. `emit` never
    // fuses across a jump target, so every recorded label still lands on a
    // real instruction boundary.
    /// `LoadSlot(a)` then `LoadSlot(b)`.
    LoadSlot2(u32, u32),
    /// `LoadSlot(slot)` then `Const(i)`.
    LoadSlotConst(u32, u32),
    /// `Fuel(n)` then `Add`.
    FuelAdd(u32),
    /// `Fuel(n)` then the numeric operator.
    FuelNumeric(u32, NumOp),
    /// `Fuel(n)` then `Jump(pc)` (`FuelJump(n, pc)`).
    FuelJump(u32, u32),
    /// `Fuel(n)` then `JumpIfFalse(pc)` (`FuelJumpIfFalse(n, pc)`).
    FuelJumpIfFalse(u32, u32),
    /// `Fuel(n)`, the numeric operator, then `JumpIfFalse(pc)` — the shape
    /// of every compiled loop condition (`FuelNumericJumpIfFalse(n, op, pc)`).
    FuelNumericJumpIfFalse(u32, NumOp, u32),
    /// `Fuel(n)` then `CallNamed(site)`.
    FuelCallNamed(u32, u32),
    /// `Fuel(n)` then `CallHost(site)`.
    FuelCallHost(u32, u32),
    /// `Fuel(n)`, `Add`, then `StoreSlot(slot)` — accumulator updates like
    /// `x = x + e` (`FuelAddStore(n, slot)`).
    FuelAddStore(u32, u32),
    /// `Fuel(n)`, the numeric operator, then `StoreSlot(slot)`
    /// (`FuelNumericStore(n, op, slot)`).
    FuelNumericStore(u32, NumOp, u32),
    /// `LoadSlot(slot)` then `Null`.
    LoadSlotNull(u32),
    /// `LoadSlot(slot)`, `Null`, then `Eq` — null tests like `s == null`.
    SlotEqNull(u32),
    /// `LoadSlot(slot)`, `Null`, then `Ne`.
    SlotNeNull(u32),
    /// `Add` then `StoreSlot(slot)` — the tail of accumulator updates whose
    /// fuel was already flushed mid-expression.
    AddStore(u32),
    /// `PopLocals(n)` then `Jump(pc)` — the back edge of every loop whose
    /// body declared locals (`PopLocalsJump(n, pc)`).
    PopLocalsJump(u32, u32),
    /// `Fuel(n)` then `Return`.
    FuelReturn(u32),
    /// `LoadSlot2(a, b)` then `Fuel(n)` — the operand loads plus the fuel
    /// flush that precedes a binary operator (`LoadSlot2Fuel(a, b, n)`).
    LoadSlot2Fuel(u32, u32, u32),
    /// `LoadSlot2Fuel(a, b, n)` then the numeric operator — slot-to-slot
    /// arithmetic like `s - level` in one op
    /// (`SlotsFuelNumeric(a, b, n, op)`).
    SlotsFuelNumeric(u32, u32, u32, NumOp),
    /// `LoadSlot2Fuel(a, b, n)` then `Add` (`SlotsFuelAdd(a, b, n)`).
    SlotsFuelAdd(u32, u32, u32),
    /// `LoadSlot(slot)` then `Fuel(n)` (`LoadSlotFuel(slot, n)`).
    LoadSlotFuel(u32, u32),
    /// `LoadSlotFuel(slot, n)` then the numeric operator — the slot is the
    /// right operand, the left comes off the stack
    /// (`SlotFuelNumeric(slot, n, op)`).
    SlotFuelNumeric(u32, u32, NumOp),
    /// `LoadSlotFuel(slot, n)` then `Add` (`SlotFuelAdd(slot, n)`).
    SlotFuelAdd(u32, u32),
}

/// The purely numeric binary operators, as carried by fused ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NumOp {
    /// Numeric difference.
    Sub,
    /// Numeric product.
    Mul,
    /// Numeric quotient.
    Div,
    /// Numeric remainder.
    Rem,
    /// Numeric `<`.
    Lt,
    /// Numeric `<=`.
    Le,
    /// Numeric `>`.
    Gt,
    /// Numeric `>=`.
    Ge,
}

impl NumOp {
    /// Applies the operator to two numbers (infallible).
    pub(crate) fn apply(self, a: f64, b: f64) -> Value {
        match self {
            NumOp::Sub => Value::Num(a - b),
            NumOp::Mul => Value::Num(a * b),
            NumOp::Div => Value::Num(a / b),
            NumOp::Rem => Value::Num(a % b),
            NumOp::Lt => Value::Bool(a < b),
            NumOp::Le => Value::Bool(a <= b),
            NumOp::Gt => Value::Bool(a > b),
            NumOp::Ge => Value::Bool(a >= b),
        }
    }
}

/// Fuses two adjacent ops into a single superinstruction where a fused
/// variant exists.
fn fuse(prev: Op, next: Op) -> Option<Op> {
    match (prev, next) {
        (Op::LoadSlot(a), Op::LoadSlot(b)) => Some(Op::LoadSlot2(a, b)),
        (Op::LoadSlot(slot), Op::Const(i)) => Some(Op::LoadSlotConst(slot, i)),
        (Op::Fuel(n), Op::Add) => Some(Op::FuelAdd(n)),
        (Op::Fuel(n), Op::Sub) => Some(Op::FuelNumeric(n, NumOp::Sub)),
        (Op::Fuel(n), Op::Mul) => Some(Op::FuelNumeric(n, NumOp::Mul)),
        (Op::Fuel(n), Op::Div) => Some(Op::FuelNumeric(n, NumOp::Div)),
        (Op::Fuel(n), Op::Rem) => Some(Op::FuelNumeric(n, NumOp::Rem)),
        (Op::Fuel(n), Op::Lt) => Some(Op::FuelNumeric(n, NumOp::Lt)),
        (Op::Fuel(n), Op::Le) => Some(Op::FuelNumeric(n, NumOp::Le)),
        (Op::Fuel(n), Op::Gt) => Some(Op::FuelNumeric(n, NumOp::Gt)),
        (Op::Fuel(n), Op::Ge) => Some(Op::FuelNumeric(n, NumOp::Ge)),
        (Op::Fuel(n), Op::Jump(t)) => Some(Op::FuelJump(n, t)),
        (Op::Fuel(n), Op::CallNamed(site)) => Some(Op::FuelCallNamed(n, site)),
        (Op::Fuel(n), Op::CallHost(site)) => Some(Op::FuelCallHost(n, site)),
        (Op::FuelAdd(n), Op::StoreSlot(slot)) => Some(Op::FuelAddStore(n, slot)),
        (Op::FuelNumeric(n, nop), Op::StoreSlot(slot)) => {
            Some(Op::FuelNumericStore(n, nop, slot))
        }
        (Op::Add, Op::StoreSlot(slot)) => Some(Op::AddStore(slot)),
        (Op::LoadSlot(slot), Op::Null) => Some(Op::LoadSlotNull(slot)),
        (Op::LoadSlotNull(slot), Op::Eq) => Some(Op::SlotEqNull(slot)),
        (Op::LoadSlotNull(slot), Op::Ne) => Some(Op::SlotNeNull(slot)),
        (Op::PopLocals(n), Op::Jump(t)) => Some(Op::PopLocalsJump(n, t)),
        (Op::Fuel(n), Op::Return) => Some(Op::FuelReturn(n)),
        // Slot-operand arithmetic chains: the operand loads absorb the fuel
        // flush that precedes every binary operator, then the operator
        // itself, collapsing `a - b` / `d * d` / `x + y` over frame slots
        // into a single op.
        (Op::LoadSlot2(a, b), Op::Fuel(n)) => Some(Op::LoadSlot2Fuel(a, b, n)),
        (Op::LoadSlot2Fuel(a, b, n), op) if num_op_of(op).is_some() => {
            Some(Op::SlotsFuelNumeric(a, b, n, num_op_of(op)?))
        }
        (Op::LoadSlot2Fuel(a, b, n), Op::Add) => Some(Op::SlotsFuelAdd(a, b, n)),
        (Op::LoadSlot(slot), Op::Fuel(n)) => Some(Op::LoadSlotFuel(slot, n)),
        (Op::LoadSlotFuel(slot, n), op) if num_op_of(op).is_some() => {
            Some(Op::SlotFuelNumeric(slot, n, num_op_of(op)?))
        }
        (Op::LoadSlotFuel(slot, n), Op::Add) => Some(Op::SlotFuelAdd(slot, n)),
        _ => None,
    }
}

/// The [`NumOp`] a plain operator op applies, when it is one.
fn num_op_of(op: Op) -> Option<NumOp> {
    match op {
        Op::Sub => Some(NumOp::Sub),
        Op::Mul => Some(NumOp::Mul),
        Op::Div => Some(NumOp::Div),
        Op::Rem => Some(NumOp::Rem),
        Op::Lt => Some(NumOp::Lt),
        Op::Le => Some(NumOp::Le),
        Op::Gt => Some(NumOp::Gt),
        Op::Ge => Some(NumOp::Ge),
        _ => None,
    }
}

/// A lowered user function.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CompiledFn {
    /// Interned function name (also the binding key).
    pub(crate) name: u32,
    /// Interned parameter names, in declaration order.
    pub(crate) params: Vec<u32>,
    /// Entry pc of the body.
    pub(crate) entry: u32,
}

/// A call site: the pre-interned dispatch string plus its arity. The site
/// index doubles as the key of the VM's inline cache for that site.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CallSite {
    /// Bare callee name (`CallNamed`) or flattened dotted host path
    /// (`CallHost`), ready to hand to [`super::Host::call`].
    pub(crate) path: String,
    /// Number of arguments at this site.
    pub(crate) argc: u32,
    /// Interned id of the bare callee name (`CallNamed` sites only; host
    /// sites carry `u32::MAX`, which the VM never reads).
    pub(crate) name: u32,
}

/// A [`Program`] lowered to bytecode: the op stream plus the side tables it
/// indexes. Compile once per deployed script, execute per reading with
/// [`super::Vm`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    pub(crate) code: Vec<Op>,
    pub(crate) consts: Vec<Value>,
    pub(crate) names: Vec<String>,
    pub(crate) fns: Vec<CompiledFn>,
    pub(crate) sites: Vec<CallSite>,
    pub(crate) map_shapes: Vec<Vec<String>>,
}

impl CompiledProgram {
    /// Number of ops in the instruction stream.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program contains no ops (it never does: compilation
    /// always emits at least `Halt`).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Number of distinct call sites (each has its own inline cache).
    pub fn call_sites(&self) -> usize {
        self.sites.len()
    }
}

/// Hashable identity of a pooled constant (`f64` keyed by bit pattern).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ConstKey {
    Num(u64),
    Str(String),
}

/// A function body queued for lowering once the enclosing code is done.
struct QueuedFn<'p> {
    index: usize,
    body: &'p [Stmt],
}

/// A user function eligible for call-site inlining: its body is a single
/// `return <expr>` whose expression contains no calls and no assignments,
/// its parameter names are distinct, and the program declares the name
/// exactly once, by an unconditionally executed top-level statement.
struct InlineFn<'p> {
    params: Vec<u32>,
    body: &'p Expr,
}

/// How one parameter of an inlined call is bound: reads of the parameter
/// inside the body compile to the substituted load (no temporary exists).
#[derive(Debug, Clone, Copy)]
enum ParamBinding {
    /// The argument was an identifier resolved to a caller frame slot.
    Slot(u32),
    /// The argument was a pooled number/string literal.
    Const(u32),
    /// The argument was the literal `null`.
    Null,
    /// The argument was the literal `true`.
    True,
    /// The argument was the literal `false`.
    False,
}

struct Compiler<'p> {
    code: Vec<Op>,
    consts: Vec<Value>,
    const_index: HashMap<ConstKey, u32>,
    names: Vec<String>,
    name_index: HashMap<String, u32>,
    fns: Vec<CompiledFn>,
    sites: Vec<CallSite>,
    map_shapes: Vec<Vec<String>>,
    shape_index: HashMap<Vec<String>, u32>,
    /// Compile-time scope stack for the function currently being lowered;
    /// each scope holds the interned names of its locals in push order.
    scopes: Vec<Vec<u32>>,
    /// Fuel owed for AST nodes already entered but not yet charged.
    pending_fuel: u32,
    /// Ops at indices below this may not take part in fusion: the next
    /// index is (or may become) a jump target.
    fuse_barrier: usize,
    queue: Vec<QueuedFn<'p>>,
    /// `fn` declarations per name anywhere in the program; a second
    /// declaration could rebind the name at runtime, which disqualifies it
    /// from inlining.
    fn_decls: HashMap<&'p str, u32>,
    /// Leaf functions eligible for inlining, keyed by interned name.
    inline_fns: HashMap<u32, InlineFn<'p>>,
    /// Parameter substitutions active while compiling an inlined body.
    inline_aliases: Option<HashMap<u32, ParamBinding>>,
    /// Whether queued function bodies are being lowered: inlining is
    /// restricted to top-level call sites, where the runtime call depth is
    /// zero, so an inlined call can never observe `MAX_CALL_DEPTH`.
    in_function: bool,
}

/// Lowers `program` to bytecode. Fails only when a side table exceeds its
/// capacity limit.
pub(crate) fn compile(program: &Program) -> Result<CompiledProgram, ApisenseError> {
    let mut fn_decls = HashMap::new();
    count_fn_decls(&program.statements, &mut fn_decls);
    let mut c = Compiler {
        code: Vec::new(),
        consts: Vec::new(),
        const_index: HashMap::new(),
        names: Vec::new(),
        name_index: HashMap::new(),
        fns: Vec::new(),
        sites: Vec::new(),
        map_shapes: Vec::new(),
        shape_index: HashMap::new(),
        scopes: vec![Vec::new()],
        pending_fuel: 0,
        fuse_barrier: 0,
        queue: Vec::new(),
        fn_decls,
        inline_fns: HashMap::new(),
        inline_aliases: None,
        in_function: false,
    };
    for stmt in &program.statements {
        c.stmt(stmt, true)?;
        c.register_inline(stmt)?;
    }
    c.flush_fuel();
    c.emit(Op::Halt);
    c.in_function = true;
    while let Some(queued) = c.queue.pop() {
        c.function_body(queued)?;
    }
    Ok(CompiledProgram {
        code: c.code,
        consts: c.consts,
        names: c.names,
        fns: c.fns,
        sites: c.sites,
        map_shapes: c.map_shapes,
    })
}

fn limit_error(table: &'static str, count: usize, limit: usize) -> ApisenseError {
    ApisenseError::ScriptCompile {
        table,
        count,
        limit,
    }
}

impl<'p> Compiler<'p> {
    // ---- emission helpers -------------------------------------------------

    fn emit(&mut self, op: Op) {
        if self.code.len() > self.fuse_barrier {
            if let Some(&prev) = self.code.last() {
                if let Some(fused) = fuse(prev, op) {
                    *self.code.last_mut().expect("non-empty above") = fused;
                    return;
                }
            }
        }
        self.code.push(op);
    }

    /// Emits a jump with a placeholder target; returns its index for
    /// [`Self::patch_to_here`]. Conditional exits fuse with the fuel charge
    /// (and comparison) that always precedes them, collapsing the common
    /// loop-condition tail into one op.
    fn emit_jump(&mut self, op: Op) -> usize {
        if self.code.len() > self.fuse_barrier {
            if let Some(&prev) = self.code.last() {
                let fused = match (prev, op) {
                    (Op::Fuel(n), Op::Jump(t)) => Some(Op::FuelJump(n, t)),
                    (Op::Fuel(n), Op::JumpIfFalse(t)) => Some(Op::FuelJumpIfFalse(n, t)),
                    (Op::FuelNumeric(n, nop), Op::JumpIfFalse(t)) => {
                        Some(Op::FuelNumericJumpIfFalse(n, nop, t))
                    }
                    _ => None,
                };
                if let Some(fused) = fused {
                    *self.code.last_mut().expect("non-empty above") = fused;
                    return self.code.len() - 1;
                }
            }
        }
        self.code.push(op);
        self.code.len() - 1
    }

    /// Marks the current position as a jump target and returns it. The
    /// fusion barrier moves here so the next emitted op stays a real
    /// instruction boundary instead of disappearing into its predecessor.
    fn label_here(&mut self) -> u32 {
        self.fuse_barrier = self.code.len();
        self.code.len() as u32
    }

    fn patch_to_here(&mut self, at: usize) {
        let target = self.label_here();
        match &mut self.code[at] {
            Op::Jump(t)
            | Op::JumpIfFalse(t)
            | Op::JumpIfFalseBool(t)
            | Op::JumpIfTrueBool(t)
            | Op::FuelJump(_, t)
            | Op::FuelJumpIfFalse(_, t)
            | Op::FuelNumericJumpIfFalse(_, _, t) => *t = target,
            other => unreachable!("patching non-jump op {other:?}"),
        }
    }

    /// Records fuel owed for `n` just-entered AST nodes.
    fn charge(&mut self, n: u32) {
        self.pending_fuel += n;
    }

    /// Emits the owed fuel charge. Called before every fallible op, every
    /// jump, and every jump target so cumulative fuel at each observable
    /// point matches the tree-walker exactly.
    fn flush_fuel(&mut self) {
        if self.pending_fuel > 0 {
            self.emit(Op::Fuel(self.pending_fuel));
            self.pending_fuel = 0;
        }
    }

    // ---- interning --------------------------------------------------------

    fn name_id(&mut self, name: &str) -> Result<u32, ApisenseError> {
        if let Some(&id) = self.name_index.get(name) {
            return Ok(id);
        }
        if self.names.len() >= MAX_TABLE {
            return Err(limit_error(
                "interned names",
                self.names.len() + 1,
                MAX_TABLE,
            ));
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.name_index.insert(name.to_string(), id);
        Ok(id)
    }

    fn const_id(&mut self, key: ConstKey, value: Value) -> Result<u32, ApisenseError> {
        if let Some(&id) = self.const_index.get(&key) {
            return Ok(id);
        }
        if self.consts.len() >= MAX_TABLE {
            return Err(limit_error(
                "constant pool",
                self.consts.len() + 1,
                MAX_TABLE,
            ));
        }
        let id = self.consts.len() as u32;
        self.consts.push(value);
        self.const_index.insert(key, id);
        Ok(id)
    }

    fn site_id(&mut self, path: String, argc: usize, name: u32) -> Result<u32, ApisenseError> {
        if self.sites.len() >= MAX_TABLE {
            return Err(limit_error("call sites", self.sites.len() + 1, MAX_TABLE));
        }
        let id = self.sites.len() as u32;
        self.sites.push(CallSite {
            path,
            argc: argc as u32,
            name,
        });
        Ok(id)
    }

    fn shape_id(&mut self, shape: Vec<String>) -> Result<u32, ApisenseError> {
        if let Some(&id) = self.shape_index.get(&shape) {
            return Ok(id);
        }
        if self.map_shapes.len() >= MAX_TABLE {
            return Err(limit_error(
                "map shapes",
                self.map_shapes.len() + 1,
                MAX_TABLE,
            ));
        }
        let id = self.map_shapes.len() as u32;
        self.map_shapes.push(shape.clone());
        self.shape_index.insert(shape, id);
        Ok(id)
    }

    // ---- scope resolution -------------------------------------------------

    fn frame_locals(&self) -> usize {
        self.scopes.iter().map(Vec::len).sum()
    }

    /// Resolves `id` against the current frame's scopes, innermost first;
    /// returns the frame-relative slot.
    fn resolve(&self, id: u32) -> Option<u32> {
        let mut base = self.frame_locals();
        for scope in self.scopes.iter().rev() {
            base -= scope.len();
            if let Some(pos) = scope.iter().rposition(|&n| n == id) {
                return Some((base + pos) as u32);
            }
        }
        None
    }

    /// Slot of `id` when already declared in the *innermost* scope (a `let`
    /// re-declaration overwrites in place, like the tree-walker's
    /// `HashMap::insert`).
    fn innermost_slot(&self, id: u32) -> Option<u32> {
        let scope = self.scopes.last().expect("scope stack never empty");
        let base = self.frame_locals() - scope.len();
        scope
            .iter()
            .rposition(|&n| n == id)
            .map(|pos| (base + pos) as u32)
    }

    fn declare_local(&mut self, id: u32) -> Result<(), ApisenseError> {
        if self.frame_locals() >= MAX_FRAME_LOCALS {
            return Err(limit_error(
                "frame locals",
                self.frame_locals() + 1,
                MAX_FRAME_LOCALS,
            ));
        }
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .push(id);
        Ok(())
    }

    // ---- statements -------------------------------------------------------

    /// Lowers one statement. `value_ctx` is true for top-level statements,
    /// where each statement updates the program's result register the way
    /// the tree-walker tracks its `last` value.
    fn stmt(&mut self, stmt: &'p Stmt, value_ctx: bool) -> Result<(), ApisenseError> {
        self.charge(1); // the tree-walker burns once per executed statement
        match stmt {
            Stmt::Let(name, expr) => {
                self.expr(expr)?;
                let id = self.name_id(name)?;
                match self.innermost_slot(id) {
                    Some(slot) => self.emit(Op::StoreSlot(slot)),
                    None => {
                        self.declare_local(id)?;
                        self.emit(Op::PushLocal(id));
                    }
                }
                if value_ctx {
                    self.emit(Op::SetLastNull);
                }
            }
            Stmt::Fn { name, params, body } => {
                let name_id = self.name_id(name)?;
                let param_ids = params
                    .iter()
                    .map(|p| self.name_id(p))
                    .collect::<Result<Vec<_>, _>>()?;
                if self.fns.len() >= MAX_TABLE {
                    return Err(limit_error("functions", self.fns.len() + 1, MAX_TABLE));
                }
                let index = self.fns.len();
                self.fns.push(CompiledFn {
                    name: name_id,
                    params: param_ids,
                    entry: 0,
                });
                self.queue.push(QueuedFn { index, body });
                self.emit(Op::DeclareFn(index as u32));
                if value_ctx {
                    self.emit(Op::SetLastNull);
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond)?;
                self.flush_fuel();
                let to_else = self.emit_jump(Op::JumpIfFalse(0));
                self.block(then_branch, value_ctx)?;
                self.flush_fuel();
                let to_end = self.emit_jump(Op::Jump(0));
                self.patch_to_here(to_else);
                self.block(else_branch, value_ctx)?;
                self.flush_fuel();
                self.patch_to_here(to_end);
            }
            Stmt::While { cond, body } => {
                // Charge the statement node once, before the loop head, so
                // each iteration pays only for the condition and body.
                self.flush_fuel();
                let head = self.label_here();
                self.expr(cond)?;
                self.flush_fuel();
                let to_end = self.emit_jump(Op::JumpIfFalse(0));
                self.block(body, false)?;
                self.flush_fuel();
                self.emit(Op::Jump(head));
                self.patch_to_here(to_end);
                if value_ctx {
                    self.emit(Op::SetLastNull);
                }
            }
            Stmt::Return(expr) => {
                match expr {
                    Some(e) => self.expr(e)?,
                    None => self.emit(Op::Null),
                }
                self.flush_fuel();
                self.emit(Op::Return);
            }
            Stmt::Expr(expr) => {
                if value_ctx {
                    self.expr(expr)?;
                    self.emit(Op::PopLast);
                } else if let Expr::Assign(target, value) = expr {
                    // Statement-position assignment: skip materializing the
                    // expression result (the tree-walker clones it only to
                    // discard it).
                    self.charge(1); // the Assign expression node itself
                    self.assign(target, value, false)?;
                } else {
                    self.expr(expr)?;
                    self.emit(Op::Pop);
                }
            }
        }
        Ok(())
    }

    /// Lowers a `{ ... }` block: fresh compile-time scope, locals popped on
    /// exit. In value context an empty block clears the result register
    /// (the tree-walker's empty block yields `Null`).
    fn block(&mut self, stmts: &'p [Stmt], value_ctx: bool) -> Result<(), ApisenseError> {
        if stmts.is_empty() {
            if value_ctx {
                self.emit(Op::SetLastNull);
            }
            return Ok(());
        }
        self.scopes.push(Vec::new());
        let mut result = Ok(());
        for stmt in stmts {
            result = self.stmt(stmt, value_ctx);
            if result.is_err() {
                break;
            }
        }
        let popped = self.scopes.pop().expect("scope pushed above").len();
        result?;
        if popped > 0 {
            self.emit(Op::PopLocals(popped as u32));
        }
        Ok(())
    }

    /// Lowers a queued function body with a fresh frame scope holding the
    /// parameters. Falls off the end as `return null` (the tree-walker
    /// yields `Null` unless an explicit `return` runs).
    fn function_body(&mut self, queued: QueuedFn<'p>) -> Result<(), ApisenseError> {
        self.fns[queued.index].entry = self.label_here();
        let params = self.fns[queued.index].params.clone();
        let saved = std::mem::replace(&mut self.scopes, vec![params]);
        debug_assert_eq!(self.pending_fuel, 0, "fuel leaked across function bodies");
        let mut result = Ok(());
        for stmt in queued.body {
            result = self.stmt(stmt, false);
            if result.is_err() {
                break;
            }
        }
        self.scopes = saved;
        result?;
        self.flush_fuel();
        self.emit(Op::Null);
        self.emit(Op::Return);
        Ok(())
    }

    // ---- expressions ------------------------------------------------------

    /// Lowers an expression; the generated ops leave exactly one value on
    /// the stack.
    fn expr(&mut self, expr: &'p Expr) -> Result<(), ApisenseError> {
        self.charge(1); // the tree-walker burns once per evaluated node
        match expr {
            Expr::Num(n) => {
                let id = self.const_id(ConstKey::Num(n.to_bits()), Value::Num(*n))?;
                self.emit(Op::Const(id));
            }
            Expr::Str(s) => {
                let id = self.const_id(ConstKey::Str(s.clone()), Value::Str(s.clone()))?;
                self.emit(Op::Const(id));
            }
            Expr::Bool(true) => self.emit(Op::True),
            Expr::Bool(false) => self.emit(Op::False),
            Expr::Null => self.emit(Op::Null),
            Expr::Ident(name) => {
                let id = self.name_id(name)?;
                let alias = self
                    .inline_aliases
                    .as_ref()
                    .and_then(|aliases| aliases.get(&id))
                    .copied();
                if let Some(binding) = alias {
                    match binding {
                        ParamBinding::Slot(slot) => self.emit(Op::LoadSlot(slot)),
                        ParamBinding::Const(i) => self.emit(Op::Const(i)),
                        ParamBinding::Null => self.emit(Op::Null),
                        ParamBinding::True => self.emit(Op::True),
                        ParamBinding::False => self.emit(Op::False),
                    }
                } else {
                    match self.resolve(id) {
                        Some(slot) => self.emit(Op::LoadSlot(slot)),
                        None => {
                            self.flush_fuel();
                            self.emit(Op::LoadDyn(id));
                        }
                    }
                }
            }
            Expr::List(items) => {
                for item in items {
                    self.expr(item)?;
                }
                self.emit(Op::MakeList(items.len() as u32));
            }
            Expr::Map(entries) => {
                for (_, value) in entries {
                    self.expr(value)?;
                }
                let shape: Vec<String> = entries.iter().map(|(k, _)| k.clone()).collect();
                let id = self.shape_id(shape)?;
                self.emit(Op::MakeMap(id));
            }
            Expr::Unary(op, operand) => {
                self.expr(operand)?;
                match op {
                    UnaryOp::Neg => {
                        self.flush_fuel();
                        self.emit(Op::Neg);
                    }
                    UnaryOp::Not => self.emit(Op::Not),
                }
            }
            Expr::Binary(op, lhs, rhs) => self.binary(*op, lhs, rhs)?,
            Expr::Member(object, field) => {
                self.expr(object)?;
                let id = self.name_id(field)?;
                self.flush_fuel();
                self.emit(Op::Member(id));
            }
            Expr::Index(object, index) => {
                self.expr(object)?;
                self.expr(index)?;
                self.flush_fuel();
                self.emit(Op::IndexGet);
            }
            Expr::Call(callee, args) => self.call(callee, args)?,
            Expr::Assign(target, value) => self.assign(target, value, true)?,
        }
        Ok(())
    }

    fn binary(
        &mut self,
        op: BinaryOp,
        lhs: &'p Expr,
        rhs: &'p Expr,
    ) -> Result<(), ApisenseError> {
        if matches!(op, BinaryOp::And | BinaryOp::Or) {
            self.expr(lhs)?;
            self.flush_fuel();
            let short = self.emit_jump(match op {
                BinaryOp::And => Op::JumpIfFalseBool(0),
                _ => Op::JumpIfTrueBool(0),
            });
            self.expr(rhs)?;
            self.flush_fuel();
            self.emit(Op::ToBool);
            self.patch_to_here(short);
            return Ok(());
        }
        self.expr(lhs)?;
        self.expr(rhs)?;
        let compiled = match op {
            BinaryOp::Add => Op::Add,
            BinaryOp::Sub => Op::Sub,
            BinaryOp::Mul => Op::Mul,
            BinaryOp::Div => Op::Div,
            BinaryOp::Rem => Op::Rem,
            BinaryOp::Eq => Op::Eq,
            BinaryOp::Ne => Op::Ne,
            BinaryOp::Lt => Op::Lt,
            BinaryOp::Le => Op::Le,
            BinaryOp::Gt => Op::Gt,
            BinaryOp::Ge => Op::Ge,
            BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
        };
        if !matches!(compiled, Op::Eq | Op::Ne) {
            self.flush_fuel(); // numeric ops can fail on non-numbers
        }
        self.emit(compiled);
        Ok(())
    }

    /// Records `stmt` as an inlinable leaf function when it qualifies.
    /// Called only for unconditionally executed top-level statements, after
    /// the declaration itself has been lowered, so every later call site is
    /// guaranteed to see the binding live.
    fn register_inline(&mut self, stmt: &'p Stmt) -> Result<(), ApisenseError> {
        let Stmt::Fn { name, params, body } = stmt else {
            return Ok(());
        };
        if self.fn_decls.get(name.as_str()) != Some(&1) {
            return Ok(());
        }
        let [Stmt::Return(Some(expr))] = body.as_slice() else {
            return Ok(());
        };
        if !is_leaf_expr(expr) {
            return Ok(());
        }
        let mut param_ids = Vec::with_capacity(params.len());
        for param in params {
            param_ids.push(self.name_id(param)?);
        }
        let mut distinct = param_ids.clone();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() != param_ids.len() {
            return Ok(()); // duplicate parameters shadow each other
        }
        let id = self.name_id(name)?;
        self.inline_fns.insert(
            id,
            InlineFn {
                params: param_ids,
                body: expr,
            },
        );
        Ok(())
    }

    /// Compiles a call to an inlinable leaf function in place: arguments
    /// bind as substitutions (resolved identifiers, literals) or spill to
    /// real temporaries (anything whose evaluation is observable), then the
    /// body expression compiles directly into the caller's frame — no call
    /// frame, no dispatch, no return.
    ///
    /// Fuel matches the tree-walker node for node: the `Call` node is
    /// charged by [`Self::expr`], each substituted argument charges its
    /// single node here, spilled arguments charge through [`Self::expr`],
    /// the body's `return` statement charges one, and the body expression
    /// charges as usual.
    fn inline_call(
        &mut self,
        params: &[u32],
        body: &'p Expr,
        args: &'p [Expr],
    ) -> Result<(), ApisenseError> {
        // A substituted identifier is re-read at body position, after every
        // argument: only safe when no argument expression can assign to it.
        let allow_slots = !args.iter().any(contains_assign);
        let mut bindings = HashMap::new();
        let mut spilled = Vec::new();
        for (&param, arg) in params.iter().zip(args) {
            match self.substitution(arg, allow_slots)? {
                Some(binding) => {
                    self.charge(1); // the argument's single AST node
                    bindings.insert(param, binding);
                }
                None => {
                    self.expr(arg)?; // observable: evaluate once, in order
                    spilled.push(param);
                }
            }
        }
        // Arguments all evaluated against the caller's scope; only now do
        // the spilled ones become named locals. Pushed in reverse so the
        // first spilled argument (deepest on the stack) binds last and ends
        // up under its own name.
        self.scopes.push(Vec::new());
        for &param in spilled.iter().rev() {
            self.declare_local(param)?;
            self.emit(Op::PushLocal(param));
        }
        self.charge(1); // the body's `return` statement
        let replaced = self.inline_aliases.replace(bindings);
        debug_assert!(replaced.is_none(), "inline calls never nest");
        let result = self.expr(body);
        self.inline_aliases = None;
        let popped = self.scopes.pop().expect("scope pushed above").len();
        result?;
        if popped > 0 {
            self.emit(Op::PopLocals(popped as u32));
        }
        Ok(())
    }

    /// Compile-time binding for an inlined argument whose evaluation is
    /// unobservable: a frame-resolved identifier or a literal. Anything
    /// else (host calls, arithmetic, dynamic lookups that may error)
    /// returns `None` and is evaluated at the call site instead.
    fn substitution(
        &mut self,
        arg: &Expr,
        allow_slots: bool,
    ) -> Result<Option<ParamBinding>, ApisenseError> {
        Ok(match arg {
            Expr::Num(n) => Some(ParamBinding::Const(
                self.const_id(ConstKey::Num(n.to_bits()), Value::Num(*n))?,
            )),
            Expr::Str(s) => Some(ParamBinding::Const(
                self.const_id(ConstKey::Str(s.clone()), Value::Str(s.clone()))?,
            )),
            Expr::Bool(true) => Some(ParamBinding::True),
            Expr::Bool(false) => Some(ParamBinding::False),
            Expr::Null => Some(ParamBinding::Null),
            Expr::Ident(name) if allow_slots => {
                let id = self.name_id(name)?;
                self.resolve(id).map(ParamBinding::Slot)
            }
            _ => None,
        })
    }

    fn call(&mut self, callee: &'p Expr, args: &'p [Expr]) -> Result<(), ApisenseError> {
        if let Expr::Ident(name) = callee {
            if !self.in_function && self.inline_aliases.is_none() {
                let id = self.name_id(name)?;
                if let Some(inline) = self.inline_fns.get(&id) {
                    if inline.params.len() == args.len() {
                        let params = inline.params.clone();
                        let body = inline.body;
                        return self.inline_call(&params, body, args);
                    }
                }
            }
        }
        for arg in args {
            self.expr(arg)?;
        }
        self.flush_fuel();
        if let Expr::Ident(name) = callee {
            let id = self.name_id(name)?;
            let site = self.site_id(name.clone(), args.len(), id)?;
            self.emit(Op::CallNamed(site));
            return Ok(());
        }
        match host_path(callee) {
            Some(path) => {
                let site = self.site_id(path, args.len(), u32::MAX)?;
                self.emit(Op::CallHost(site));
            }
            None => self.emit(Op::CallInvalid),
        }
        Ok(())
    }

    /// Lowers `target = value`. With `keep_value` the assigned value stays
    /// on the stack as the expression result.
    ///
    /// The caller accounts the `Assign` node's own fuel charge.
    fn assign(
        &mut self,
        target: &'p Expr,
        value: &'p Expr,
        keep_value: bool,
    ) -> Result<(), ApisenseError> {
        self.expr(value)?;
        if keep_value {
            self.emit(Op::Dup);
        }
        match target {
            Expr::Ident(name) => {
                let id = self.name_id(name)?;
                match self.resolve(id) {
                    Some(slot) => self.emit(Op::StoreSlot(slot)),
                    None => {
                        self.flush_fuel();
                        self.emit(Op::StoreDyn(id));
                    }
                }
            }
            Expr::Member(object, field) => {
                let field_id = self.name_id(field)?;
                if let Expr::Ident(root) = object.as_ref() {
                    let root_id = self.name_id(root)?;
                    self.flush_fuel();
                    match self.resolve(root_id) {
                        Some(slot) => self.emit(Op::MemberSetSlot(slot, field_id)),
                        None => self.emit(Op::MemberSetDyn(root_id, field_id)),
                    }
                } else {
                    self.failed_assign(object)?;
                }
            }
            Expr::Index(object, index) => {
                self.expr(index)?;
                if let Expr::Ident(root) = object.as_ref() {
                    let root_id = self.name_id(root)?;
                    self.flush_fuel();
                    match self.resolve(root_id) {
                        Some(slot) => self.emit(Op::IndexSetSlot(slot)),
                        None => self.emit(Op::IndexSetDyn(root_id)),
                    }
                } else {
                    self.failed_assign(object)?;
                }
            }
            _ => {
                self.flush_fuel();
                self.emit(Op::FailAssign(AssignFault::Invalid, 0));
            }
        }
        Ok(())
    }

    /// Emits the error op for an assignment through a multi-step or rootless
    /// path, preserving the tree-walker's error precedence (root lookup
    /// failure beats the nested-path error).
    fn failed_assign(&mut self, container: &'p Expr) -> Result<(), ApisenseError> {
        self.flush_fuel();
        match root_ident(container) {
            Some(root) => {
                let id = self.name_id(root)?;
                match self.resolve(id) {
                    Some(_) => self.emit(Op::FailAssign(AssignFault::Nested, 0)),
                    None => self.emit(Op::FailAssign(AssignFault::NestedDyn, id)),
                }
            }
            None => self.emit(Op::FailAssign(AssignFault::Unsupported, 0)),
        }
        Ok(())
    }
}

/// Flattens an identifier/member chain to a dotted host path (`sensor.gps`).
fn host_path(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Ident(name) => Some(name.clone()),
        Expr::Member(object, field) => host_path(object).map(|base| format!("{base}.{field}")),
        _ => None,
    }
}

/// Innermost identifier a member/index chain hangs off.
fn root_ident(expr: &Expr) -> Option<&str> {
    match expr {
        Expr::Ident(name) => Some(name),
        Expr::Member(object, _) | Expr::Index(object, _) => root_ident(object),
        _ => None,
    }
}

/// Counts `fn` declarations per name across the whole program, including
/// nested and conditional ones: any second declaration could rebind the
/// name at runtime.
fn count_fn_decls<'p>(stmts: &'p [Stmt], counts: &mut HashMap<&'p str, u32>) {
    for stmt in stmts {
        match stmt {
            Stmt::Fn { name, body, .. } => {
                *counts.entry(name.as_str()).or_insert(0) += 1;
                count_fn_decls(body, counts);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                count_fn_decls(then_branch, counts);
                count_fn_decls(else_branch, counts);
            }
            Stmt::While { body, .. } => count_fn_decls(body, counts),
            _ => {}
        }
    }
}

/// Whether `expr` contains no calls and no assignments anywhere: calls
/// would need a frame (and could recurse); assignments could write through
/// to substituted caller slots.
fn is_leaf_expr(expr: &Expr) -> bool {
    match expr {
        Expr::Num(_) | Expr::Str(_) | Expr::Bool(_) | Expr::Null | Expr::Ident(_) => true,
        Expr::List(items) => items.iter().all(is_leaf_expr),
        Expr::Map(entries) => entries.iter().all(|(_, v)| is_leaf_expr(v)),
        Expr::Unary(_, operand) => is_leaf_expr(operand),
        Expr::Binary(_, lhs, rhs) => is_leaf_expr(lhs) && is_leaf_expr(rhs),
        Expr::Member(object, _) => is_leaf_expr(object),
        Expr::Index(object, index) => is_leaf_expr(object) && is_leaf_expr(index),
        Expr::Call(..) | Expr::Assign(..) => false,
    }
}

/// Whether `expr` contains an assignment anywhere (used to disable slot
/// substitution when any inlined argument could mutate a sibling
/// argument's variable before the body reads it).
fn contains_assign(expr: &Expr) -> bool {
    match expr {
        Expr::Assign(..) => true,
        Expr::Num(_) | Expr::Str(_) | Expr::Bool(_) | Expr::Null | Expr::Ident(_) => false,
        Expr::List(items) => items.iter().any(contains_assign),
        Expr::Map(entries) => entries.iter().any(|(_, v)| contains_assign(v)),
        Expr::Unary(_, operand) => contains_assign(operand),
        Expr::Binary(_, lhs, rhs) => contains_assign(lhs) || contains_assign(rhs),
        Expr::Member(object, _) => contains_assign(object),
        Expr::Index(object, index) => contains_assign(object) || contains_assign(index),
        Expr::Call(callee, args) => contains_assign(callee) || args.iter().any(contains_assign),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Script;

    fn compiled(src: &str) -> CompiledProgram {
        CompiledProgram::clone(Script::compile(src).expect("script compiles").compiled())
    }

    /// Fuel units an op charges, across the plain op and every fused carrier.
    fn fuel_of(op: &Op) -> u32 {
        match op {
            Op::Fuel(n)
            | Op::FuelAdd(n)
            | Op::FuelNumeric(n, _)
            | Op::FuelJump(n, _)
            | Op::FuelJumpIfFalse(n, _)
            | Op::FuelNumericJumpIfFalse(n, _, _)
            | Op::FuelCallNamed(n, _)
            | Op::FuelCallHost(n, _)
            | Op::FuelAddStore(n, _)
            | Op::FuelNumericStore(n, _, _)
            | Op::FuelReturn(n)
            | Op::LoadSlot2Fuel(_, _, n)
            | Op::SlotsFuelNumeric(_, _, n, _)
            | Op::SlotsFuelAdd(_, _, n)
            | Op::LoadSlotFuel(_, n)
            | Op::SlotFuelNumeric(_, n, _)
            | Op::SlotFuelAdd(_, n) => *n,
            _ => 0,
        }
    }

    #[test]
    fn op_stays_word_sized() {
        println!("Op = {} bytes", std::mem::size_of::<Op>());
        assert!(std::mem::size_of::<Op>() <= 16);
    }

    #[test]
    fn host_sites_are_pre_interned() {
        let program = compiled("let fix = sensor.gps(); emit(fix);");
        let paths: Vec<&str> = program.sites.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["sensor.gps", "emit"]);
        assert!(program
            .code
            .iter()
            .any(|op| matches!(op, Op::CallHost(0) | Op::FuelCallHost(_, 0))));
        assert!(program
            .code
            .iter()
            .any(|op| matches!(op, Op::CallNamed(1) | Op::FuelCallNamed(_, 1))));
    }

    #[test]
    fn locals_become_slots() {
        let program = compiled("let a = 1; let b = 2; a + b;");
        // The slot loads, the fuel flush and the operator all fuse into one
        // superinstruction.
        assert!(program
            .code
            .iter()
            .any(|op| matches!(op, Op::SlotsFuelAdd(0, 1, _))));
        assert!(!program.code.iter().any(|op| matches!(op, Op::LoadDyn(_))));
    }

    #[test]
    fn fusion_never_swallows_a_jump_target() {
        // The loop head is `LoadSlot(i); Const; ...` right after the
        // preceding statement's ops: without the fusion barrier the head
        // op would merge backwards and the loop's back-jump would land
        // mid-instruction.
        let program = compiled("let i = 0; let x = 9; while (i < 3) { i = i + 1; } emit(i);");
        for op in &program.code {
            let target = match op {
                Op::Jump(t)
                | Op::JumpIfFalse(t)
                | Op::FuelJump(_, t)
                | Op::FuelJumpIfFalse(_, t)
                | Op::FuelNumericJumpIfFalse(_, _, t)
                | Op::PopLocalsJump(_, t) => Some(*t),
                _ => None,
            };
            if let Some(t) = target {
                assert!(
                    (t as usize) < program.code.len(),
                    "jump target {t} out of range"
                );
            }
        }
        // The loop still terminates with the right value under the VM.
        struct Mute;
        impl crate::script::Host for Mute {
            fn call(&mut self, _: &str, _: &mut [Value]) -> Result<Value, ApisenseError> {
                Ok(Value::Null)
            }
        }
        let script = Script::compile("let i = 0; while (i < 3) { i = i + 1; } i;")
            .expect("script compiles");
        let out = script
            .run_vm(&mut crate::script::Vm::new(), &mut Mute, 10_000)
            .expect("runs");
        assert_eq!(out, Value::Num(3.0));
    }

    /// Whether any (possibly fuel-fused) user-call op survived compilation.
    fn has_named_call(program: &CompiledProgram) -> bool {
        program
            .code
            .iter()
            .any(|op| matches!(op, Op::CallNamed(_) | Op::FuelCallNamed(_, _)))
    }

    #[test]
    fn leaf_calls_inline_at_top_level() {
        let program = compiled(
            "fn smooth(prev, s, alpha) { return prev + alpha * (s - prev); }\n\
             let level = 1; let x = smooth(level, 2, 0.5); x",
        );
        // The body expands in place with the arguments substituted, so no
        // user-call op survives.
        assert!(!has_named_call(&program), "{:?}", program.code);
    }

    #[test]
    fn duplicate_declarations_are_not_inlined() {
        let program = compiled(
            "fn f(x) { return x + 1; }\n\
             if (1 < 2) { fn f(x) { return x + 2; } }\n\
             let y = f(1); y",
        );
        // Which `f` is live depends on runtime control flow: the site must
        // stay a real, dynamically resolved call.
        assert!(has_named_call(&program));
    }

    #[test]
    fn calls_before_the_declaration_are_not_inlined() {
        // Declarations take effect when executed, so a preceding call site
        // must dispatch dynamically (and fault, exactly as the tree-walker
        // does).
        let program = compiled("let y = f(1); fn f(x) { return x + 1; } y");
        assert!(has_named_call(&program));
    }

    #[test]
    fn non_leaf_bodies_are_not_inlined() {
        let program = compiled(
            "fn g(x) { return x + 1; }\n\
             fn f(x) { return g(x) + 1; }\n\
             let y = f(1); y",
        );
        // `f` calls another function, so its site stays a real call.
        assert!(has_named_call(&program));
    }

    #[test]
    fn constants_are_pooled() {
        let program = compiled("let a = 2.5; let b = 2.5; let c = \"x\"; let d = \"x\";");
        assert_eq!(program.consts.len(), 2);
    }

    #[test]
    fn undeclared_reads_fall_back_to_dynamic_lookup() {
        let program = compiled("ghost;");
        assert!(program.code.iter().any(|op| matches!(op, Op::LoadDyn(_))));
    }

    #[test]
    fn frame_local_limit_is_a_typed_error() {
        let mut src = String::new();
        for i in 0..=MAX_FRAME_LOCALS {
            src.push_str(&format!("let v{i} = {i};\n"));
        }
        let err = Script::compile(&src).expect_err("over the local limit");
        assert_eq!(
            err,
            ApisenseError::ScriptCompile {
                table: "frame locals",
                count: MAX_FRAME_LOCALS + 1,
                limit: MAX_FRAME_LOCALS,
            }
        );
    }

    #[test]
    fn fuel_is_charged_in_blocks() {
        // Straight-line code collapses many per-node burns into few Fuel ops.
        let program = compiled("let a = 1 + 2 * 3; emit(a);");
        let fuel_ops = program.code.iter().filter(|op| fuel_of(op) > 0).count();
        assert!(
            fuel_ops <= 2,
            "expected coarse fuel charges, got {fuel_ops}"
        );
        let total: u32 = program.code.iter().map(fuel_of).sum();
        // 2 statements + 7 expression nodes, exactly what the tree-walker burns.
        assert_eq!(total, 9);
    }
}
