//! Stack-based bytecode VM: the script engine's fast execution tier.
//!
//! [`Vm::run`] executes a [`CompiledProgram`] produced by the compiler in
//! [`super::compile`] and is behaviourally interchangeable with
//! [`super::Interpreter`]: identical [`Value`] results, identical error
//! classifications (including host-call errors) and identical
//! fuel-exhaustion points, which the differential proptest in
//! `tests/script_differential.rs` exercises across generated programs and
//! fuel budgets. What changes is the cost model:
//!
//! - locals live in a flat `Vec` addressed by precomputed frame slots
//!   (dynamic name walks only for names the compiler could not resolve),
//! - host paths are pre-interned strings handed straight to
//!   [`Host::call`],
//! - call sites carry inline caches: bare-name dispatch (user function vs
//!   host) is resolved once per site and reused until a function
//!   (re)declaration or a new run bumps the VM's binding epoch,
//! - fuel is charged in per-basic-block batches instead of per AST node.
//!
//! A `Vm` is cheap to keep around and is designed for compile-once /
//! run-many: reusing one instance across readings reuses its stack, locals
//! and frame allocations. All transient state is reset at the top of each
//! run.
//!
//! Malformed bytecode (impossible via `Script::compile`) surfaces as
//! [`ApisenseError::ScriptVmFault`] with the offending op and pc rather
//! than a panic.

use crate::error::ApisenseError;
use crate::script::compile::{AssignFault, CompiledFn, CompiledProgram, NumOp, Op};
use crate::script::interp::MAX_CALL_DEPTH;
use crate::script::{Host, Value};

/// A call frame: where to resume and where the frame's locals start.
#[derive(Debug, Clone, Copy)]
struct Frame {
    return_pc: u32,
    locals_base: u32,
}

/// Resolution of a bare-name call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallTarget {
    /// Dispatch to `fns[i]`.
    User(u32),
    /// No user function bound: dispatch to the host.
    Host,
}

/// Inline cache for one call site. The name-dispatch half (`target`) is
/// valid while `epoch` matches the VM's binding epoch; the host-dispatch
/// half (`endpoint`) is valid while `host_epoch` matches, and is filled
/// lazily the first time the site actually reaches the host.
#[derive(Debug, Clone, Copy)]
struct SiteCache {
    epoch: u64,
    target: CallTarget,
    /// Epoch at which `endpoint` was obtained from [`Host::resolve`].
    host_epoch: u64,
    /// Host endpoint id for this site; `u32::MAX` means the host declined
    /// and the site stays on string dispatch.
    endpoint: u32,
}

/// Reusable bytecode executor. See the module docs for the execution model.
#[derive(Debug, Clone)]
pub struct Vm {
    /// Operand stack.
    stack: Vec<Value>,
    /// Flat locals across all live frames: `(interned name, value)`.
    locals: Vec<(u32, Value)>,
    /// Call frames (depth capped at `MAX_CALL_DEPTH`).
    frames: Vec<Frame>,
    /// Current binding of each interned name to a function index.
    fn_bindings: Vec<Option<u32>>,
    /// Per-call-site inline caches, indexed like `CompiledProgram::sites`.
    site_caches: Vec<SiteCache>,
    /// Bumped on every run and every function-binding change; stale cache
    /// entries simply miss.
    epoch: u64,
    /// Result register: value of the last top-level expression statement.
    last: Value,
}

impl Default for Vm {
    fn default() -> Self {
        Self::new()
    }
}

fn fault(op: &'static str, pc: usize, message: &'static str) -> ApisenseError {
    ApisenseError::ScriptVmFault { op, pc, message }
}

fn underflow(op: &'static str, pc: usize) -> ApisenseError {
    fault(op, pc, "value stack underflow")
}

fn name_of(program: &CompiledProgram, id: u32) -> &str {
    program.names.get(id as usize).map_or("?", String::as_str)
}

/// Maps a plain numeric-operator op onto its [`NumOp`].
fn num_op(op: Op) -> NumOp {
    match op {
        Op::Sub => NumOp::Sub,
        Op::Mul => NumOp::Mul,
        Op::Div => NumOp::Div,
        Op::Rem => NumOp::Rem,
        Op::Lt => NumOp::Lt,
        Op::Le => NumOp::Le,
        Op::Gt => NumOp::Gt,
        _ => NumOp::Ge,
    }
}

/// Sum/concatenation of two values (the `Add` semantics shared by the plain
/// and fused add ops).
#[inline]
fn add_values(lhs: &Value, rhs: &Value) -> Result<Value, ApisenseError> {
    match (lhs, rhs) {
        (Value::Num(a), Value::Num(b)) => Ok(Value::Num(a + b)),
        (Value::Str(a), b) => Ok(Value::Str(format!("{a}{b}"))),
        (a, Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
        (a, b) => Err(ApisenseError::Runtime(format!("cannot add {a} and {b}"))),
    }
}

/// Applies a numeric operator (the semantics shared by the plain and fused
/// numeric ops).
#[inline]
fn numeric_values(nop: NumOp, lhs: &Value, rhs: &Value) -> Result<Value, ApisenseError> {
    match (lhs, rhs) {
        (Value::Num(a), Value::Num(b)) => Ok(nop.apply(*a, *b)),
        (a, b) => Err(ApisenseError::Runtime(format!(
            "numeric operator applied to {a} and {b}"
        ))),
    }
}

/// Writes `value` into `root` at `idx` (single-level index assignment).
fn set_index(root: &mut Value, idx: Value, value: Value) -> Result<(), ApisenseError> {
    match (idx, root) {
        (Value::Num(n), Value::List(items)) => {
            let i = n as usize;
            if i >= items.len() {
                return Err(ApisenseError::Runtime(format!(
                    "index {i} out of bounds (len {})",
                    items.len()
                )));
            }
            items[i] = value;
            Ok(())
        }
        (Value::Str(k), Value::Map(m)) => {
            m.insert(k, value);
            Ok(())
        }
        _ => Err(ApisenseError::Runtime(
            "assignment target has incompatible type".into(),
        )),
    }
}

/// Writes `value` into `root` under `field` (single-level member
/// assignment).
fn set_member(root: &mut Value, field: &str, value: Value) -> Result<(), ApisenseError> {
    match root {
        Value::Map(m) => {
            m.insert(field.to_string(), value);
            Ok(())
        }
        _ => Err(ApisenseError::Runtime(
            "assignment target has incompatible type".into(),
        )),
    }
}

impl Vm {
    /// Creates an empty VM.
    pub fn new() -> Self {
        Self {
            stack: Vec::new(),
            locals: Vec::new(),
            frames: Vec::new(),
            fn_bindings: Vec::new(),
            site_caches: Vec::new(),
            epoch: 0,
            last: Value::Null,
        }
    }

    fn reset(&mut self, program: &CompiledProgram) {
        self.stack.clear();
        self.locals.clear();
        self.frames.clear();
        self.last = Value::Null;
        self.fn_bindings.clear();
        self.fn_bindings.resize(program.names.len(), None);
        if self.site_caches.len() != program.sites.len() {
            self.site_caches.clear();
            self.site_caches.resize(
                program.sites.len(),
                SiteCache {
                    epoch: 0,
                    target: CallTarget::Host,
                    host_epoch: 0,
                    endpoint: u32::MAX,
                },
            );
        }
        // A fresh epoch invalidates every cache entry (declaration history
        // may differ between runs when declarations are conditional).
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Executes `program` against `host` with the given fuel budget;
    /// returns the value of the last top-level expression statement, like
    /// [`super::Interpreter::run`].
    ///
    /// # Errors
    ///
    /// Propagates runtime, host and fuel errors with the same
    /// classification as the tree-walker; malformed bytecode surfaces as
    /// [`ApisenseError::ScriptVmFault`].
    pub fn run(
        &mut self,
        program: &CompiledProgram,
        host: &mut dyn Host,
        fuel: u64,
    ) -> Result<Value, ApisenseError> {
        let mut span = obs::span("vm.exec");
        obs::count("vm.executions", 1);
        let result = self.run_inner(program, host, fuel);
        if result.is_err() {
            obs::count("vm.faults", 1);
            span.set_attr("fault", true);
        }
        result
    }

    fn run_inner(
        &mut self,
        program: &CompiledProgram,
        host: &mut dyn Host,
        fuel: u64,
    ) -> Result<Value, ApisenseError> {
        self.reset(program);
        let mut fuel = fuel;
        let mut pc: usize = 0;
        let mut base: usize = 0;
        loop {
            let cur = pc;
            let Some(&op) = program.code.get(cur) else {
                return Err(fault("pc", cur, "program counter ran off the end"));
            };
            pc += 1;
            match op {
                Op::Fuel(n) => {
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                }
                Op::Const(i) => self.push_const(program, i, cur)?,
                Op::Null => self.stack.push(Value::Null),
                Op::True => self.stack.push(Value::Bool(true)),
                Op::False => self.stack.push(Value::Bool(false)),
                Op::MakeList(n) => {
                    let n = n as usize;
                    let at = self
                        .stack
                        .len()
                        .checked_sub(n)
                        .ok_or_else(|| underflow("MakeList", cur))?;
                    let items: Vec<Value> = self.stack.drain(at..).collect();
                    self.stack.push(Value::List(items));
                }
                Op::MakeMap(i) => {
                    let shape = program
                        .map_shapes
                        .get(i as usize)
                        .ok_or_else(|| fault("MakeMap", cur, "shape index out of range"))?;
                    let at = self
                        .stack
                        .len()
                        .checked_sub(shape.len())
                        .ok_or_else(|| underflow("MakeMap", cur))?;
                    let mut map = std::collections::BTreeMap::new();
                    for (key, value) in shape.iter().zip(self.stack.drain(at..)) {
                        map.insert(key.clone(), value);
                    }
                    self.stack.push(Value::Map(map));
                }
                Op::LoadSlot(i) => self.load_slot(base, i, cur)?,
                Op::StoreSlot(i) => {
                    let value = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("StoreSlot", cur))?;
                    let slot = self
                        .locals
                        .get_mut(base + i as usize)
                        .ok_or_else(|| fault("StoreSlot", cur, "frame slot out of range"))?;
                    slot.1 = value;
                }
                Op::PushLocal(id) => {
                    let value = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("PushLocal", cur))?;
                    self.locals.push((id, value));
                }
                Op::PopLocals(n) => {
                    let n = n as usize;
                    let keep = self
                        .locals
                        .len()
                        .checked_sub(n)
                        .ok_or_else(|| fault("PopLocals", cur, "locals underflow"))?;
                    self.locals.truncate(keep);
                }
                Op::LoadDyn(id) => match self.locals.iter().rev().find(|(n, _)| *n == id) {
                    Some((_, value)) => self.stack.push(value.clone()),
                    None => {
                        return Err(ApisenseError::Runtime(format!(
                            "undefined variable '{}'",
                            name_of(program, id)
                        )))
                    }
                },
                Op::StoreDyn(id) => {
                    let value = self.stack.pop().ok_or_else(|| underflow("StoreDyn", cur))?;
                    match self.locals.iter_mut().rev().find(|(n, _)| *n == id) {
                        Some(slot) => slot.1 = value,
                        None => {
                            return Err(ApisenseError::Runtime(format!(
                                "assignment to undeclared variable '{}'",
                                name_of(program, id)
                            )))
                        }
                    }
                }
                Op::Neg => {
                    let value = self.stack.pop().ok_or_else(|| underflow("Neg", cur))?;
                    match value {
                        Value::Num(n) => self.stack.push(Value::Num(-n)),
                        other => {
                            return Err(ApisenseError::Runtime(format!(
                                "cannot negate {other}"
                            )))
                        }
                    }
                }
                Op::Not => {
                    let value = self.stack.pop().ok_or_else(|| underflow("Not", cur))?;
                    self.stack.push(Value::Bool(!value.is_truthy()));
                }
                Op::ToBool => {
                    let value = self.stack.pop().ok_or_else(|| underflow("ToBool", cur))?;
                    self.stack.push(Value::Bool(value.is_truthy()));
                }
                Op::Add => self.add_top(cur)?,
                Op::Sub | Op::Mul | Op::Div | Op::Rem | Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                    self.numeric_top(num_op(op), cur)?
                }
                Op::Eq => {
                    let rhs = self.stack.pop().ok_or_else(|| underflow("Eq", cur))?;
                    let lhs = self.stack.pop().ok_or_else(|| underflow("Eq", cur))?;
                    self.stack.push(Value::Bool(lhs == rhs));
                }
                Op::Ne => {
                    let rhs = self.stack.pop().ok_or_else(|| underflow("Ne", cur))?;
                    let lhs = self.stack.pop().ok_or_else(|| underflow("Ne", cur))?;
                    self.stack.push(Value::Bool(lhs != rhs));
                }
                Op::Member(f) => {
                    let value = self.stack.pop().ok_or_else(|| underflow("Member", cur))?;
                    let field = name_of(program, f);
                    let out = match value {
                        Value::Map(mut m) => m.remove(field).unwrap_or(Value::Null),
                        Value::List(items) if field == "length" => {
                            Value::Num(items.len() as f64)
                        }
                        Value::Str(s) if field == "length" => {
                            Value::Num(s.chars().count() as f64)
                        }
                        other => {
                            return Err(ApisenseError::Runtime(format!(
                                "no field '{field}' on {other}"
                            )))
                        }
                    };
                    self.stack.push(out);
                }
                Op::IndexGet => {
                    let idx = self.stack.pop().ok_or_else(|| underflow("IndexGet", cur))?;
                    let value = self.stack.pop().ok_or_else(|| underflow("IndexGet", cur))?;
                    let out = match (value, idx) {
                        (Value::List(mut items), Value::Num(n)) => {
                            let i = n as usize;
                            if i < items.len() {
                                items.swap_remove(i)
                            } else {
                                Value::Null
                            }
                        }
                        (Value::Map(mut m), Value::Str(k)) => {
                            m.remove(&k).unwrap_or(Value::Null)
                        }
                        (v, i) => {
                            return Err(ApisenseError::Runtime(format!(
                                "cannot index {v} with {i}"
                            )))
                        }
                    };
                    self.stack.push(out);
                }
                Op::MemberSetSlot(slot, f) => {
                    let value = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("MemberSetSlot", cur))?;
                    let target =
                        self.locals.get_mut(base + slot as usize).ok_or_else(|| {
                            fault("MemberSetSlot", cur, "frame slot out of range")
                        })?;
                    set_member(&mut target.1, name_of(program, f), value)?;
                }
                Op::MemberSetDyn(root, f) => {
                    let value = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("MemberSetDyn", cur))?;
                    match self.locals.iter_mut().rev().find(|(n, _)| *n == root) {
                        Some(target) => set_member(&mut target.1, name_of(program, f), value)?,
                        None => {
                            return Err(ApisenseError::Runtime(format!(
                                "undefined variable '{}'",
                                name_of(program, root)
                            )))
                        }
                    }
                }
                Op::IndexSetSlot(slot) => {
                    let idx = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("IndexSetSlot", cur))?;
                    let value = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("IndexSetSlot", cur))?;
                    let target = self
                        .locals
                        .get_mut(base + slot as usize)
                        .ok_or_else(|| fault("IndexSetSlot", cur, "frame slot out of range"))?;
                    set_index(&mut target.1, idx, value)?;
                }
                Op::IndexSetDyn(root) => {
                    let idx = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("IndexSetDyn", cur))?;
                    let value = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("IndexSetDyn", cur))?;
                    match self.locals.iter_mut().rev().find(|(n, _)| *n == root) {
                        Some(target) => set_index(&mut target.1, idx, value)?,
                        None => {
                            return Err(ApisenseError::Runtime(format!(
                                "undefined variable '{}'",
                                name_of(program, root)
                            )))
                        }
                    }
                }
                Op::FailAssign(kind, root) => {
                    return Err(ApisenseError::Runtime(match kind {
                        AssignFault::Unsupported => "unsupported assignment target".into(),
                        AssignFault::Invalid => "invalid assignment target".into(),
                        AssignFault::Nested => {
                            "nested assignment paths are not supported".into()
                        }
                        AssignFault::NestedDyn => {
                            if self.locals.iter().any(|(n, _)| *n == root) {
                                "nested assignment paths are not supported".into()
                            } else {
                                format!("undefined variable '{}'", name_of(program, root))
                            }
                        }
                    }))
                }
                Op::Jump(t) => pc = t as usize,
                Op::JumpIfFalse(t) => {
                    let value = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("JumpIfFalse", cur))?;
                    if !value.is_truthy() {
                        pc = t as usize;
                    }
                }
                Op::JumpIfFalseBool(t) => {
                    let value = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("JumpIfFalseBool", cur))?;
                    if !value.is_truthy() {
                        self.stack.push(Value::Bool(false));
                        pc = t as usize;
                    }
                }
                Op::JumpIfTrueBool(t) => {
                    let value = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("JumpIfTrueBool", cur))?;
                    if value.is_truthy() {
                        self.stack.push(Value::Bool(true));
                        pc = t as usize;
                    }
                }
                Op::Dup => {
                    let value = self
                        .stack
                        .last()
                        .cloned()
                        .ok_or_else(|| underflow("Dup", cur))?;
                    self.stack.push(value);
                }
                Op::Pop => {
                    self.stack.pop().ok_or_else(|| underflow("Pop", cur))?;
                }
                Op::PopLast => {
                    self.last = self.stack.pop().ok_or_else(|| underflow("PopLast", cur))?;
                }
                Op::SetLastNull => self.last = Value::Null,
                Op::DeclareFn(fi) => {
                    let func = program.fns.get(fi as usize).ok_or_else(|| {
                        fault("DeclareFn", cur, "function index out of range")
                    })?;
                    let binding = self
                        .fn_bindings
                        .get_mut(func.name as usize)
                        .ok_or_else(|| fault("DeclareFn", cur, "name index out of range"))?;
                    if *binding != Some(fi) {
                        *binding = Some(fi);
                        self.epoch = self.epoch.wrapping_add(1);
                    }
                }
                Op::CallNamed(site) => {
                    self.call_named(program, host, site, &mut pc, &mut base, cur)?
                }
                Op::CallHost(site) => {
                    let argc = program
                        .sites
                        .get(site as usize)
                        .ok_or_else(|| fault("CallHost", cur, "call site out of range"))?
                        .argc as usize;
                    self.host_call(program, host, site as usize, argc, cur)?;
                }
                Op::CallInvalid => {
                    return Err(ApisenseError::Runtime(
                        "callee is not a function name or host path".into(),
                    ))
                }
                Op::Return => {
                    let value = self.stack.pop().ok_or_else(|| underflow("Return", cur))?;
                    match self.frames.pop() {
                        Some(frame) => {
                            self.locals.truncate(frame.locals_base as usize);
                            base = self.frames.last().map_or(0, |f| f.locals_base as usize);
                            self.stack.push(value);
                            pc = frame.return_pc as usize;
                        }
                        None => return Ok(value),
                    }
                }
                Op::Halt => return Ok(std::mem::replace(&mut self.last, Value::Null)),
                // Fused superinstructions: exactly the two component
                // behaviors in sequence (see `compile::fuse`).
                Op::LoadSlot2(a, b) => {
                    self.load_slot(base, a, cur)?;
                    self.load_slot(base, b, cur)?;
                }
                Op::LoadSlotConst(slot, i) => {
                    self.load_slot(base, slot, cur)?;
                    self.push_const(program, i, cur)?;
                }
                Op::FuelAdd(n) => {
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                    self.add_top(cur)?;
                }
                Op::FuelNumeric(n, nop) => {
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                    self.numeric_top(nop, cur)?;
                }
                Op::FuelJump(n, t) => {
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                    pc = t as usize;
                }
                Op::FuelJumpIfFalse(n, t) => {
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                    let value = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("FuelJumpIfFalse", cur))?;
                    if !value.is_truthy() {
                        pc = t as usize;
                    }
                }
                Op::FuelNumericJumpIfFalse(n, nop, t) => {
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                    let rhs = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("FuelNumericJumpIfFalse", cur))?;
                    let lhs = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("FuelNumericJumpIfFalse", cur))?;
                    if !numeric_values(nop, &lhs, &rhs)?.is_truthy() {
                        pc = t as usize;
                    }
                }
                Op::FuelCallNamed(n, site) => {
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                    self.call_named(program, host, site, &mut pc, &mut base, cur)?;
                }
                Op::FuelCallHost(n, site) => {
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                    let argc = program
                        .sites
                        .get(site as usize)
                        .ok_or_else(|| fault("FuelCallHost", cur, "call site out of range"))?
                        .argc as usize;
                    self.host_call(program, host, site as usize, argc, cur)?;
                }
                Op::FuelAddStore(n, slot) => {
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                    let rhs = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("FuelAddStore", cur))?;
                    let lhs = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("FuelAddStore", cur))?;
                    let out = add_values(&lhs, &rhs)?;
                    self.locals
                        .get_mut(base + slot as usize)
                        .ok_or_else(|| fault("FuelAddStore", cur, "frame slot out of range"))?
                        .1 = out;
                }
                Op::FuelNumericStore(n, nop, slot) => {
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                    let rhs = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("FuelNumericStore", cur))?;
                    let lhs = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("FuelNumericStore", cur))?;
                    let out = numeric_values(nop, &lhs, &rhs)?;
                    self.locals
                        .get_mut(base + slot as usize)
                        .ok_or_else(|| {
                            fault("FuelNumericStore", cur, "frame slot out of range")
                        })?
                        .1 = out;
                }
                Op::AddStore(slot) => {
                    let rhs = self.stack.pop().ok_or_else(|| underflow("AddStore", cur))?;
                    let lhs = self.stack.pop().ok_or_else(|| underflow("AddStore", cur))?;
                    let out = add_values(&lhs, &rhs)?;
                    self.locals
                        .get_mut(base + slot as usize)
                        .ok_or_else(|| fault("AddStore", cur, "frame slot out of range"))?
                        .1 = out;
                }
                Op::LoadSlotNull(slot) => {
                    self.load_slot(base, slot, cur)?;
                    self.stack.push(Value::Null);
                }
                Op::SlotEqNull(slot) => {
                    let value = self
                        .locals
                        .get(base + slot as usize)
                        .ok_or_else(|| fault("SlotEqNull", cur, "frame slot out of range"))?;
                    self.stack.push(Value::Bool(value.1 == Value::Null));
                }
                Op::SlotNeNull(slot) => {
                    let value = self
                        .locals
                        .get(base + slot as usize)
                        .ok_or_else(|| fault("SlotNeNull", cur, "frame slot out of range"))?;
                    self.stack.push(Value::Bool(value.1 != Value::Null));
                }
                Op::PopLocalsJump(n, t) => {
                    let keep = self
                        .locals
                        .len()
                        .checked_sub(n as usize)
                        .ok_or_else(|| fault("PopLocalsJump", cur, "locals underflow"))?;
                    self.locals.truncate(keep);
                    pc = t as usize;
                }
                Op::FuelReturn(n) => {
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                    let value = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("FuelReturn", cur))?;
                    match self.frames.pop() {
                        Some(frame) => {
                            self.locals.truncate(frame.locals_base as usize);
                            base = self.frames.last().map_or(0, |f| f.locals_base as usize);
                            self.stack.push(value);
                            pc = frame.return_pc as usize;
                        }
                        None => return Ok(value),
                    }
                }
                Op::LoadSlot2Fuel(a, b, n) => {
                    self.load_slot(base, a, cur)?;
                    self.load_slot(base, b, cur)?;
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                }
                Op::SlotsFuelNumeric(a, b, n, nop) => {
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                    let out = {
                        let lhs = self.locals.get(base + a as usize).ok_or_else(|| {
                            fault("SlotsFuelNumeric", cur, "frame slot out of range")
                        })?;
                        let rhs = self.locals.get(base + b as usize).ok_or_else(|| {
                            fault("SlotsFuelNumeric", cur, "frame slot out of range")
                        })?;
                        numeric_values(nop, &lhs.1, &rhs.1)?
                    };
                    self.stack.push(out);
                }
                Op::SlotsFuelAdd(a, b, n) => {
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                    let out = {
                        let lhs = self.locals.get(base + a as usize).ok_or_else(|| {
                            fault("SlotsFuelAdd", cur, "frame slot out of range")
                        })?;
                        let rhs = self.locals.get(base + b as usize).ok_or_else(|| {
                            fault("SlotsFuelAdd", cur, "frame slot out of range")
                        })?;
                        add_values(&lhs.1, &rhs.1)?
                    };
                    self.stack.push(out);
                }
                Op::LoadSlotFuel(slot, n) => {
                    self.load_slot(base, slot, cur)?;
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                }
                Op::SlotFuelNumeric(slot, n, nop) => {
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                    let lhs = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("SlotFuelNumeric", cur))?;
                    let rhs = self.locals.get(base + slot as usize).ok_or_else(|| {
                        fault("SlotFuelNumeric", cur, "frame slot out of range")
                    })?;
                    let out = numeric_values(nop, &lhs, &rhs.1)?;
                    self.stack.push(out);
                }
                Op::SlotFuelAdd(slot, n) => {
                    let n = u64::from(n);
                    if fuel < n {
                        return Err(ApisenseError::FuelExhausted);
                    }
                    fuel -= n;
                    obs::count("vm.fuel_spent", n);
                    let lhs = self
                        .stack
                        .pop()
                        .ok_or_else(|| underflow("SlotFuelAdd", cur))?;
                    let rhs = self
                        .locals
                        .get(base + slot as usize)
                        .ok_or_else(|| fault("SlotFuelAdd", cur, "frame slot out of range"))?;
                    let out = add_values(&lhs, &rhs.1)?;
                    self.stack.push(out);
                }
            }
        }
    }

    /// Pushes a clone of frame slot `i` (the `LoadSlot` behavior).
    #[inline]
    fn load_slot(&mut self, base: usize, i: u32, cur: usize) -> Result<(), ApisenseError> {
        let value = self
            .locals
            .get(base + i as usize)
            .ok_or_else(|| fault("LoadSlot", cur, "frame slot out of range"))?;
        self.stack.push(value.1.clone());
        Ok(())
    }

    /// Pushes a clone of constant `i` (the `Const` behavior).
    #[inline]
    fn push_const(
        &mut self,
        program: &CompiledProgram,
        i: u32,
        cur: usize,
    ) -> Result<(), ApisenseError> {
        let value = program
            .consts
            .get(i as usize)
            .ok_or_else(|| fault("Const", cur, "constant index out of range"))?;
        self.stack.push(value.clone());
        Ok(())
    }

    /// Pops two values and pushes their sum/concatenation (the `Add`
    /// behavior).
    #[inline]
    fn add_top(&mut self, cur: usize) -> Result<(), ApisenseError> {
        let rhs = self.stack.pop().ok_or_else(|| underflow("Add", cur))?;
        let lhs = self.stack.pop().ok_or_else(|| underflow("Add", cur))?;
        let out = add_values(&lhs, &rhs)?;
        self.stack.push(out);
        Ok(())
    }

    /// Pops two numbers and pushes the operator's result (the shared
    /// behavior of the plain and fused numeric ops).
    #[inline]
    fn numeric_top(&mut self, nop: NumOp, cur: usize) -> Result<(), ApisenseError> {
        let rhs = self.stack.pop().ok_or_else(|| underflow("Numeric", cur))?;
        let lhs = self.stack.pop().ok_or_else(|| underflow("Numeric", cur))?;
        let out = numeric_values(nop, &lhs, &rhs)?;
        self.stack.push(out);
        Ok(())
    }

    /// Dispatches a bare-name call site: resolves user-function vs host
    /// through the site's inline cache (the `CallNamed` behavior).
    #[inline]
    fn call_named(
        &mut self,
        program: &CompiledProgram,
        host: &mut dyn Host,
        site: u32,
        pc: &mut usize,
        base: &mut usize,
        cur: usize,
    ) -> Result<(), ApisenseError> {
        let cache = self
            .site_caches
            .get_mut(site as usize)
            .ok_or_else(|| fault("CallNamed", cur, "call site out of range"))?;
        let target = if cache.epoch == self.epoch {
            cache.target
        } else {
            let name = program.sites[site as usize].name;
            let resolved = match self.fn_bindings.get(name as usize).copied().flatten() {
                Some(fi) => CallTarget::User(fi),
                None => CallTarget::Host,
            };
            cache.epoch = self.epoch;
            cache.target = resolved;
            resolved
        };
        let argc = program.sites[site as usize].argc as usize;
        match target {
            CallTarget::User(fi) => {
                let func = program
                    .fns
                    .get(fi as usize)
                    .ok_or_else(|| fault("CallNamed", cur, "function index out of range"))?;
                let name = program.sites[site as usize].name;
                self.enter_function(program, func, name, argc, pc, base, cur)
            }
            CallTarget::Host => self.host_call(program, host, site as usize, argc, cur),
        }
    }

    /// Pushes a call frame and moves `argc` stack values into parameter
    /// locals, enforcing arity and `MAX_CALL_DEPTH` like the tree-walker.
    #[allow(clippy::too_many_arguments)]
    fn enter_function(
        &mut self,
        program: &CompiledProgram,
        func: &CompiledFn,
        name: u32,
        argc: usize,
        pc: &mut usize,
        base: &mut usize,
        cur: usize,
    ) -> Result<(), ApisenseError> {
        if argc != func.params.len() {
            return Err(ApisenseError::Runtime(format!(
                "function '{}' expects {} arguments, got {}",
                name_of(program, name),
                func.params.len(),
                argc
            )));
        }
        if self.frames.len() >= MAX_CALL_DEPTH {
            return Err(ApisenseError::Runtime(format!(
                "call depth limit exceeded in '{}'",
                name_of(program, name)
            )));
        }
        let at = self
            .stack
            .len()
            .checked_sub(argc)
            .ok_or_else(|| underflow("CallNamed", cur))?;
        let locals_base = self.locals.len();
        self.frames.push(Frame {
            return_pc: *pc as u32,
            locals_base: locals_base as u32,
        });
        for (offset, &param) in func.params.iter().enumerate() {
            let value = std::mem::replace(&mut self.stack[at + offset], Value::Null);
            self.locals.push((param, value));
        }
        self.stack.truncate(at);
        *base = locals_base;
        *pc = func.entry as usize;
        Ok(())
    }

    /// Dispatches a host call through `sites[site]`, consuming `argc` stack
    /// values and pushing the result. The site's endpoint cache skips the
    /// host's string dispatch after the first call through the site (see
    /// [`Host::resolve`]).
    fn host_call(
        &mut self,
        program: &CompiledProgram,
        host: &mut dyn Host,
        site: usize,
        argc: usize,
        cur: usize,
    ) -> Result<(), ApisenseError> {
        let path = &program
            .sites
            .get(site)
            .ok_or_else(|| fault("CallHost", cur, "call site out of range"))?
            .path;
        let at = self
            .stack
            .len()
            .checked_sub(argc)
            .ok_or_else(|| underflow("CallHost", cur))?;
        let endpoint = match self.site_caches.get(site) {
            Some(cache) if cache.host_epoch == self.epoch => cache.endpoint,
            _ => {
                let endpoint = host.resolve(path).unwrap_or(u32::MAX);
                if let Some(cache) = self.site_caches.get_mut(site) {
                    cache.host_epoch = self.epoch;
                    cache.endpoint = endpoint;
                }
                endpoint
            }
        };
        let result = if endpoint == u32::MAX {
            host.call(path, &mut self.stack[at..])?
        } else {
            host.call_resolved(endpoint, &mut self.stack[at..])?
        };
        self.stack.truncate(at);
        self.stack.push(result);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Script;
    use std::collections::BTreeMap;

    /// Host used by VM unit tests: `emit` collects, `math.double` doubles,
    /// anything else errors.
    #[derive(Default)]
    struct TestHost {
        emitted: Vec<Value>,
    }

    impl Host for TestHost {
        fn call(&mut self, path: &str, args: &mut [Value]) -> Result<Value, ApisenseError> {
            match path {
                "emit" => {
                    self.emitted
                        .push(args.first().cloned().unwrap_or(Value::Null));
                    Ok(Value::Null)
                }
                "math.double" => Ok(Value::Num(
                    args.first().and_then(Value::as_num).unwrap_or(0.0) * 2.0,
                )),
                other => Err(ApisenseError::UnknownSensor(other.to_string())),
            }
        }
    }

    fn run_vm(src: &str, fuel: u64) -> Result<Value, ApisenseError> {
        let script = Script::compile(src).expect("script compiles");
        let mut host = TestHost::default();
        Vm::new().run(script.compiled(), &mut host, fuel)
    }

    #[test]
    fn computes_like_the_interpreter() {
        let value = run_vm(
            "fn avg(a, b) { return (a + b) / 2; }\n\
             let m = { \"x\": 4, \"y\": 8 };\n\
             avg(m.x, m.y);",
            10_000,
        )
        .unwrap();
        assert_eq!(value, Value::Num(6.0));
    }

    #[test]
    fn vm_instance_is_reusable_across_runs() {
        let script = Script::compile("let a = [1, 2, 3]; a[1] + a.length;").unwrap();
        let mut vm = Vm::new();
        let mut host = TestHost::default();
        for _ in 0..3 {
            let value = vm.run(script.compiled(), &mut host, 1_000).unwrap();
            assert_eq!(value, Value::Num(5.0));
        }
    }

    #[test]
    fn function_redeclaration_invalidates_inline_caches() {
        let value = run_vm(
            "fn f() { return 1; }\n\
             let a = f();\n\
             fn f() { return 2; }\n\
             let b = f();\n\
             a * 10 + b;",
            10_000,
        )
        .unwrap();
        assert_eq!(value, Value::Num(12.0));
    }

    #[test]
    fn host_paths_dispatch_through_pre_interned_sites() {
        let script = Script::compile("emit(math.double(21));").unwrap();
        let mut host = TestHost::default();
        let mut vm = Vm::new();
        vm.run(script.compiled(), &mut host, 1_000).unwrap();
        assert_eq!(host.emitted, vec![Value::Num(42.0)]);
    }

    #[test]
    fn call_depth_limit_matches_interpreter() {
        let err = run_vm("fn f(n) { return f(n + 1); } f(0);", 1_000_000).unwrap_err();
        assert!(matches!(&err, ApisenseError::Runtime(m) if m.contains("depth")));
    }

    #[test]
    fn fuel_exhaustion_is_classified() {
        let err = run_vm("let i = 0; while (true) { i = i + 1; }", 10_000).unwrap_err();
        assert_eq!(err, ApisenseError::FuelExhausted);
    }

    #[test]
    fn malformed_bytecode_is_a_typed_fault_not_a_panic() {
        let program = CompiledProgram {
            code: vec![Op::Return],
            consts: Vec::new(),
            names: Vec::new(),
            fns: Vec::new(),
            sites: Vec::new(),
            map_shapes: Vec::new(),
        };
        let mut host = TestHost::default();
        let err = Vm::new().run(&program, &mut host, 100).unwrap_err();
        assert_eq!(
            err,
            ApisenseError::ScriptVmFault {
                op: "Return",
                pc: 0,
                message: "value stack underflow",
            }
        );

        let empty = CompiledProgram {
            code: Vec::new(),
            consts: Vec::new(),
            names: Vec::new(),
            fns: Vec::new(),
            sites: Vec::new(),
            map_shapes: Vec::new(),
        };
        let err = Vm::new().run(&empty, &mut host, 100).unwrap_err();
        assert!(matches!(err, ApisenseError::ScriptVmFault { op: "pc", .. }));
    }

    #[test]
    fn host_errors_propagate_unchanged() {
        let err = run_vm("sensor.missing();", 1_000).unwrap_err();
        assert_eq!(err, ApisenseError::UnknownSensor("sensor.missing".into()));
    }

    #[test]
    fn maps_and_mutation_round_trip() {
        let value = run_vm(
            "let m = { \"a\": 1 };\n\
             m.b = 2;\n\
             m[\"c\"] = 3;\n\
             let xs = [0, 0];\n\
             xs[1] = m.a + m.b + m.c;\n\
             xs[1];",
            10_000,
        )
        .unwrap();
        assert_eq!(value, Value::Num(6.0));
        let mut expected = BTreeMap::new();
        expected.insert("k".to_string(), Value::Num(1.0));
        assert_eq!(
            run_vm("let m = {}; m.k = 1; m;", 1_000).unwrap(),
            Value::Map(expected)
        );
    }
}
