//! Sandboxed tree-walking interpreter for the task-scripting DSL.

use super::parser::{BinaryOp, Expr, Program, Stmt, UnaryOp};
use super::Value;
use crate::error::ApisenseError;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// The device-side API surface exposed to scripts.
///
/// Every call whose callee is not a user-defined function is routed here
/// with its dotted path, e.g. `sensor.gps` or `emit`. Hosts decide which
/// capabilities a script gets — the interpreter itself has no ambient
/// authority (no filesystem, network or clock access).
pub trait Host {
    /// Invokes a host function.
    ///
    /// The argument slice is owned by the call: the host may consume the
    /// values (e.g. `std::mem::replace` them with `Value::Null`) instead of
    /// cloning, and the engine discards whatever is left afterwards.
    ///
    /// # Errors
    ///
    /// Implementations should return [`ApisenseError::UnknownSensor`] for
    /// unknown paths and may fail for domain-specific reasons.
    fn call(&mut self, path: &str, args: &mut [Value]) -> Result<Value, ApisenseError>;

    /// Optional fast-path dispatch: maps `path` to a host-chosen endpoint
    /// id accepted by [`Host::call_resolved`]. The bytecode VM resolves
    /// each call site once per run and dispatches by id from then on; the
    /// tree-walker has no per-site storage and always takes the string
    /// path. Hosts that return `None` (the default) stay on string
    /// dispatch everywhere.
    ///
    /// `resolve(p) == Some(e)` must imply that `call_resolved(e, args)`
    /// behaves exactly like `call(p, args)` — the differential tests hold
    /// both tiers to identical results.
    fn resolve(&mut self, _path: &str) -> Option<u32> {
        None
    }

    /// Invokes an endpoint previously returned by [`Host::resolve`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Host::call`] for the resolved path.
    fn call_resolved(
        &mut self,
        _endpoint: u32,
        _args: &mut [Value],
    ) -> Result<Value, ApisenseError> {
        Err(ApisenseError::Runtime(
            "host does not support endpoint dispatch".into(),
        ))
    }
}

/// Control-flow result of executing a statement.
enum Flow {
    Normal(Value),
    Return(Value),
}

/// A user-defined function. Declarations store it behind an [`Rc`] so
/// calling it shares the body instead of cloning the statement tree.
struct Function {
    params: Vec<String>,
    body: Vec<Stmt>,
}

/// The script interpreter. One instance runs one program.
pub struct Interpreter<'h> {
    host: &'h mut dyn Host,
    fuel: u64,
    scopes: Vec<HashMap<String, Value>>,
    functions: HashMap<String, Rc<Function>>,
    call_depth: usize,
}

/// Maximum user-function call depth, shared with the bytecode VM so both
/// tiers reject recursion at the same point.
pub(crate) const MAX_CALL_DEPTH: usize = 64;

impl<'h> Interpreter<'h> {
    /// Creates an interpreter with an execution budget.
    pub fn new(host: &'h mut dyn Host, fuel: u64) -> Self {
        Self {
            host,
            fuel,
            scopes: vec![HashMap::new()],
            functions: HashMap::new(),
            call_depth: 0,
        }
    }

    /// Runs a program; returns the value of the last expression statement.
    ///
    /// # Errors
    ///
    /// Propagates runtime, host and fuel errors.
    pub fn run(&mut self, program: &Program) -> Result<Value, ApisenseError> {
        let mut last = Value::Null;
        for stmt in &program.statements {
            match self.execute(stmt)? {
                Flow::Normal(v) => last = v,
                Flow::Return(v) => return Ok(v),
            }
        }
        Ok(last)
    }

    fn burn(&mut self) -> Result<(), ApisenseError> {
        if self.fuel == 0 {
            return Err(ApisenseError::FuelExhausted);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<&Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn assign_var(&mut self, name: &str, value: Value) -> Result<(), ApisenseError> {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return Ok(());
            }
        }
        Err(ApisenseError::Runtime(format!(
            "assignment to undeclared variable '{name}'"
        )))
    }

    fn execute(&mut self, stmt: &Stmt) -> Result<Flow, ApisenseError> {
        self.burn()?;
        match stmt {
            Stmt::Let(name, expr) => {
                let value = self.eval(expr)?;
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), value);
                Ok(Flow::Normal(Value::Null))
            }
            Stmt::Fn { name, params, body } => {
                self.functions.insert(
                    name.clone(),
                    Rc::new(Function {
                        params: params.clone(),
                        body: body.clone(),
                    }),
                );
                Ok(Flow::Normal(Value::Null))
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let branch = if self.eval(cond)?.is_truthy() {
                    then_branch
                } else {
                    else_branch
                };
                self.execute_block(branch)
            }
            Stmt::While { cond, body } => {
                while self.eval(cond)?.is_truthy() {
                    match self.execute_block(body)? {
                        Flow::Normal(_) => {}
                        flow @ Flow::Return(_) => return Ok(flow),
                    }
                }
                Ok(Flow::Normal(Value::Null))
            }
            Stmt::Return(expr) => {
                let value = match expr {
                    Some(e) => self.eval(e)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(value))
            }
            Stmt::Expr(expr) => Ok(Flow::Normal(self.eval(expr)?)),
        }
    }

    fn execute_block(&mut self, body: &[Stmt]) -> Result<Flow, ApisenseError> {
        self.scopes.push(HashMap::new());
        let mut result = Flow::Normal(Value::Null);
        for stmt in body {
            match self.execute(stmt)? {
                Flow::Normal(v) => result = Flow::Normal(v),
                flow @ Flow::Return(_) => {
                    self.scopes.pop();
                    return Ok(flow);
                }
            }
        }
        self.scopes.pop();
        Ok(result)
    }

    fn eval(&mut self, expr: &Expr) -> Result<Value, ApisenseError> {
        self.burn()?;
        match expr {
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Ident(name) => self
                .lookup(name)
                .cloned()
                .ok_or_else(|| ApisenseError::Runtime(format!("undefined variable '{name}'"))),
            Expr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item)?);
                }
                Ok(Value::List(out))
            }
            Expr::Map(entries) => {
                let mut out = BTreeMap::new();
                for (key, value) in entries {
                    out.insert(key.clone(), self.eval(value)?);
                }
                Ok(Value::Map(out))
            }
            Expr::Unary(op, operand) => {
                let value = self.eval(operand)?;
                match op {
                    UnaryOp::Neg => match value {
                        Value::Num(n) => Ok(Value::Num(-n)),
                        other => Err(ApisenseError::Runtime(format!("cannot negate {other}"))),
                    },
                    UnaryOp::Not => Ok(Value::Bool(!value.is_truthy())),
                }
            }
            Expr::Binary(op, left, right) => self.eval_binary(*op, left, right),
            Expr::Member(object, field) => {
                let value = self.eval(object)?;
                match value {
                    Value::Map(m) => Ok(m.get(field).cloned().unwrap_or(Value::Null)),
                    Value::List(items) if field == "length" => {
                        Ok(Value::Num(items.len() as f64))
                    }
                    Value::Str(s) if field == "length" => {
                        Ok(Value::Num(s.chars().count() as f64))
                    }
                    other => Err(ApisenseError::Runtime(format!(
                        "no field '{field}' on {other}"
                    ))),
                }
            }
            Expr::Index(object, index) => {
                let value = self.eval(object)?;
                let idx = self.eval(index)?;
                match (value, idx) {
                    (Value::List(items), Value::Num(n)) => {
                        let i = n as usize;
                        Ok(items.get(i).cloned().unwrap_or(Value::Null))
                    }
                    (Value::Map(m), Value::Str(k)) => {
                        Ok(m.get(&k).cloned().unwrap_or(Value::Null))
                    }
                    (v, i) => Err(ApisenseError::Runtime(format!("cannot index {v} with {i}"))),
                }
            }
            Expr::Call(callee, args) => self.eval_call(callee, args),
            Expr::Assign(target, value) => {
                let value = self.eval(value)?;
                self.eval_assign(target, value.clone())?;
                Ok(value)
            }
        }
    }

    fn eval_binary(
        &mut self,
        op: BinaryOp,
        left: &Expr,
        right: &Expr,
    ) -> Result<Value, ApisenseError> {
        // Short-circuit logic first.
        match op {
            BinaryOp::And => {
                let l = self.eval(left)?;
                if !l.is_truthy() {
                    return Ok(Value::Bool(false));
                }
                return Ok(Value::Bool(self.eval(right)?.is_truthy()));
            }
            BinaryOp::Or => {
                let l = self.eval(left)?;
                if l.is_truthy() {
                    return Ok(Value::Bool(true));
                }
                return Ok(Value::Bool(self.eval(right)?.is_truthy()));
            }
            _ => {}
        }
        let l = self.eval(left)?;
        let r = self.eval(right)?;
        let num_op = |l: f64, r: f64, op: BinaryOp| -> Result<Value, ApisenseError> {
            Ok(match op {
                BinaryOp::Add => Value::Num(l + r),
                BinaryOp::Sub => Value::Num(l - r),
                BinaryOp::Mul => Value::Num(l * r),
                BinaryOp::Div => Value::Num(l / r),
                BinaryOp::Rem => Value::Num(l % r),
                BinaryOp::Lt => Value::Bool(l < r),
                BinaryOp::Le => Value::Bool(l <= r),
                BinaryOp::Gt => Value::Bool(l > r),
                BinaryOp::Ge => Value::Bool(l >= r),
                _ => unreachable!("handled below"),
            })
        };
        match op {
            BinaryOp::Eq => Ok(Value::Bool(l == r)),
            BinaryOp::Ne => Ok(Value::Bool(l != r)),
            BinaryOp::Add => match (&l, &r) {
                (Value::Num(a), Value::Num(b)) => num_op(*a, *b, op),
                (Value::Str(a), b) => Ok(Value::Str(format!("{a}{b}"))),
                (a, Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
                (a, b) => Err(ApisenseError::Runtime(format!("cannot add {a} and {b}"))),
            },
            _ => match (&l, &r) {
                (Value::Num(a), Value::Num(b)) => num_op(*a, *b, op),
                (a, b) => Err(ApisenseError::Runtime(format!(
                    "numeric operator applied to {a} and {b}"
                ))),
            },
        }
    }

    /// Renders a callee expression as a dotted host path (`sensor.gps`).
    fn host_path(expr: &Expr) -> Option<String> {
        match expr {
            Expr::Ident(name) => Some(name.clone()),
            Expr::Member(object, field) => {
                Self::host_path(object).map(|base| format!("{base}.{field}"))
            }
            _ => None,
        }
    }

    fn eval_call(&mut self, callee: &Expr, args: &[Expr]) -> Result<Value, ApisenseError> {
        let mut values = Vec::with_capacity(args.len());
        for arg in args {
            values.push(self.eval(arg)?);
        }
        // User-defined functions shadow host functions for bare names.
        if let Expr::Ident(name) = callee {
            if let Some(function) = self.functions.get(name).cloned() {
                return self.call_function(name, &function, values);
            }
        }
        match Self::host_path(callee) {
            Some(path) => self.host.call(&path, &mut values),
            None => Err(ApisenseError::Runtime(
                "callee is not a function name or host path".into(),
            )),
        }
    }

    fn call_function(
        &mut self,
        name: &str,
        function: &Function,
        args: Vec<Value>,
    ) -> Result<Value, ApisenseError> {
        if args.len() != function.params.len() {
            return Err(ApisenseError::Runtime(format!(
                "function '{name}' expects {} arguments, got {}",
                function.params.len(),
                args.len()
            )));
        }
        if self.call_depth >= MAX_CALL_DEPTH {
            return Err(ApisenseError::Runtime(format!(
                "call depth limit exceeded in '{name}'"
            )));
        }
        self.call_depth += 1;
        let mut scope = HashMap::new();
        for (param, arg) in function.params.iter().zip(args) {
            scope.insert(param.clone(), arg);
        }
        self.scopes.push(scope);
        let mut result = Value::Null;
        for stmt in &function.body {
            match self.execute(stmt) {
                Ok(Flow::Normal(_)) => {}
                Ok(Flow::Return(v)) => {
                    result = v;
                    break;
                }
                Err(e) => {
                    self.scopes.pop();
                    self.call_depth -= 1;
                    return Err(e);
                }
            }
        }
        self.scopes.pop();
        self.call_depth -= 1;
        Ok(result)
    }

    fn eval_assign(&mut self, target: &Expr, value: Value) -> Result<(), ApisenseError> {
        match target {
            Expr::Ident(name) => self.assign_var(name, value),
            Expr::Member(object, field) => {
                // Read-modify-write through the variable root.
                let root = Self::root_ident(object).ok_or_else(|| {
                    ApisenseError::Runtime("unsupported assignment target".into())
                })?;
                let mut current = self.lookup(&root).cloned().ok_or_else(|| {
                    ApisenseError::Runtime(format!("undefined variable '{root}'"))
                })?;
                Self::set_path(&mut current, object, &Some(field.clone()), None, value)?;
                self.assign_var(&root, current)
            }
            Expr::Index(object, index) => {
                let idx = self.eval(index)?;
                let root = Self::root_ident(object).ok_or_else(|| {
                    ApisenseError::Runtime("unsupported assignment target".into())
                })?;
                let mut current = self.lookup(&root).cloned().ok_or_else(|| {
                    ApisenseError::Runtime(format!("undefined variable '{root}'"))
                })?;
                Self::set_path(&mut current, object, &None, Some(idx), value)?;
                self.assign_var(&root, current)
            }
            _ => Err(ApisenseError::Runtime("invalid assignment target".into())),
        }
    }

    fn root_ident(expr: &Expr) -> Option<String> {
        match expr {
            Expr::Ident(name) => Some(name.clone()),
            Expr::Member(object, _) | Expr::Index(object, _) => Self::root_ident(object),
            _ => None,
        }
    }

    /// Writes `value` at the location described by `container_expr` plus a
    /// final member (`field`) or index (`idx`) step, mutating `root` in
    /// place. Only single-level paths from the root are supported (`m.a`,
    /// `xs[i]`), which covers sensing-script needs.
    fn set_path(
        root: &mut Value,
        container_expr: &Expr,
        field: &Option<String>,
        idx: Option<Value>,
        value: Value,
    ) -> Result<(), ApisenseError> {
        // Only `ident.field` / `ident[idx]` forms reach here.
        if !matches!(container_expr, Expr::Ident(_)) {
            return Err(ApisenseError::Runtime(
                "nested assignment paths are not supported".into(),
            ));
        }
        match (field, idx, root) {
            (Some(f), None, Value::Map(m)) => {
                m.insert(f.clone(), value);
                Ok(())
            }
            (None, Some(Value::Num(n)), Value::List(items)) => {
                let i = n as usize;
                if i >= items.len() {
                    return Err(ApisenseError::Runtime(format!(
                        "index {i} out of bounds (len {})",
                        items.len()
                    )));
                }
                items[i] = value;
                Ok(())
            }
            (None, Some(Value::Str(k)), Value::Map(m)) => {
                m.insert(k, value);
                Ok(())
            }
            _ => Err(ApisenseError::Runtime(
                "assignment target has incompatible type".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::Script;
    use super::*;

    /// Records host calls; provides a couple of sensors and `emit`.
    #[derive(Default)]
    struct TestHost {
        emitted: Vec<Value>,
        calls: Vec<String>,
    }

    impl Host for TestHost {
        fn call(&mut self, path: &str, args: &mut [Value]) -> Result<Value, ApisenseError> {
            self.calls.push(path.to_string());
            match path {
                "emit" => {
                    self.emitted
                        .push(args.first().cloned().unwrap_or(Value::Null));
                    Ok(Value::Null)
                }
                "sensor.battery" => Ok(Value::Num(0.75)),
                "sensor.gps" => {
                    let mut m = BTreeMap::new();
                    m.insert("lat".to_string(), Value::Num(45.75));
                    m.insert("lon".to_string(), Value::Num(4.85));
                    Ok(Value::Map(m))
                }
                "math.floor" => Ok(Value::Num(args[0].as_num().unwrap_or(f64::NAN).floor())),
                other => Err(ApisenseError::UnknownSensor(other.to_string())),
            }
        }
    }

    /// Runs `src` on both execution tiers, asserts they agree on the
    /// result and the host interaction, and returns the interpreter's view.
    fn run(src: &str) -> (Value, TestHost) {
        let script = Script::compile(src).unwrap();
        let mut host = TestHost::default();
        let value = script.run_interpreted(&mut host, 100_000).unwrap();
        let mut vm_host = TestHost::default();
        let vm_value = script.run(&mut vm_host, 100_000).unwrap();
        assert_eq!(value, vm_value, "tiers disagree on {src:?}");
        assert_eq!(host.calls, vm_host.calls, "host traces differ on {src:?}");
        assert_eq!(host.emitted, vm_host.emitted);
        (value, host)
    }

    /// Error-path twin of [`run`]: both tiers must fail identically.
    fn run_err(src: &str) -> ApisenseError {
        let script = Script::compile(src).unwrap();
        let mut host = TestHost::default();
        let err = script.run_interpreted(&mut host, 100_000).unwrap_err();
        let mut vm_host = TestHost::default();
        let vm_err = script.run(&mut vm_host, 100_000).unwrap_err();
        assert_eq!(err, vm_err, "tiers disagree on {src:?}");
        err
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("1 + 2 * 3").0, Value::Num(7.0));
        assert_eq!(run("(1 + 2) * 3").0, Value::Num(9.0));
        assert_eq!(run("10 % 3").0, Value::Num(1.0));
        assert_eq!(run("-4 + 1").0, Value::Num(-3.0));
        assert_eq!(run("7 / 2").0, Value::Num(3.5));
    }

    #[test]
    fn string_concatenation() {
        assert_eq!(run(r#""a" + "b""#).0, Value::Str("ab".into()));
        assert_eq!(run(r#""n=" + 3"#).0, Value::Str("n=3".into()));
    }

    #[test]
    fn variables_and_scoping() {
        assert_eq!(run("let x = 2; let y = x * 3; y").0, Value::Num(6.0));
        // Inner block sees and can assign outer variables.
        assert_eq!(
            run("let x = 1; if (true) { x = x + 1; } x").0,
            Value::Num(2.0)
        );
        // Inner let shadows without leaking.
        assert_eq!(
            run("let x = 1; if (true) { let x = 99; } x").0,
            Value::Num(1.0)
        );
    }

    #[test]
    fn while_loop() {
        assert_eq!(
            run("let s = 0; let i = 0; while (i < 5) { s = s + i; i = i + 1; } s").0,
            Value::Num(10.0)
        );
    }

    #[test]
    fn functions_with_return_and_recursion() {
        assert_eq!(
            run("fn add(a, b) { return a + b; } add(2, 3)").0,
            Value::Num(5.0)
        );
        assert_eq!(
            run("fn fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); } fact(6)").0,
            Value::Num(720.0)
        );
    }

    #[test]
    fn recursion_depth_limited() {
        let e = run_err("fn f(n) { return f(n + 1); } f(0)");
        assert!(e.to_string().contains("depth"), "{e}");
    }

    #[test]
    fn host_sensor_access() {
        let (value, host) = run("let fix = sensor.gps(); fix.lat");
        assert_eq!(value, Value::Num(45.75));
        assert_eq!(host.calls, vec!["sensor.gps"]);
    }

    #[test]
    fn emit_collects_records() {
        let (_, host) = run(r#"
            let fix = sensor.gps();
            emit({ "lat": fix.lat, "lon": fix.lon, "battery": sensor.battery() });
            "#);
        assert_eq!(host.emitted.len(), 1);
        let m = host.emitted[0].as_map().unwrap();
        assert_eq!(m["lat"], Value::Num(45.75));
        assert_eq!(m["battery"], Value::Num(0.75));
    }

    #[test]
    fn lists_maps_and_indexing() {
        assert_eq!(run("let xs = [1, 2, 3]; xs[1]").0, Value::Num(2.0));
        assert_eq!(run("let xs = [1, 2, 3]; xs.length").0, Value::Num(3.0));
        assert_eq!(run("let xs = [1, 2]; xs[0] = 9; xs[0]").0, Value::Num(9.0));
        assert_eq!(
            run(r#"let m = { "a": 1 }; m.b = 2; m["a"] + m.b"#).0,
            Value::Num(3.0)
        );
        assert_eq!(run("let xs = [1]; xs[99]").0, Value::Null);
        assert_eq!(run(r#""abc".length"#).0, Value::Num(3.0));
    }

    #[test]
    fn logic_short_circuits() {
        // The right side would be a host error if evaluated.
        assert_eq!(run("false && boom()").0, Value::Bool(false));
        assert_eq!(run("true || boom()").0, Value::Bool(true));
        assert_eq!(run("!null").0, Value::Bool(true));
        assert_eq!(run("1 == 1 && 2 != 3").0, Value::Bool(true));
    }

    #[test]
    fn fuel_stops_infinite_loops() {
        let script = Script::compile("while (true) { }").unwrap();
        let mut host = TestHost::default();
        assert_eq!(
            script.run_interpreted(&mut host, 10_000),
            Err(ApisenseError::FuelExhausted)
        );
        assert_eq!(
            script.run(&mut host, 10_000),
            Err(ApisenseError::FuelExhausted)
        );
    }

    #[test]
    fn runtime_errors_are_reported() {
        assert!(run_err("undefined_var").to_string().contains("undefined"));
        assert!(run_err("1()").to_string().contains("callee"));
        assert!(run_err("null + 1").to_string().contains("cannot add"));
        assert!(run_err("unknown.host()").to_string().contains("unknown"));
        assert!(run_err("let xs = [1]; xs[5] = 0;")
            .to_string()
            .contains("out of bounds"));
        assert!(run_err("x = 1;").to_string().contains("undeclared"));
    }

    #[test]
    fn host_math_namespace() {
        assert_eq!(run("math.floor(3.7)").0, Value::Num(3.0));
    }

    #[test]
    fn return_at_top_level_stops_script() {
        assert_eq!(run("return 5; emit(1);").0, Value::Num(5.0));
        let (_, host) = run("return 5; emit(1);");
        assert!(host.emitted.is_empty());
    }

    /// Leaf calls the compiler inlines must stay observationally identical
    /// to the tree-walker (the `run` harness asserts tier agreement).
    #[test]
    fn inlined_leaf_calls_match_the_interpreter() {
        // Slot- and constant-substituted arguments.
        assert_eq!(
            run("fn lerp(a, b, t) { return a + t * (b - a); }\n\
                 let x = 0; let y = 10; lerp(x, y, 0.25)")
            .0,
            Value::Num(2.5)
        );
        // Complex arguments spill onto the stack, evaluated left to right
        // in the caller's scope.
        assert_eq!(
            run("fn sum3(a, b, c) { return a + b + c; }\n\
                 let x = 1; sum3(x + 1, 2 * 3, x * 10)")
            .0,
            Value::Num(18.0)
        );
        // An argument-position assignment disables slot aliasing: the first
        // argument must read `x` as it was before the second mutates it.
        assert_eq!(
            run("fn g(a, b) { return a + b; }\n\
                 let x = 1; g(x, (x = 5)) + x")
            .0,
            Value::Num(11.0)
        );
        // Inlined bodies still reach the host through spilled arguments.
        let (value, host) = run("fn tag(v, k) { return k + v; }\n\
             emit(tag(sensor.battery(), \"b=\"));");
        assert_eq!(value, Value::Null);
        assert_eq!(host.emitted, [Value::Str("b=0.75".into())]);
    }

    #[test]
    fn realistic_sensing_script() {
        let (_, host) = run(r#"
            // Sample GPS only when the battery allows it, and tag readings.
            fn classify(level) {
                if (level > 0.6) { return "good"; }
                if (level > 0.3) { return "low"; }
                return "critical";
            }
            let level = sensor.battery();
            let i = 0;
            while (i < 3) {
                let fix = sensor.gps();
                emit({
                    "seq": i,
                    "lat": fix.lat,
                    "lon": fix.lon,
                    "quality": classify(level)
                });
                i = i + 1;
            }
            "#);
        assert_eq!(host.emitted.len(), 3);
        for (i, record) in host.emitted.iter().enumerate() {
            let m = record.as_map().unwrap();
            assert_eq!(m["seq"], Value::Num(i as f64));
            assert_eq!(m["quality"], Value::Str("good".into()));
        }
    }
}
