//! The crowd-sensing task scripting DSL.
//!
//! APISENSE describes crowd-sensing tasks "as scripts (based on an extension
//! of JavaScript) that are seamlessly offloaded onto mobile devices" (paper,
//! §2). This module provides the equivalent code-as-data capability with a
//! purpose-built language (see `DESIGN.md` §2 for the substitution
//! rationale): a C-like expression language with `let`, `fn`, `if`, `while`,
//! lists and maps, executed sandboxed with an execution-fuel budget and a
//! pluggable [`Host`] API exposing the device's sensors.
//!
//! Execution has two tiers. [`Script::compile`] lowers the AST to a
//! [`CompiledProgram`] executed by the stack-based bytecode [`Vm`] — the
//! default, built for compile-once / run-many sensing loops. The
//! tree-walking [`Interpreter`] is retained as the behavioural baseline
//! ([`Script::run_interpreted`]) and is differentially tested against the
//! VM; both tiers produce identical values, errors and fuel-exhaustion
//! classifications.
//!
//! # Example
//!
//! ```
//! use apisense::script::{Script, Value, Host};
//! use apisense::ApisenseError;
//!
//! struct FakeDevice;
//! impl Host for FakeDevice {
//!     fn call(&mut self, path: &str, _args: &mut [Value]) -> Result<Value, ApisenseError> {
//!         match path {
//!             "sensor.battery" => Ok(Value::Num(0.83)),
//!             "emit" => Ok(Value::Null),
//!             other => Err(ApisenseError::UnknownSensor(other.to_string())),
//!         }
//!     }
//! }
//!
//! let script = Script::compile(r#"
//!     let level = sensor.battery();
//!     if (level > 0.5) { emit({ "battery": level }); }
//!     level
//! "#).unwrap();
//! let result = script.run(&mut FakeDevice, 10_000).unwrap();
//! assert_eq!(result, Value::Num(0.83));
//! ```

mod compile;
mod interp;
mod lexer;
mod parser;
mod vm;

pub use compile::CompiledProgram;
pub use interp::{Host, Interpreter};
pub use parser::{BinaryOp, Expr, Program, Stmt, UnaryOp};
pub use vm::Vm;

use crate::error::ApisenseError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A runtime value of the scripting language.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// The absent value.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit float (the only numeric type, as in JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered list.
    List(Vec<Value>),
    /// A string-keyed map.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// JavaScript-style truthiness: `null`, `false`, `0`, `NaN` and `""`
    /// are falsy; everything else is truthy.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::List(_) | Value::Map(_) => true,
        }
    }

    /// Numeric view of the value, if it is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Map view of the value, if it is a map.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Renders the value as JSON text.
    ///
    /// Non-finite numbers become `null` (as in JavaScript's
    /// `JSON.stringify`), so the output is always valid JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) if n.is_finite() => out.push_str(&format!("{n:?}")),
            Value::Num(_) => out.push_str("null"),
            Value::Str(s) => write_json_string(s, out),
            Value::List(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Map(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document into a value.
    ///
    /// # Errors
    ///
    /// Returns [`ApisenseError::Runtime`] describing the first syntax error;
    /// trailing non-whitespace input is rejected.
    pub fn from_json(text: &str) -> Result<Value, ApisenseError> {
        let mut parser = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(json_err(format!(
                "trailing characters at byte {}",
                parser.pos
            )));
        }
        Ok(value)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_err(message: String) -> ApisenseError {
    ApisenseError::Runtime(format!("invalid json: {message}"))
}

/// Minimal recursive-descent JSON parser backing [`Value::from_json`].
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, ApisenseError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            None => Err(json_err("unexpected end of input".into())),
            Some(b'n') if self.eat("null") => Ok(Value::Null),
            Some(b't') if self.eat("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat("]") {
                    return Ok(Value::List(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    if self.eat("]") {
                        return Ok(Value::List(items));
                    }
                    if !self.eat(",") {
                        return Err(json_err(format!("expected , or ] at byte {}", self.pos)));
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.eat("}") {
                    return Ok(Value::Map(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    if !self.eat(":") {
                        return Err(json_err(format!("expected : at byte {}", self.pos)));
                    }
                    map.insert(key, self.parse_value()?);
                    self.skip_ws();
                    if self.eat("}") {
                        return Ok(Value::Map(map));
                    }
                    if !self.eat(",") {
                        return Err(json_err(format!("expected , or }} at byte {}", self.pos)));
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, ApisenseError> {
        if !self.eat("\"") {
            return Err(json_err(format!("expected string at byte {}", self.pos)));
        }
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(json_err("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(json_err("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| json_err("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogates are not combined; replace like JS.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(json_err(format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| json_err("invalid utf-8 in string".into()))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, ApisenseError> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| json_err(format!("bad number {text:?} at byte {start}")))
    }
}

/// Byte length of the UTF-8 sequence introduced by `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

/// A compiled, reusable crowd-sensing script.
///
/// Compilation happens once on the Honeycomb; the compiled script is what
/// the Hive offloads to devices (source travels with it for display and
/// re-compilation on heterogeneous clients). Both representations are
/// behind [`Arc`]s, so cloning a `Script` — per deployment, per device —
/// shares one AST and one [`CompiledProgram`] fleet-wide.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    source: String,
    program: Arc<Program>,
    compiled: Arc<CompiledProgram>,
}

impl Script {
    /// Compiles source text into a script: lexes, parses, and lowers the
    /// AST to bytecode for the VM execution tier.
    ///
    /// # Errors
    ///
    /// Returns [`ApisenseError::Lex`] / [`ApisenseError::Parse`] with
    /// 1-based line numbers on malformed input, or
    /// [`ApisenseError::ScriptCompile`] when the program exceeds a bytecode
    /// capacity limit.
    pub fn compile(source: &str) -> Result<Self, ApisenseError> {
        let tokens = lexer::tokenize(source)?;
        let program = parser::parse(tokens)?;
        let compiled = compile::compile(&program)?;
        Ok(Self {
            source: source.to_string(),
            program: Arc::new(program),
            compiled: Arc::new(compiled),
        })
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The bytecode lowering, shared (via [`Arc`]) by all clones of this
    /// script. Hand it to a cached [`Vm`] for compile-once / run-many
    /// execution.
    pub fn compiled(&self) -> &Arc<CompiledProgram> {
        &self.compiled
    }

    /// Runs the script against a host with an execution budget (`fuel` is
    /// roughly the number of AST nodes evaluated; the VM charges it in
    /// per-basic-block batches with identical exhaustion behaviour).
    ///
    /// Executes on the bytecode VM tier. Callers on a hot path should keep
    /// a [`Vm`] and use [`Script::run_vm`] to reuse its allocations;
    /// [`Script::run_interpreted`] selects the tree-walking tier instead.
    ///
    /// Returns the value of the last expression statement, or [`Value::Null`].
    ///
    /// # Errors
    ///
    /// Propagates host errors, runtime type errors and
    /// [`ApisenseError::FuelExhausted`] when the budget runs out.
    pub fn run(&self, host: &mut dyn Host, fuel: u64) -> Result<Value, ApisenseError> {
        Vm::new().run(&self.compiled, host, fuel)
    }

    /// Runs the script on the VM tier with a caller-provided [`Vm`],
    /// reusing its stack/frame allocations and inline caches across
    /// readings.
    ///
    /// # Errors
    ///
    /// Same classification as [`Script::run`].
    pub fn run_vm(
        &self,
        vm: &mut Vm,
        host: &mut dyn Host,
        fuel: u64,
    ) -> Result<Value, ApisenseError> {
        vm.run(&self.compiled, host, fuel)
    }

    /// Runs the script on the tree-walking interpreter tier — the
    /// differential baseline the VM is verified against.
    ///
    /// # Errors
    ///
    /// Same classification as [`Script::run`].
    pub fn run_interpreted(
        &self,
        host: &mut dyn Host,
        fuel: u64,
    ) -> Result<Value, ApisenseError> {
        Interpreter::new(host, fuel).run(&self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_rules() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Num(0.0).is_truthy());
        assert!(!Value::Num(f64::NAN).is_truthy());
        assert!(Value::Num(1.5).is_truthy());
        assert!(!Value::Str(String::new()).is_truthy());
        assert!(Value::Str("x".into()).is_truthy());
        assert!(Value::List(vec![]).is_truthy());
        assert!(Value::Map(BTreeMap::new()).is_truthy());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Num(2.5).to_string(), "2.5");
        assert_eq!(
            Value::List(vec![Value::Num(1.0), Value::Str("a".into())]).to_string(),
            "[1, a]"
        );
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), Value::Bool(true));
        assert_eq!(Value::Map(m).to_string(), "{k: true}");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(2.0), Value::Num(2.0));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::Num(3.0).as_num(), Some(3.0));
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
        assert!(Value::Null.as_map().is_none());
    }

    #[test]
    fn compile_keeps_source() {
        let s = Script::compile("1 + 2;").unwrap();
        assert_eq!(s.source(), "1 + 2;");
        assert!(!s.program().statements.is_empty());
    }
}
