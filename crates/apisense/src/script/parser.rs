//! Recursive-descent parser for the task-scripting DSL.

use super::lexer::{Token, TokenKind};
use crate::error::ApisenseError;

/// A parsed program: a sequence of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level statements, in source order.
    pub statements: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;`
    Let(String, Expr),
    /// `fn name(params) { body }`
    Fn {
        /// Function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch statements.
        then_branch: Vec<Stmt>,
        /// Else-branch statements (empty when absent).
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr;` (expression optional).
    Return(Option<Expr>),
    /// A bare expression statement (`expr;` or trailing `expr`).
    Expr(Expr),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+` (numeric addition or string concatenation).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// Variable reference.
    Ident(String),
    /// List literal.
    List(Vec<Expr>),
    /// Map literal (string keys).
    Map(Vec<(String, Expr)>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Member access `expr.name`.
    Member(Box<Expr>, String),
    /// Index access `expr[expr]`.
    Index(Box<Expr>, Box<Expr>),
    /// Call `callee(args)`. The callee is an identifier or member chain.
    Call(Box<Expr>, Vec<Expr>),
    /// Assignment `target = value`; target is an identifier, member or
    /// index expression.
    Assign(Box<Expr>, Box<Expr>),
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parses a token stream into a program.
///
/// # Errors
///
/// Returns [`ApisenseError::Parse`] with a 1-based line number.
pub fn parse(tokens: Vec<Token>) -> Result<Program, ApisenseError> {
    let mut parser = Parser { tokens, pos: 0 };
    let mut statements = Vec::new();
    while !parser.check_eof() {
        statements.push(parser.statement()?);
    }
    Ok(Program { statements })
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn check_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> ApisenseError {
        ApisenseError::Parse {
            message: message.into(),
            line: self.line(),
        }
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ApisenseError> {
        match self.peek() {
            TokenKind::Punct(op) if *op == p => {
                self.advance();
                Ok(())
            }
            other => Err(self.error(format!("expected '{p}', found {other:?}"))),
        }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        match self.peek() {
            TokenKind::Punct(op) if *op == p => {
                self.advance();
                true
            }
            _ => false,
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        match self.peek() {
            TokenKind::Keyword(k) if *k == kw => {
                self.advance();
                true
            }
            _ => false,
        }
    }

    fn ident(&mut self) -> Result<String, ApisenseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Stmt, ApisenseError> {
        if self.try_keyword("let") {
            let name = self.ident()?;
            self.eat_punct("=")?;
            let value = self.expression()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Let(name, value));
        }
        if self.try_keyword("fn") {
            let name = self.ident()?;
            self.eat_punct("(")?;
            let mut params = Vec::new();
            if !self.try_punct(")") {
                loop {
                    params.push(self.ident()?);
                    if self.try_punct(")") {
                        break;
                    }
                    self.eat_punct(",")?;
                }
            }
            let body = self.block()?;
            return Ok(Stmt::Fn { name, params, body });
        }
        if self.try_keyword("if") {
            return self.if_statement();
        }
        if self.try_keyword("while") {
            self.eat_punct("(")?;
            let cond = self.expression()?;
            self.eat_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.try_keyword("return") {
            if self.try_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let value = self.expression()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Return(Some(value)));
        }
        let expr = self.expression()?;
        // Trailing expression without semicolon is allowed at EOF (script
        // result value); otherwise a semicolon is required.
        if !self.try_punct(";")
            && !self.check_eof()
            && !matches!(self.peek(), TokenKind::Punct("}"))
        {
            return Err(self.error("expected ';' after expression"));
        }
        Ok(Stmt::Expr(expr))
    }

    fn if_statement(&mut self) -> Result<Stmt, ApisenseError> {
        self.eat_punct("(")?;
        let cond = self.expression()?;
        self.eat_punct(")")?;
        let then_branch = self.block()?;
        let else_branch = if self.try_keyword("else") {
            if self.try_keyword("if") {
                vec![self.if_statement()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ApisenseError> {
        self.eat_punct("{")?;
        let mut statements = Vec::new();
        while !self.try_punct("}") {
            if self.check_eof() {
                return Err(self.error("unterminated block"));
            }
            statements.push(self.statement()?);
        }
        Ok(statements)
    }

    fn expression(&mut self) -> Result<Expr, ApisenseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ApisenseError> {
        let target = self.or_expr()?;
        if self.try_punct("=") {
            match target {
                Expr::Ident(_) | Expr::Member(_, _) | Expr::Index(_, _) => {
                    let value = self.assignment()?;
                    Ok(Expr::Assign(Box::new(target), Box::new(value)))
                }
                _ => Err(self.error("invalid assignment target")),
            }
        } else {
            Ok(target)
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ApisenseError> {
        let mut left = self.and_expr()?;
        while self.try_punct("||") {
            let right = self.and_expr()?;
            left = Expr::Binary(BinaryOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ApisenseError> {
        let mut left = self.equality()?;
        while self.try_punct("&&") {
            let right = self.equality()?;
            left = Expr::Binary(BinaryOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn equality(&mut self) -> Result<Expr, ApisenseError> {
        let mut left = self.comparison()?;
        loop {
            let op = if self.try_punct("==") {
                BinaryOp::Eq
            } else if self.try_punct("!=") {
                BinaryOp::Ne
            } else {
                return Ok(left);
            };
            let right = self.comparison()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
    }

    fn comparison(&mut self) -> Result<Expr, ApisenseError> {
        let mut left = self.additive()?;
        loop {
            let op = if self.try_punct("<=") {
                BinaryOp::Le
            } else if self.try_punct(">=") {
                BinaryOp::Ge
            } else if self.try_punct("<") {
                BinaryOp::Lt
            } else if self.try_punct(">") {
                BinaryOp::Gt
            } else {
                return Ok(left);
            };
            let right = self.additive()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
    }

    fn additive(&mut self) -> Result<Expr, ApisenseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.try_punct("+") {
                BinaryOp::Add
            } else if self.try_punct("-") {
                BinaryOp::Sub
            } else {
                return Ok(left);
            };
            let right = self.multiplicative()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ApisenseError> {
        let mut left = self.unary()?;
        loop {
            let op = if self.try_punct("*") {
                BinaryOp::Mul
            } else if self.try_punct("/") {
                BinaryOp::Div
            } else if self.try_punct("%") {
                BinaryOp::Rem
            } else {
                return Ok(left);
            };
            let right = self.unary()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
    }

    fn unary(&mut self) -> Result<Expr, ApisenseError> {
        if self.try_punct("-") {
            let operand = self.unary()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(operand)));
        }
        if self.try_punct("!") {
            let operand = self.unary()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(operand)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ApisenseError> {
        let mut expr = self.primary()?;
        loop {
            if self.try_punct("(") {
                let mut args = Vec::new();
                if !self.try_punct(")") {
                    loop {
                        args.push(self.expression()?);
                        if self.try_punct(")") {
                            break;
                        }
                        self.eat_punct(",")?;
                    }
                }
                expr = Expr::Call(Box::new(expr), args);
            } else if self.try_punct(".") {
                let name = self.ident()?;
                expr = Expr::Member(Box::new(expr), name);
            } else if self.try_punct("[") {
                let index = self.expression()?;
                self.eat_punct("]")?;
                expr = Expr::Index(Box::new(expr), Box::new(index));
            } else {
                return Ok(expr);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ApisenseError> {
        match self.peek().clone() {
            TokenKind::Num(n) => {
                self.advance();
                Ok(Expr::Num(n))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            TokenKind::Keyword("true") => {
                self.advance();
                Ok(Expr::Bool(true))
            }
            TokenKind::Keyword("false") => {
                self.advance();
                Ok(Expr::Bool(false))
            }
            TokenKind::Keyword("null") => {
                self.advance();
                Ok(Expr::Null)
            }
            TokenKind::Ident(name) => {
                self.advance();
                Ok(Expr::Ident(name))
            }
            TokenKind::Punct("(") => {
                self.advance();
                let inner = self.expression()?;
                self.eat_punct(")")?;
                Ok(inner)
            }
            TokenKind::Punct("[") => {
                self.advance();
                let mut items = Vec::new();
                if !self.try_punct("]") {
                    loop {
                        items.push(self.expression()?);
                        if self.try_punct("]") {
                            break;
                        }
                        self.eat_punct(",")?;
                    }
                }
                Ok(Expr::List(items))
            }
            TokenKind::Punct("{") => {
                self.advance();
                let mut entries = Vec::new();
                if !self.try_punct("}") {
                    loop {
                        let key = match self.peek().clone() {
                            TokenKind::Str(s) => {
                                self.advance();
                                s
                            }
                            TokenKind::Ident(s) => {
                                self.advance();
                                s
                            }
                            other => {
                                return Err(
                                    self.error(format!("expected map key, found {other:?}"))
                                )
                            }
                        };
                        self.eat_punct(":")?;
                        let value = self.expression()?;
                        entries.push((key, value));
                        if self.try_punct("}") {
                            break;
                        }
                        self.eat_punct(",")?;
                    }
                }
                Ok(Expr::Map(entries))
            }
            other => Err(self.error(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::lexer::tokenize;
    use super::*;

    fn parse_src(src: &str) -> Program {
        parse(tokenize(src).unwrap()).unwrap()
    }

    fn parse_err(src: &str) -> ApisenseError {
        parse(tokenize(src).unwrap()).unwrap_err()
    }

    #[test]
    fn let_and_expression_statements() {
        let p = parse_src("let x = 1; x + 2;");
        assert_eq!(p.statements.len(), 2);
        assert!(matches!(&p.statements[0], Stmt::Let(name, _) if name == "x"));
        assert!(matches!(
            &p.statements[1],
            Stmt::Expr(Expr::Binary(BinaryOp::Add, _, _))
        ));
    }

    #[test]
    fn operator_precedence() {
        let p = parse_src("1 + 2 * 3;");
        match &p.statements[0] {
            Stmt::Expr(Expr::Binary(BinaryOp::Add, left, right)) => {
                assert_eq!(**left, Expr::Num(1.0));
                assert!(matches!(**right, Expr::Binary(BinaryOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comparison_and_logic() {
        let p = parse_src("a < b && c == d || !e;");
        assert!(matches!(
            &p.statements[0],
            Stmt::Expr(Expr::Binary(BinaryOp::Or, _, _))
        ));
    }

    #[test]
    fn if_else_chain() {
        let p = parse_src("if (a) { 1; } else if (b) { 2; } else { 3; }");
        match &p.statements[0] {
            Stmt::If { else_branch, .. } => {
                assert_eq!(else_branch.len(), 1);
                assert!(matches!(&else_branch[0], Stmt::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn while_and_function() {
        let p = parse_src("fn add(a, b) { return a + b; } while (x < 3) { x = x + 1; }");
        assert!(matches!(&p.statements[0], Stmt::Fn { name, params, .. }
            if name == "add" && params.len() == 2));
        assert!(matches!(&p.statements[1], Stmt::While { .. }));
    }

    #[test]
    fn member_call_chain() {
        let p = parse_src("sensor.gps().lat;");
        match &p.statements[0] {
            Stmt::Expr(Expr::Member(call, field)) => {
                assert_eq!(field, "lat");
                assert!(matches!(**call, Expr::Call(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn list_and_map_literals() {
        let p = parse_src(r#"[1, "two", true]; { "a": 1, b: 2 };"#);
        assert!(matches!(&p.statements[0], Stmt::Expr(Expr::List(items)) if items.len() == 3));
        assert!(
            matches!(&p.statements[1], Stmt::Expr(Expr::Map(entries)) if entries.len() == 2)
        );
    }

    #[test]
    fn index_and_assignment() {
        let p = parse_src("xs[0] = 5; m.field = 2;");
        assert!(
            matches!(&p.statements[0], Stmt::Expr(Expr::Assign(target, _))
            if matches!(**target, Expr::Index(_, _)))
        );
        assert!(
            matches!(&p.statements[1], Stmt::Expr(Expr::Assign(target, _))
            if matches!(**target, Expr::Member(_, _)))
        );
    }

    #[test]
    fn trailing_expression_without_semicolon() {
        let p = parse_src("let x = 1; x");
        assert_eq!(p.statements.len(), 2);
    }

    #[test]
    fn invalid_assignment_target() {
        let e = parse_err("1 = 2;");
        assert!(matches!(e, ApisenseError::Parse { .. }));
    }

    #[test]
    fn unterminated_block() {
        let e = parse_err("if (a) { 1;");
        assert!(e.to_string().contains("unterminated block"));
    }

    #[test]
    fn missing_semicolon_between_expressions() {
        let e = parse_err("1 2;");
        assert!(e.to_string().contains("expected ';'"));
    }

    #[test]
    fn error_lines_are_accurate() {
        let e = parse_err("let x = 1;\nlet y = ;\n");
        match e {
            ApisenseError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
