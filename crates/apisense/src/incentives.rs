//! Incentive strategies and the participation model (experiment E6).
//!
//! "The APISENSE platform supports the implementation of different incentive
//! strategies, including user feedback, user ranking, user rewarding and
//! win-win services. The selection of incentive strategies carefully depends
//! on the nature of the crowdsourcing experiments." (paper, §2)
//!
//! The behavioural model is deliberately simple and fully documented:
//! every user has a seeded base motivation that decays over the campaign
//! (novelty wears off); each strategy adds a boost with a distinct shape.
//! The simulation reports daily active contributors, record volume, cost
//! and retention, which is what a campaign designer compares.

use mobility::UserId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The incentive strategy attached to a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IncentiveStrategy {
    /// No incentive: pure volunteering.
    None,
    /// Periodic feedback to contributors (progress reports, maps of the
    /// collected data). Small, sustained motivation boost.
    Feedback,
    /// Public leaderboard. Boosts competitive users (the upper half of the
    /// motivation distribution) but can discourage the long tail.
    Ranking,
    /// Micro-payments per accepted record, from a fixed campaign budget.
    Rewarding {
        /// Credits paid per record.
        credits_per_record: f64,
        /// Total campaign budget; when exhausted, payments stop.
        budget: f64,
    },
    /// The campaign's output is itself a service to contributors (e.g. the
    /// network-quality map built from their measurements). Sustained boost
    /// that *grows* as the dataset becomes more useful.
    WinWin,
}

impl fmt::Display for IncentiveStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncentiveStrategy::None => write!(f, "none"),
            IncentiveStrategy::Feedback => write!(f, "feedback"),
            IncentiveStrategy::Ranking => write!(f, "ranking"),
            IncentiveStrategy::Rewarding {
                credits_per_record,
                budget,
            } => write!(f, "rewarding({credits_per_record}/rec, budget {budget})"),
            IncentiveStrategy::WinWin => write!(f, "win-win"),
        }
    }
}

/// Configuration of a participation simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Community size.
    pub users: usize,
    /// Campaign length in days.
    pub days: usize,
    /// Records produced per active user-day.
    pub records_per_active_day: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            users: 300,
            days: 28,
            records_per_active_day: 48,
            seed: 0x14C3,
        }
    }
}

/// Result of a participation simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncentiveReport {
    /// Strategy description.
    pub strategy: String,
    /// Active contributors per day.
    pub daily_active: Vec<usize>,
    /// Total records collected.
    pub total_records: u64,
    /// Credits actually spent (rewarding only).
    pub cost: f64,
    /// Active users on the last day divided by active users on day 0.
    pub retention: f64,
    /// Mean daily active contributors.
    pub mean_active: f64,
}

/// Per-user state tracked across the campaign.
#[derive(Debug, Clone)]
struct UserState {
    base_motivation: f64,
    credits: f64,
    contributions: u64,
    competitive: bool,
}

/// Simulates a campaign under one incentive strategy.
///
/// Model: user `u` participates on day `d` with probability
/// `clamp(base(u) · decay(d) + boost(strategy, u, d), 0, 0.95)` where
/// `decay(d) = 0.97^d` (novelty decay ~3 %/day).
pub fn simulate_campaign(
    strategy: &IncentiveStrategy,
    config: &CampaignConfig,
) -> IncentiveReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut users: BTreeMap<UserId, UserState> = (0..config.users)
        .map(|i| {
            let base: f64 = rng.gen_range(0.05..0.6);
            (
                UserId(i as u64),
                UserState {
                    base_motivation: base,
                    credits: 0.0,
                    contributions: 0,
                    competitive: rng.gen_bool(0.5),
                },
            )
        })
        .collect();
    let mut remaining_budget = match strategy {
        IncentiveStrategy::Rewarding { budget, .. } => *budget,
        _ => 0.0,
    };
    let mut daily_active = Vec::with_capacity(config.days);
    let mut total_records: u64 = 0;
    let mut cost = 0.0;
    for day in 0..config.days {
        let decay = 0.97_f64.powi(day as i32);
        // Leaderboard threshold for Ranking: median contributions so far.
        let median_contrib = {
            let mut c: Vec<u64> = users.values().map(|u| u.contributions).collect();
            c.sort_unstable();
            c[c.len() / 2]
        };
        let mut active_today = 0;
        for state in users.values_mut() {
            let boost = match strategy {
                IncentiveStrategy::None => 0.0,
                IncentiveStrategy::Feedback => 0.08,
                IncentiveStrategy::Ranking => {
                    // Competitive users above the median push harder; others
                    // are slightly discouraged.
                    if state.competitive && state.contributions >= median_contrib {
                        0.18
                    } else if state.competitive {
                        0.10
                    } else {
                        -0.02
                    }
                }
                IncentiveStrategy::Rewarding {
                    credits_per_record, ..
                } => {
                    if remaining_budget > 0.0 {
                        // Money talks, proportionally to the payout.
                        (credits_per_record * 2.0).min(0.35)
                    } else {
                        // Payments stopped: worse than volunteering
                        // (perceived broken promise).
                        -0.05
                    }
                }
                IncentiveStrategy::WinWin => {
                    // The service gets more valuable as data accumulates.
                    0.05 + 0.15 * (day as f64 / config.days.max(1) as f64)
                }
            };
            let p = (state.base_motivation * decay + boost).clamp(0.0, 0.95);
            if rng.gen_bool(p) {
                active_today += 1;
                state.contributions += config.records_per_active_day;
                total_records += config.records_per_active_day;
                if let IncentiveStrategy::Rewarding {
                    credits_per_record, ..
                } = strategy
                {
                    let pay = (credits_per_record * config.records_per_active_day as f64)
                        .min(remaining_budget);
                    remaining_budget -= pay;
                    state.credits += pay;
                    cost += pay;
                }
            }
        }
        daily_active.push(active_today);
    }
    let first = *daily_active.first().unwrap_or(&0);
    let last = *daily_active.last().unwrap_or(&0);
    IncentiveReport {
        strategy: strategy.to_string(),
        retention: if first == 0 {
            0.0
        } else {
            last as f64 / first as f64
        },
        mean_active: daily_active.iter().sum::<usize>() as f64
            / daily_active.len().max(1) as f64,
        daily_active,
        total_records,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CampaignConfig {
        CampaignConfig {
            users: 200,
            days: 21,
            records_per_active_day: 40,
            seed: 7,
        }
    }

    #[test]
    fn reports_are_deterministic() {
        let a = simulate_campaign(&IncentiveStrategy::Feedback, &config());
        let b = simulate_campaign(&IncentiveStrategy::Feedback, &config());
        assert_eq!(a, b);
    }

    #[test]
    fn every_incentive_beats_no_incentive() {
        let cfg = config();
        let none = simulate_campaign(&IncentiveStrategy::None, &cfg);
        for strategy in [
            IncentiveStrategy::Feedback,
            IncentiveStrategy::Ranking,
            IncentiveStrategy::Rewarding {
                credits_per_record: 0.1,
                budget: 50_000.0,
            },
            IncentiveStrategy::WinWin,
        ] {
            let report = simulate_campaign(&strategy, &cfg);
            assert!(
                report.mean_active > none.mean_active,
                "{strategy}: {} vs none {}",
                report.mean_active,
                none.mean_active
            );
        }
    }

    #[test]
    fn rewarding_stops_with_budget() {
        let cfg = config();
        let small_budget = simulate_campaign(
            &IncentiveStrategy::Rewarding {
                credits_per_record: 0.1,
                budget: 100.0,
            },
            &cfg,
        );
        assert!(small_budget.cost <= 100.0 + 1e-9);
        let big_budget = simulate_campaign(
            &IncentiveStrategy::Rewarding {
                credits_per_record: 0.1,
                budget: 1e9,
            },
            &cfg,
        );
        assert!(big_budget.total_records > small_budget.total_records);
        assert!(big_budget.cost > small_budget.cost);
    }

    #[test]
    fn win_win_retains_better_than_none() {
        // Win-win's boost grows over the campaign, countering decay.
        let cfg = CampaignConfig {
            days: 28,
            ..config()
        };
        let none = simulate_campaign(&IncentiveStrategy::None, &cfg);
        let winwin = simulate_campaign(&IncentiveStrategy::WinWin, &cfg);
        assert!(
            winwin.retention > none.retention,
            "win-win {} vs none {}",
            winwin.retention,
            none.retention
        );
    }

    #[test]
    fn participation_never_exceeds_community() {
        let cfg = config();
        let report = simulate_campaign(
            &IncentiveStrategy::Rewarding {
                credits_per_record: 10.0,
                budget: 1e12,
            },
            &cfg,
        );
        for &active in &report.daily_active {
            assert!(active <= cfg.users);
        }
        assert_eq!(report.daily_active.len(), cfg.days);
    }

    #[test]
    fn only_rewarding_costs_money() {
        let cfg = config();
        for strategy in [
            IncentiveStrategy::None,
            IncentiveStrategy::Feedback,
            IncentiveStrategy::Ranking,
            IncentiveStrategy::WinWin,
        ] {
            assert_eq!(simulate_campaign(&strategy, &cfg).cost, 0.0);
        }
    }

    #[test]
    fn strategy_display() {
        assert_eq!(IncentiveStrategy::None.to_string(), "none");
        assert_eq!(IncentiveStrategy::WinWin.to_string(), "win-win");
        assert!(IncentiveStrategy::Rewarding {
            credits_per_record: 0.5,
            budget: 10.0
        }
        .to_string()
        .contains("0.5"));
    }
}
