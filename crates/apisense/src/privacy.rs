//! The device-side privacy layer.
//!
//! "A first layer is deployed on the mobile device and implements several
//! algorithms to filter out and blur sensitive information (e.g., address
//! book, location) depending on user preferences. The user keeps the
//! control of her mobile phone to select the sensors to be shared, as well
//! as when and where these sensors can be used by the platform." (paper, §2)
//!
//! [`PrivacyPreferences`] implements exactly that contract:
//!
//! * **sensor opt-in/out** — which sensors may be shared;
//! * **time windows** — *when* sensors may be used;
//! * **exclusion geofences** — *where* records must never be produced
//!   (typically the user's home);
//! * **location blur** — deterministic Gaussian displacement of published
//!   coordinates;
//! * **contact hashing** — address-book identifiers are one-way hashed
//!   before ever leaving the device.

use crate::device::{SensedRecord, SensorKind};
use crate::script::Value;
use geo::{GeoPoint, Meters};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A circular exclusion zone: no records inside it are published.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExclusionZone {
    /// Zone centre.
    pub center: GeoPoint,
    /// Zone radius.
    pub radius: Meters,
}

impl ExclusionZone {
    /// Creates a zone.
    pub fn new(center: GeoPoint, radius: Meters) -> Self {
        Self { center, radius }
    }

    /// Whether a point falls inside the zone.
    pub fn contains(&self, point: &GeoPoint) -> bool {
        self.center.haversine_distance(point).get() <= self.radius.get()
    }
}

/// An allowed daily collection window `[start_hour, end_hour)`.
///
/// Windows may wrap past midnight (`start > end`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeWindow {
    /// First allowed hour (inclusive, 0–23).
    pub start_hour: i64,
    /// First disallowed hour (exclusive, 0–24).
    pub end_hour: i64,
}

impl TimeWindow {
    /// Creates a window; hours are clamped to `[0, 24]`.
    pub fn new(start_hour: i64, end_hour: i64) -> Self {
        Self {
            start_hour: start_hour.clamp(0, 24),
            end_hour: end_hour.clamp(0, 24),
        }
    }

    /// Whether `hour` falls inside the window.
    pub fn contains_hour(&self, hour: i64) -> bool {
        if self.start_hour <= self.end_hour {
            (self.start_hour..self.end_hour).contains(&hour)
        } else {
            hour >= self.start_hour || hour < self.end_hour
        }
    }
}

/// Per-user privacy preferences enforced on the device before any record
/// leaves it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyPreferences {
    /// Sensors the user agreed to share.
    enabled_sensors: BTreeSet<SensorKind>,
    /// Zones where no record may be produced.
    exclusion_zones: Vec<ExclusionZone>,
    /// Allowed collection windows; empty means "any time".
    time_windows: Vec<TimeWindow>,
    /// Standard deviation of the location blur, in metres (0 = off).
    blur_sigma_m: f64,
    /// Per-user salt for deterministic blur and contact hashing.
    salt: u64,
}

impl Default for PrivacyPreferences {
    /// Everything shared, no zones, no windows, no blur.
    fn default() -> Self {
        Self {
            enabled_sensors: SensorKind::ALL.into_iter().collect(),
            exclusion_zones: Vec::new(),
            time_windows: Vec::new(),
            blur_sigma_m: 0.0,
            salt: 0x5A17,
        }
    }
}

impl PrivacyPreferences {
    /// Creates fully-open preferences (same as [`Default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Disables one sensor.
    pub fn without_sensor(mut self, sensor: SensorKind) -> Self {
        self.enabled_sensors.remove(&sensor);
        self
    }

    /// Adds an exclusion zone.
    pub fn with_exclusion_zone(mut self, zone: ExclusionZone) -> Self {
        self.exclusion_zones.push(zone);
        self
    }

    /// Restricts collection to a daily time window (may be called several
    /// times; a record is allowed if *any* window contains it).
    pub fn with_time_window(mut self, window: TimeWindow) -> Self {
        self.time_windows.push(window);
        self
    }

    /// Enables Gaussian location blur with the given standard deviation.
    pub fn with_blur(mut self, sigma: Meters) -> Self {
        self.blur_sigma_m = sigma.get().max(0.0);
        self
    }

    /// Sets the per-user salt (blur displacement and contact hashes are
    /// deterministic per salt).
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Whether the user shares `sensor`.
    pub fn sensor_enabled(&self, sensor: SensorKind) -> bool {
        self.enabled_sensors.contains(&sensor)
    }

    /// The configured blur level.
    pub fn blur_sigma(&self) -> Meters {
        Meters::new(self.blur_sigma_m)
    }

    /// Applies the full filter chain to a record.
    ///
    /// Returns `None` when the record must be suppressed (outside every
    /// allowed time window, or located inside an exclusion zone), otherwise
    /// the (possibly blurred) record.
    pub fn filter_record(&self, mut record: SensedRecord) -> Option<SensedRecord> {
        // When: time windows.
        if !self.time_windows.is_empty() {
            let hour = record.time.hour_of_day();
            if !self.time_windows.iter().any(|w| w.contains_hour(hour)) {
                return None;
            }
        }
        // Where: exclusion zones (only applies to located records).
        if let Some(location) = record.location() {
            if self.exclusion_zones.iter().any(|z| z.contains(&location)) {
                return None;
            }
            // Blur.
            if self.blur_sigma_m > 0.0 {
                let blurred = self.blur_point(&location, record.time.seconds());
                if let Value::Map(m) = &mut record.payload {
                    m.insert("lat".to_string(), Value::Num(blurred.latitude()));
                    m.insert("lon".to_string(), Value::Num(blurred.longitude()));
                }
            }
        }
        Some(record)
    }

    /// Deterministically blurs a point (Box–Muller over a salted hash).
    fn blur_point(&self, point: &GeoPoint, time_s: i64) -> GeoPoint {
        let u1 = hash_unit(self.salt ^ 0xB1u64, point, time_s).max(f64::EPSILON);
        let u2 = hash_unit(self.salt ^ 0xB2u64, point, time_s);
        let r = (-2.0 * u1.ln()).sqrt();
        let de = r * (std::f64::consts::TAU * u2).cos() * self.blur_sigma_m;
        let dn = r * (std::f64::consts::TAU * u2).sin() * self.blur_sigma_m;
        let cos_lat = point.latitude().to_radians().cos().max(0.01);
        GeoPoint::clamped(
            point.latitude() + dn / 111_320.0,
            point.longitude() + de / (111_320.0 * cos_lat),
        )
    }

    /// One-way hashes address-book identifiers so scripts can correlate
    /// contacts without ever seeing them ("filter out … address book").
    pub fn hash_contacts<'a, I>(&self, contacts: I) -> Vec<u64>
    where
        I: IntoIterator<Item = &'a str>,
    {
        contacts
            .into_iter()
            .map(|c| {
                let mut h = self.salt ^ 0xC017AC7u64;
                for b in c.bytes() {
                    h = h.wrapping_mul(0x100000001B3).rotate_left(7) ^ b as u64;
                }
                h ^= h >> 31;
                h.wrapping_mul(0xFF51AFD7ED558CCD)
            })
            .collect()
    }
}

/// The platform-side publication gateway: the second privacy layer of the
/// paper's architecture, bridging APISENSE data collection to the PRIVAPI
/// middleware.
///
/// "A second \[layer\] is deployed in the cloud and enforces privacy before
/// datasets are released" (paper, §2). Where [`PrivacyPreferences`] filters
/// on the device, the gateway protects whole collected datasets: it hands a
/// task's [`crate::honeycomb::Honeycomb`] data to PRIVAPI's parallel
/// evaluation engine, which searches the **shared**
/// [`privapi::pool::StrategyPool`] for the best-utility strategy under the
/// configured privacy floor. Continuously collected data goes through the
/// streaming entry point [`PublicationGateway::publish_window`], which
/// reuses the gateway's session cache across daily releases.
#[derive(Debug)]
pub struct PublicationGateway {
    privapi: privapi::pipeline::PrivApi,
    session: privapi::streaming::SessionCache,
}

impl Default for PublicationGateway {
    /// A gateway with PRIVAPI's default configuration and default pool.
    fn default() -> Self {
        Self::new(privapi::pipeline::PrivApiConfig::default())
    }
}

impl PublicationGateway {
    /// Creates a gateway enforcing `config` with the shared default pool
    /// and an empty streaming session.
    pub fn new(config: privapi::pipeline::PrivApiConfig) -> Self {
        Self {
            privapi: privapi::pipeline::PrivApi::new(config),
            session: privapi::streaming::SessionCache::new(),
        }
    }

    /// Replaces the strategy pool searched on publication.
    pub fn with_pool(mut self, pool: privapi::pool::StrategyPool) -> Self {
        self.privapi = self.privapi.with_pool(pool);
        self
    }

    /// Replaces the attack measuring POI exposure (custom parameters, or an
    /// instrumented probe for extraction accounting).
    pub fn with_attack(mut self, attack: privapi::attack::PoiAttack) -> Self {
        self.privapi = self.privapi.with_attack(attack);
        self
    }

    /// Sets the evaluation schedule (parallel by default).
    pub fn with_mode(mut self, mode: privapi::engine::ExecutionMode) -> Self {
        self.privapi = self.privapi.with_mode(mode);
        self
    }

    /// The underlying PRIVAPI middleware.
    pub fn privapi(&self) -> &privapi::pipeline::PrivApi {
        &self.privapi
    }

    /// Protects and publishes one task's collected mobility data.
    ///
    /// # Errors
    ///
    /// * [`privapi::PrivapiError::EmptyDataset`] when the task has no
    ///   located records;
    /// * [`privapi::PrivapiError::NoFeasibleStrategy`] when no pooled
    ///   strategy meets the privacy floor on this dataset.
    pub fn publish_task(
        &self,
        honeycomb: &crate::honeycomb::Honeycomb,
        task: crate::hive::TaskId,
    ) -> Result<privapi::pipeline::PublishedDataset, privapi::PrivapiError> {
        self.privapi.publish(&honeycomb.mobility_dataset(task))
    }

    /// Protects and publishes an already-assembled mobility dataset.
    ///
    /// # Errors
    ///
    /// Same contract as [`privapi::pipeline::PrivApi::publish`].
    pub fn publish_dataset(
        &self,
        dataset: &mobility::Dataset,
    ) -> Result<privapi::pipeline::PublishedDataset, privapi::PrivapiError> {
        self.privapi.publish(dataset)
    }

    /// The streaming entry point: protects and publishes one **day
    /// window** incrementally, reusing the gateway's session cache (per-
    /// user attack shards and the amended reference index) across calls.
    ///
    /// Scripted sensors that report continuously should feed their data
    /// through here — each window's release is byte-identical to a batch
    /// [`PublicationGateway::publish_dataset`] of everything collected so
    /// far, without re-running the original-side extraction for users that
    /// produced no new records. See
    /// [`privapi::pipeline::PrivApi::publish_window`].
    ///
    /// # Errors
    ///
    /// * [`privapi::PrivapiError::EmptyDataset`] for an empty window;
    /// * [`privapi::PrivapiError::NoFeasibleStrategy`] when no pooled
    ///   strategy meets the privacy floor on the accumulated prefix.
    pub fn publish_window(
        &mut self,
        window: &mobility::DatasetWindow,
    ) -> Result<privapi::streaming::PublishedWindow, privapi::PrivapiError> {
        self.privapi.publish_window(&mut self.session, window)
    }

    /// The streaming session state accumulated by
    /// [`PublicationGateway::publish_window`].
    pub fn session(&self) -> &privapi::streaming::SessionCache {
        &self.session
    }
}

/// Hash of (salt, point, time) mapped to `[0, 1)`.
fn hash_unit(salt: u64, point: &GeoPoint, time_s: i64) -> f64 {
    let mut h = salt
        ^ point.latitude().to_bits().wrapping_mul(0x9E3779B97F4A7C15)
        ^ point.longitude().to_bits().wrapping_mul(0xD6E8FEB86659FD93)
        ^ (time_s as u64).rotate_left(23);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51AFD7ED558CCD);
    h ^= h >> 29;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hive::TaskId;
    use mobility::{Timestamp, UserId};
    use std::collections::BTreeMap;

    fn located_record(lat: f64, lon: f64, time: Timestamp) -> SensedRecord {
        let mut payload = BTreeMap::new();
        payload.insert("lat".to_string(), Value::Num(lat));
        payload.insert("lon".to_string(), Value::Num(lon));
        SensedRecord {
            task: TaskId(1),
            user: UserId(1),
            device: crate::device::DeviceId(1),
            time,
            payload: Value::Map(payload),
        }
    }

    #[test]
    fn default_passes_everything() {
        let prefs = PrivacyPreferences::default();
        let r = located_record(45.0, 4.0, Timestamp::new(0));
        let out = prefs.filter_record(r.clone()).unwrap();
        assert_eq!(out, r);
        for s in SensorKind::ALL {
            assert!(prefs.sensor_enabled(s));
        }
    }

    #[test]
    fn exclusion_zone_suppresses_near_home() {
        let home = GeoPoint::new(45.0, 4.0).unwrap();
        let prefs = PrivacyPreferences::default()
            .with_exclusion_zone(ExclusionZone::new(home, Meters::new(250.0)));
        // 100 m from home: suppressed.
        let near = located_record(45.0009, 4.0, Timestamp::new(0));
        assert!(prefs.filter_record(near).is_none());
        // 2 km away: passes.
        let far = located_record(45.018, 4.0, Timestamp::new(0));
        assert!(prefs.filter_record(far).is_some());
    }

    #[test]
    fn time_window_filters_by_hour() {
        let prefs = PrivacyPreferences::default().with_time_window(TimeWindow::new(8, 20));
        let day = located_record(45.0, 4.0, Timestamp::from_day_time(0, 12, 0, 0));
        assert!(prefs.filter_record(day).is_some());
        let night = located_record(45.0, 4.0, Timestamp::from_day_time(0, 23, 0, 0));
        assert!(prefs.filter_record(night).is_none());
    }

    #[test]
    fn wrapping_time_window() {
        let w = TimeWindow::new(22, 6);
        assert!(w.contains_hour(23));
        assert!(w.contains_hour(2));
        assert!(!w.contains_hour(12));
        let prefs = PrivacyPreferences::default().with_time_window(w);
        let r = located_record(45.0, 4.0, Timestamp::from_day_time(0, 23, 30, 0));
        assert!(prefs.filter_record(r).is_some());
    }

    #[test]
    fn multiple_windows_are_a_union() {
        let prefs = PrivacyPreferences::default()
            .with_time_window(TimeWindow::new(8, 10))
            .with_time_window(TimeWindow::new(18, 20));
        assert!(prefs
            .filter_record(located_record(
                45.0,
                4.0,
                Timestamp::from_day_time(0, 9, 0, 0)
            ))
            .is_some());
        assert!(prefs
            .filter_record(located_record(
                45.0,
                4.0,
                Timestamp::from_day_time(0, 19, 0, 0)
            ))
            .is_some());
        assert!(prefs
            .filter_record(located_record(
                45.0,
                4.0,
                Timestamp::from_day_time(0, 14, 0, 0)
            ))
            .is_none());
    }

    #[test]
    fn blur_displaces_location_deterministically() {
        let prefs = PrivacyPreferences::default()
            .with_blur(Meters::new(100.0))
            .with_salt(99);
        let r = located_record(45.0, 4.0, Timestamp::new(1_000));
        let a = prefs.filter_record(r.clone()).unwrap();
        let b = prefs.filter_record(r.clone()).unwrap();
        assert_eq!(a, b, "blur must be deterministic per (salt, point, time)");
        let original = r.location().unwrap();
        let blurred = a.location().unwrap();
        let d = original.haversine_distance(&blurred).get();
        assert!(d > 1.0, "blur did nothing ({d} m)");
        assert!(d < 600.0, "blur too large ({d} m)");
    }

    #[test]
    fn blur_magnitude_scales_with_sigma() {
        // Average displacement over many records ≈ sigma * sqrt(pi/2).
        for sigma in [50.0, 150.0] {
            let prefs = PrivacyPreferences::default().with_blur(Meters::new(sigma));
            let mut total = 0.0;
            let n = 500;
            for i in 0..n {
                let r = located_record(45.0, 4.0 + i as f64 * 1e-4, Timestamp::new(i));
                let out = prefs.filter_record(r.clone()).unwrap();
                total += r
                    .location()
                    .unwrap()
                    .haversine_distance(&out.location().unwrap())
                    .get();
            }
            let mean = total / n as f64;
            let expected = sigma * (std::f64::consts::PI / 2.0).sqrt();
            assert!(
                (mean - expected).abs() / expected < 0.15,
                "sigma {sigma}: mean {mean} expected {expected}"
            );
        }
    }

    #[test]
    fn unlocated_records_skip_spatial_filters() {
        let prefs = PrivacyPreferences::default()
            .with_exclusion_zone(ExclusionZone::new(
                GeoPoint::new(45.0, 4.0).unwrap(),
                Meters::new(1_000_000.0),
            ))
            .with_blur(Meters::new(100.0));
        let r = SensedRecord {
            task: TaskId(1),
            user: UserId(1),
            device: crate::device::DeviceId(1),
            time: Timestamp::new(0),
            payload: Value::Num(42.0),
        };
        // No location: zone and blur do not apply.
        assert!(prefs.filter_record(r).is_some());
    }

    #[test]
    fn contact_hashing_is_stable_and_salted() {
        let prefs_a = PrivacyPreferences::default().with_salt(1);
        let prefs_b = PrivacyPreferences::default().with_salt(2);
        let contacts = ["alice@example.org", "bob@example.org"];
        let h1 = prefs_a.hash_contacts(contacts.iter().copied());
        let h2 = prefs_a.hash_contacts(contacts.iter().copied());
        assert_eq!(h1, h2, "same salt, same hashes");
        assert_ne!(h1, prefs_b.hash_contacts(contacts.iter().copied()));
        assert_ne!(h1[0], h1[1]);
        // Hashes never contain the raw text (one-way by construction);
        // sanity: distinct contacts collide with negligible probability.
        let many: Vec<String> = (0..1_000).map(|i| format!("user{i}@x")).collect();
        let hashes = prefs_a.hash_contacts(many.iter().map(String::as_str));
        let unique: std::collections::BTreeSet<u64> = hashes.iter().copied().collect();
        assert_eq!(unique.len(), 1_000);
    }

    #[test]
    fn publication_gateway_enforces_floor_on_task_data() {
        use crate::hive::TaskId;
        use crate::honeycomb::Honeycomb;
        use mobility::gen::{CityModel, PopulationConfig};

        // Collect a synthetic population's fixes into a honeycomb task.
        let data =
            CityModel::builder()
                .seed(41)
                .build()
                .generate_population(&PopulationConfig {
                    users: 4,
                    days: 3,
                    sampling_interval_s: 180,
                    gps_noise_m: 5.0,
                    leisure_probability: 0.4,
                });
        let task = TaskId(7);
        let mut honeycomb = Honeycomb::new("gateway-test");
        let sensed: Vec<SensedRecord> = data
            .iter_records()
            .map(|r| {
                let mut payload = BTreeMap::new();
                payload.insert("lat".to_string(), Value::Num(r.point.latitude()));
                payload.insert("lon".to_string(), Value::Num(r.point.longitude()));
                SensedRecord {
                    task,
                    user: r.user,
                    device: crate::device::DeviceId(r.user.0),
                    time: r.time,
                    payload: Value::Map(payload),
                }
            })
            .collect();
        honeycomb.receive(sensed);

        let gateway = PublicationGateway::default();
        let published = gateway.publish_task(&honeycomb, task).unwrap();
        let floor = gateway.privapi().config().privacy_floor;
        assert!(
            published.privacy.recall <= floor + 1e-9,
            "gateway release leaks {} above floor {floor}",
            published.privacy.recall
        );
        assert_eq!(published.dataset.user_count(), data.user_count());
        assert!(published.selection.winner().is_some());
        // The platform-side publish path attacks the original exactly once:
        // one extraction for the reference plus one per pooled candidate.
        assert_eq!(
            gateway.privapi().attack().extractions(),
            gateway.privapi().pool().len() + 1,
            "gateway publish must extract the original dataset exactly once"
        );
    }

    #[test]
    fn publication_gateway_streams_windows_incrementally() {
        use mobility::gen::{CityModel, PopulationConfig};
        use mobility::WindowedDataset;

        let data =
            CityModel::builder()
                .seed(53)
                .build()
                .generate_population(&PopulationConfig {
                    users: 3,
                    days: 2,
                    sampling_interval_s: 240,
                    gps_noise_m: 5.0,
                    leisure_probability: 0.4,
                });
        let windows = WindowedDataset::partition(&data);
        assert!(windows.len() >= 2);

        let mut gateway = PublicationGateway::default();
        let floor = gateway.privapi().config().privacy_floor;
        let pool = gateway.privapi().pool().len();
        let probe = gateway.privapi().attack().clone();
        for (i, window) in windows.iter().enumerate() {
            let before = probe.extractions();
            let release = gateway.publish_window(window).unwrap();
            assert!(
                release.published.privacy.recall <= floor + 1e-9,
                "window {i} leaks above the floor"
            );
            // The streaming path pays no full extraction at all: the
            // original side goes through the session cache's delta path
            // and every default-pool candidate's self-attack goes through
            // its per-strategy shard cache.
            assert_eq!(probe.extractions() - before, 0, "window {i}");
            assert_eq!(release.strategies.candidates, pool, "window {i}");
            assert_eq!(release.strategies.full_fallbacks, 0, "window {i}");
            // Parity with a batch release of everything collected so far.
            let batch = gateway.publish_dataset(&windows.prefix(i)).unwrap();
            assert_eq!(release.published.selection, batch.selection, "window {i}");
            assert_eq!(release.published.dataset, batch.dataset, "window {i}");
        }
        assert_eq!(gateway.session().windows_ingested(), windows.len());
        // Later windows reuse protected-side work for inactive users (the
        // generator's dense data keeps everyone active, so reuse shows up
        // as shard reuse only when the protected boxes hold still; the
        // audit counters are at least well-formed end to end).
        let last = gateway.session().strategies().last_window();
        assert_eq!(last.candidates, pool);
        assert_eq!(
            last.users_refreshed + last.users_reused,
            pool * data.user_count()
        );
    }

    #[test]
    fn publication_gateway_rejects_replayed_windows_with_typed_error() {
        use mobility::gen::{CityModel, PopulationConfig};
        use mobility::WindowedDataset;

        let data =
            CityModel::builder()
                .seed(71)
                .build()
                .generate_population(&PopulationConfig {
                    users: 3,
                    days: 2,
                    sampling_interval_s: 300,
                    gps_noise_m: 5.0,
                    leisure_probability: 0.3,
                });
        let windows = WindowedDataset::partition(&data);
        let mut gateway = PublicationGateway::default();
        gateway.publish_window(&windows.windows()[1]).unwrap();
        // A replayed or out-of-order window surfaces as the typed
        // `StreamError` at the platform layer too — carrying the
        // offending day, so an operator retry loop can branch on it
        // without string matching.
        for stale in [&windows.windows()[1], &windows.windows()[0]] {
            let err = gateway.publish_window(stale).unwrap_err();
            assert!(
                matches!(
                    err,
                    privapi::PrivapiError::StreamError { day, last_day }
                        if day == stale.day() && last_day == windows.windows()[1].day()
                ),
                "got {err}"
            );
        }
        assert_eq!(gateway.session().windows_ingested(), 1);
    }

    #[test]
    fn publication_gateway_rejects_empty_task() {
        use crate::hive::TaskId;
        use crate::honeycomb::Honeycomb;

        let honeycomb = Honeycomb::new("empty");
        let gateway = PublicationGateway::default();
        assert!(matches!(
            gateway.publish_task(&honeycomb, TaskId(1)),
            Err(privapi::PrivapiError::EmptyDataset)
        ));
    }

    #[test]
    fn sensor_opt_out() {
        let prefs = PrivacyPreferences::default()
            .without_sensor(SensorKind::Gps)
            .without_sensor(SensorKind::Accelerometer);
        assert!(!prefs.sensor_enabled(SensorKind::Gps));
        assert!(!prefs.sensor_enabled(SensorKind::Accelerometer));
        assert!(prefs.sensor_enabled(SensorKind::Battery));
    }
}
