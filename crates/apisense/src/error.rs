//! Error type for the APISENSE middleware.

use std::error::Error;
use std::fmt;

/// Errors produced by the APISENSE platform.
#[derive(Debug, Clone, PartialEq)]
pub enum ApisenseError {
    /// A script failed to tokenize (message, line).
    Lex {
        /// Problem description.
        message: String,
        /// 1-based source line.
        line: usize,
    },
    /// A script failed to parse (message, line).
    Parse {
        /// Problem description.
        message: String,
        /// 1-based source line.
        line: usize,
    },
    /// A script failed at runtime.
    Runtime(String),
    /// The bytecode compiler hit a capacity limit while lowering a program
    /// (which interned table overflowed, how many entries were requested,
    /// and the table's limit).
    ScriptCompile {
        /// The table that overflowed (`"interned names"`, `"frame locals"`, …).
        table: &'static str,
        /// Entries the program needed.
        count: usize,
        /// The compiler's limit for that table.
        limit: usize,
    },
    /// The bytecode VM detected an internal inconsistency (malformed op
    /// stream, stack underflow). Never produced by programs lowered through
    /// [`crate::script::Script::compile`]; carries the offending op and pc.
    ScriptVmFault {
        /// Mnemonic of the offending op.
        op: &'static str,
        /// Program counter of the offending op.
        pc: usize,
        /// What went wrong.
        message: &'static str,
    },
    /// A script exceeded its execution budget (possible infinite loop).
    FuelExhausted,
    /// A task referenced an unknown sensor.
    UnknownSensor(String),
    /// A registry lookup failed.
    NotFound(&'static str, u64),
    /// A parameter was invalid (name, offending value).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value rendered as text.
        value: String,
    },
}

impl fmt::Display for ApisenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApisenseError::Lex { message, line } => {
                write!(f, "lex error at line {line}: {message}")
            }
            ApisenseError::Parse { message, line } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ApisenseError::Runtime(m) => write!(f, "script runtime error: {m}"),
            ApisenseError::ScriptCompile {
                table,
                count,
                limit,
            } => {
                write!(
                    f,
                    "script compile error: {table} needs {count} entries (limit {limit})"
                )
            }
            ApisenseError::ScriptVmFault { op, pc, message } => {
                write!(f, "script vm fault at pc {pc} ({op}): {message}")
            }
            ApisenseError::FuelExhausted => {
                write!(f, "script exceeded its execution budget")
            }
            ApisenseError::UnknownSensor(s) => write!(f, "unknown sensor: {s}"),
            ApisenseError::NotFound(kind, id) => write!(f, "{kind} {id} not found"),
            ApisenseError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name}: {value}")
            }
        }
    }
}

impl Error for ApisenseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ApisenseError::Parse {
            message: "unexpected token".into(),
            line: 3,
        };
        assert_eq!(e.to_string(), "parse error at line 3: unexpected token");
        assert_eq!(
            ApisenseError::NotFound("task", 9).to_string(),
            "task 9 not found"
        );
    }

    #[test]
    fn script_engine_errors_carry_their_context() {
        let compile = ApisenseError::ScriptCompile {
            table: "frame locals",
            count: 4097,
            limit: 4096,
        };
        assert_eq!(
            compile.to_string(),
            "script compile error: frame locals needs 4097 entries (limit 4096)"
        );
        let fault = ApisenseError::ScriptVmFault {
            op: "Const",
            pc: 12,
            message: "constant index out of range",
        };
        assert_eq!(
            fault.to_string(),
            "script vm fault at pc 12 (Const): constant index out of range"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ApisenseError>();
    }
}
