//! Error type for the APISENSE middleware.

use std::error::Error;
use std::fmt;

/// Errors produced by the APISENSE platform.
#[derive(Debug, Clone, PartialEq)]
pub enum ApisenseError {
    /// A script failed to tokenize (message, line).
    Lex {
        /// Problem description.
        message: String,
        /// 1-based source line.
        line: usize,
    },
    /// A script failed to parse (message, line).
    Parse {
        /// Problem description.
        message: String,
        /// 1-based source line.
        line: usize,
    },
    /// A script failed at runtime.
    Runtime(String),
    /// A script exceeded its execution budget (possible infinite loop).
    FuelExhausted,
    /// A task referenced an unknown sensor.
    UnknownSensor(String),
    /// A registry lookup failed.
    NotFound(&'static str, u64),
    /// A parameter was invalid (name, offending value).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value rendered as text.
        value: String,
    },
}

impl fmt::Display for ApisenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApisenseError::Lex { message, line } => {
                write!(f, "lex error at line {line}: {message}")
            }
            ApisenseError::Parse { message, line } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ApisenseError::Runtime(m) => write!(f, "script runtime error: {m}"),
            ApisenseError::FuelExhausted => {
                write!(f, "script exceeded its execution budget")
            }
            ApisenseError::UnknownSensor(s) => write!(f, "unknown sensor: {s}"),
            ApisenseError::NotFound(kind, id) => write!(f, "{kind} {id} not found"),
            ApisenseError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name}: {value}")
            }
        }
    }
}

impl Error for ApisenseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ApisenseError::Parse {
            message: "unexpected token".into(),
            line: 3,
        };
        assert_eq!(e.to_string(), "parse error at line 3: unexpected token");
        assert_eq!(
            ApisenseError::NotFound("task", 9).to_string(),
            "task 9 not found"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ApisenseError>();
    }
}
