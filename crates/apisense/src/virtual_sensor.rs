//! Virtual sensors: orchestrating groups of devices (experiment E7).
//!
//! "The APISENSE platform also implements the concept of virtual sensors as
//! a mean to abstract the individual devices and therefore offer a set of
//! additional services that self-organize a group of mobile devices to
//! orchestrate the retrieval of datasets according to different strategies
//! (e.g., round robin, energy-aware)." (paper, §2)

use crate::device::{Device, SensedRecord, SensorKind};
use crate::hive::TaskId;
use crate::script::{Script, Value, Vm};
use geo::{GeoPoint, Meters};
use mobility::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// How a virtual sensor picks the devices answering each query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Rotate through members in order.
    RoundRobin,
    /// Pick the members with the highest battery ("energy-aware").
    EnergyAware,
    /// Maximize spatial dispersion of the answering devices.
    CoverageAware,
    /// Every member answers every query (upper bound on freshness, worst
    /// case on energy).
    Broadcast,
}

impl fmt::Display for SelectionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionStrategy::RoundRobin => write!(f, "round-robin"),
            SelectionStrategy::EnergyAware => write!(f, "energy-aware"),
            SelectionStrategy::CoverageAware => write!(f, "coverage-aware"),
            SelectionStrategy::Broadcast => write!(f, "broadcast"),
        }
    }
}

/// One reading returned by a virtual-sensor query.
#[derive(Debug, Clone, PartialEq)]
pub struct Reading {
    /// Index of the answering device in the member slice.
    pub member: usize,
    /// The produced record.
    pub record: SensedRecord,
}

/// A virtual sensor over a group of member devices.
///
/// The group is borrowed per query so the same fleet can back several
/// virtual sensors.
#[derive(Debug)]
pub struct VirtualSensor {
    strategy: SelectionStrategy,
    per_query: usize,
    cursor: usize,
    queries: u64,
    /// Bytecode VM reused across scripted queries, keyed by the task it was
    /// last used for so a task switch starts from a clean executor.
    script_vm: Option<(TaskId, Vm)>,
}

impl VirtualSensor {
    /// Creates a virtual sensor answering each query with `per_query`
    /// member devices (ignored by [`SelectionStrategy::Broadcast`]).
    pub fn new(strategy: SelectionStrategy, per_query: usize) -> Self {
        Self {
            strategy,
            per_query: per_query.max(1),
            cursor: 0,
            queries: 0,
            script_vm: None,
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> SelectionStrategy {
        self.strategy
    }

    /// Queries issued so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Selects the members answering the next query.
    ///
    /// Devices with depleted batteries are never selected.
    pub fn select(&mut self, members: &[Device], now: Timestamp) -> Vec<usize> {
        let alive: Vec<usize> = members
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.battery().is_depleted())
            .map(|(i, _)| i)
            .collect();
        if alive.is_empty() {
            return Vec::new();
        }
        let k = self.per_query.min(alive.len());
        match self.strategy {
            SelectionStrategy::Broadcast => alive,
            SelectionStrategy::RoundRobin => {
                let mut out = Vec::with_capacity(k);
                for j in 0..k {
                    out.push(alive[(self.cursor + j) % alive.len()]);
                }
                self.cursor = (self.cursor + k) % alive.len().max(1);
                out
            }
            SelectionStrategy::EnergyAware => {
                let mut by_battery = alive;
                by_battery.sort_by(|&a, &b| {
                    members[b]
                        .battery()
                        .level()
                        .partial_cmp(&members[a].battery().level())
                        .expect("battery levels are finite")
                        .then(a.cmp(&b))
                });
                by_battery.truncate(k);
                by_battery
            }
            SelectionStrategy::CoverageAware => {
                // Greedy max-min dispersion over current positions.
                let positions: BTreeMap<usize, GeoPoint> = alive
                    .iter()
                    .filter_map(|&i| members[i].position_at(now).map(|p| (i, p)))
                    .collect();
                if positions.is_empty() {
                    return alive.into_iter().take(k).collect();
                }
                let mut chosen: Vec<usize> = Vec::with_capacity(k);
                // Seed with the highest-battery located device.
                let first = *positions
                    .keys()
                    .max_by(|&&a, &&b| {
                        members[a]
                            .battery()
                            .level()
                            .partial_cmp(&members[b].battery().level())
                            .expect("battery levels are finite")
                    })
                    .expect("positions non-empty");
                chosen.push(first);
                while chosen.len() < k && chosen.len() < positions.len() {
                    let next = positions
                        .iter()
                        .filter(|(i, _)| !chosen.contains(i))
                        .max_by(|(_, pa), (_, pb)| {
                            let da = min_distance(pa, &chosen, &positions);
                            let db = min_distance(pb, &chosen, &positions);
                            da.partial_cmp(&db).expect("finite distances")
                        })
                        .map(|(i, _)| *i);
                    match next {
                        Some(i) => chosen.push(i),
                        None => break,
                    }
                }
                chosen
            }
        }
    }

    /// Issues a query at `now`: selected devices take a GPS sample (paying
    /// its battery cost) and return a reading.
    pub fn query(
        &mut self,
        members: &mut [Device],
        task: TaskId,
        now: Timestamp,
    ) -> Vec<Reading> {
        self.queries += 1;
        let selected = self.select(members, now);
        let mut readings = Vec::with_capacity(selected.len());
        for idx in selected {
            let device = &mut members[idx];
            let Some(position) = device.position_at(now) else {
                continue;
            };
            device.battery_mut().drain(
                SensorKind::Gps.sample_cost() + SensorKind::NetworkQuality.sample_cost(),
            );
            let mut payload = BTreeMap::new();
            payload.insert("lat".to_string(), Value::Num(position.latitude()));
            payload.insert("lon".to_string(), Value::Num(position.longitude()));
            readings.push(Reading {
                member: idx,
                record: SensedRecord {
                    task,
                    user: device.user(),
                    device: device.id(),
                    time: now,
                    payload: Value::Map(payload),
                },
            });
        }
        readings
    }

    /// Issues a scripted query at `now`: selected devices each run `script`
    /// once through the bytecode VM and return the surviving records as
    /// readings.
    ///
    /// The compiled program is shared by every selected device and the
    /// sensor's cached VM is reused across queries, so steady-state cost is
    /// pure execution — no re-parsing, re-compilation or executor setup.
    pub fn query_scripted(
        &mut self,
        members: &mut [Device],
        task: TaskId,
        script: &Script,
        now: Timestamp,
    ) -> Vec<Reading> {
        self.queries += 1;
        let selected = self.select(members, now);
        let needs_reset = !matches!(&self.script_vm, Some((t, _)) if *t == task);
        if needs_reset {
            self.script_vm = Some((task, Vm::new()));
        }
        let (_, vm) = self.script_vm.as_mut().expect("vm cached above");
        let mut readings = Vec::with_capacity(selected.len());
        for idx in selected {
            let device = &mut members[idx];
            for record in device.sample_scripted(task, script, vm, now) {
                readings.push(Reading {
                    member: idx,
                    record,
                });
            }
        }
        readings
    }
}

fn min_distance(p: &GeoPoint, chosen: &[usize], positions: &BTreeMap<usize, GeoPoint>) -> f64 {
    chosen
        .iter()
        .filter_map(|i| positions.get(i))
        .map(|q| p.haversine_distance(q).get())
        .fold(f64::INFINITY, f64::min)
}

/// Spatial coverage of a set of readings: mean distance from each reading to
/// its nearest other reading (higher = better dispersion).
pub fn dispersion(readings: &[Reading]) -> Meters {
    let points: Vec<GeoPoint> = readings
        .iter()
        .filter_map(|r| r.record.location())
        .collect();
    if points.len() < 2 {
        return Meters::new(0.0);
    }
    let total: f64 = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            points
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, q)| p.haversine_distance(q).get())
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    Meters::new(total / points.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Battery, DeviceId};
    use mobility::{LocationRecord, Trajectory, UserId};

    /// A fleet of stationary devices on a line, with descending batteries.
    fn fleet(n: u64) -> Vec<Device> {
        (0..n)
            .map(|i| {
                let point = GeoPoint::new(45.75, 4.80 + 0.01 * i as f64).unwrap();
                let records = vec![
                    LocationRecord::new(UserId(i), Timestamp::new(0), point),
                    LocationRecord::new(UserId(i), Timestamp::new(86_400), point),
                ];
                Device::new(DeviceId(i), UserId(i), Trajectory::new(UserId(i), records))
                    .with_battery(Battery::at_level(1.0 - i as f64 * 0.1))
            })
            .collect()
    }

    #[test]
    fn round_robin_rotates() {
        let members = fleet(4);
        let mut vs = VirtualSensor::new(SelectionStrategy::RoundRobin, 1);
        let picks: Vec<Vec<usize>> = (0..5)
            .map(|_| vs.select(&members, Timestamp::new(0)))
            .collect();
        assert_eq!(picks, vec![vec![0], vec![1], vec![2], vec![3], vec![0]]);
    }

    #[test]
    fn energy_aware_picks_fullest() {
        let members = fleet(5); // batteries 1.0, 0.9, 0.8, 0.7, 0.6
        let mut vs = VirtualSensor::new(SelectionStrategy::EnergyAware, 2);
        let picks = vs.select(&members, Timestamp::new(0));
        assert_eq!(picks, vec![0, 1]);
    }

    #[test]
    fn depleted_devices_never_selected() {
        let mut members = fleet(3);
        members[0].battery_mut().drain(5.0);
        let mut vs = VirtualSensor::new(SelectionStrategy::Broadcast, 1);
        let picks = vs.select(&members, Timestamp::new(0));
        assert_eq!(picks, vec![1, 2]);
        // Entirely dead fleet: empty selection.
        for d in members.iter_mut() {
            d.battery_mut().drain(5.0);
        }
        assert!(vs.select(&members, Timestamp::new(0)).is_empty());
    }

    #[test]
    fn coverage_aware_disperses() {
        // Devices 0..6 on a line; coverage-aware with k=3 should include
        // (near-)extremes rather than three adjacent devices.
        let members = fleet(6);
        let mut vs = VirtualSensor::new(SelectionStrategy::CoverageAware, 3);
        let picks = vs.select(&members, Timestamp::new(0));
        assert_eq!(picks.len(), 3);
        let min = *picks.iter().min().unwrap();
        let max = *picks.iter().max().unwrap();
        assert!(max - min >= 4, "picks {picks:?} not dispersed");
    }

    #[test]
    fn query_returns_readings_and_drains() {
        let mut members = fleet(3);
        let before: Vec<f64> = members.iter().map(|d| d.battery().level()).collect();
        let mut vs = VirtualSensor::new(SelectionStrategy::Broadcast, 1);
        let readings = vs.query(&mut members, TaskId(1), Timestamp::new(100));
        assert_eq!(readings.len(), 3);
        assert_eq!(vs.queries(), 1);
        for (i, r) in readings.iter().enumerate() {
            assert_eq!(r.member, i);
            assert!(r.record.location().is_some());
        }
        for (d, b) in members.iter().zip(before) {
            assert!(d.battery().level() < b, "query must cost battery");
        }
    }

    #[test]
    fn round_robin_spreads_load_evenly() {
        let mut members = fleet(4);
        // Equalize batteries.
        for d in members.iter_mut() {
            *d.battery_mut() = Battery::at_level(0.5);
        }
        let mut vs = VirtualSensor::new(SelectionStrategy::RoundRobin, 1);
        for q in 0..40 {
            vs.query(&mut members, TaskId(1), Timestamp::new(q * 60));
        }
        let levels: Vec<f64> = members.iter().map(|d| d.battery().level()).collect();
        let spread = levels.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - levels.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 1e-9, "round-robin must balance drain: {levels:?}");
    }

    #[test]
    fn dispersion_metric() {
        let mut members = fleet(4);
        let mut vs = VirtualSensor::new(SelectionStrategy::Broadcast, 1);
        let readings = vs.query(&mut members, TaskId(1), Timestamp::new(0));
        let d = dispersion(&readings);
        // Neighbouring devices are ~780 m apart on the 0.01-degree line.
        assert!(d.get() > 500.0 && d.get() < 1_500.0, "dispersion {d}");
        assert_eq!(dispersion(&[]).get(), 0.0);
    }

    const SENSE_SRC: &str = r#"
        let g = sensor.gps();
        let b = sensor.battery();
        emit({"lat": g.lat, "lon": g.lon, "battery": b});
    "#;

    #[test]
    fn scripted_query_matches_the_interpreter_baseline() {
        let mut vm_fleet = fleet(4);
        let mut interp_fleet = fleet(4);
        let script = Script::compile(SENSE_SRC).expect("script compiles");
        let mut vs = VirtualSensor::new(SelectionStrategy::Broadcast, 1);
        let before: Vec<f64> = vm_fleet.iter().map(|d| d.battery().level()).collect();
        let now = Timestamp::new(50);
        let readings = vs.query_scripted(&mut vm_fleet, TaskId(7), &script, now);
        assert_eq!(readings.len(), 4);
        assert_eq!(vs.queries(), 1);
        let mut baseline = Vec::new();
        for (i, device) in interp_fleet.iter_mut().enumerate() {
            for record in device.sample_interpreted(TaskId(7), &script, now) {
                baseline.push(Reading { member: i, record });
            }
        }
        assert_eq!(readings, baseline);
        for (device, level) in vm_fleet.iter().zip(before) {
            assert!(
                device.battery().level() < level,
                "scripted query must cost battery"
            );
        }
    }

    #[test]
    fn scripted_query_caches_the_vm_per_task() {
        let mut members = fleet(3);
        let script = Script::compile(SENSE_SRC).expect("script compiles");
        let mut vs = VirtualSensor::new(SelectionStrategy::RoundRobin, 1);
        assert!(vs.script_vm.is_none());
        vs.query_scripted(&mut members, TaskId(1), &script, Timestamp::new(0));
        assert!(matches!(&vs.script_vm, Some((TaskId(1), _))));
        vs.query_scripted(&mut members, TaskId(1), &script, Timestamp::new(60));
        assert!(matches!(&vs.script_vm, Some((TaskId(1), _))));
        vs.query_scripted(&mut members, TaskId(2), &script, Timestamp::new(120));
        assert!(matches!(&vs.script_vm, Some((TaskId(2), _))));
    }

    #[test]
    fn strategy_display() {
        assert_eq!(SelectionStrategy::RoundRobin.to_string(), "round-robin");
        assert_eq!(SelectionStrategy::EnergyAware.to_string(), "energy-aware");
        assert_eq!(
            SelectionStrategy::CoverageAware.to_string(),
            "coverage-aware"
        );
        assert_eq!(SelectionStrategy::Broadcast.to_string(), "broadcast");
    }
}
