//! Fault-injected fleet runs: a device population uploading through
//! [`crate::collect`] over the [`simnet`] discrete-event simulator.
//!
//! This is the harness behind the chaos tests and experiment E13: generate a
//! synthetic population, give every user a device actor that stages day
//! batches into a reliable outbox, wire all devices to one Hive actor over
//! fault-injected links ([`simnet::FaultPlan`]), then advance the clock day
//! by day, closing each day window after a grace period.
//!
//! Time mapping: **1 simulated millisecond = 1 dataset second**, so one
//! mobility day (86 400 s) is 86 400 sim-ms and link latencies (a few sim-ms)
//! are a few seconds of dataset time — generous but realistic for periodic
//! mobile uploads.
//!
//! The fault-free run of the same seed is the *oracle*: its published
//! windows are exactly [`mobility::WindowedDataset::partition`] of the
//! generated population, and the chaos invariant says any faulted run in
//! which all data eventually arrives must publish byte-identical windows
//! (see [`crate::collect::window_fingerprint`]).

use crate::collect::{Collector, DeviceOutbox};
use mobility::gen::{CityModel, PopulationConfig};
use mobility::{DatasetWindow, WindowedDataset, DAY_SECONDS};
use privapi::streaming::IngestDelta;
use simnet::reliable::{AckFrame, DataFrame, ReliableConfig};
use simnet::{
    Actor, Context, FaultPlan, LinkModel, Message, NetworkStats, NodeId, SimTime, Simulation,
};

/// Timer id for a device's periodic upload tick.
const TICK_UPLOAD: u64 = 1;
/// Timer id for a pending retransmission deadline.
const TICK_RETRY: u64 = 2;

/// Configuration of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Seed for the population generator, the simulator and (indirectly)
    /// the fault plan.
    pub seed: u64,
    /// Fleet size: one device per generated user.
    pub users: usize,
    /// Days of sensing to generate, upload and publish.
    pub days: i64,
    /// Sensing interval of the generated trajectories, in seconds.
    pub sampling_interval_s: i64,
    /// How often devices stage + transmit, in dataset seconds (= sim ms).
    pub upload_every_s: u64,
    /// Slack after each day boundary before the Hive closes the window, in
    /// dataset seconds. Data later than this is quarantined.
    pub grace_s: u64,
    /// The link model between every device and the Hive.
    pub link: LinkModel,
    /// The injected fault schedule ([`FaultPlan::none`] for the oracle run).
    pub faults: FaultPlan,
    /// Transport tuning for every device's reliable sender.
    pub reliable: ReliableConfig,
}

impl FleetConfig {
    /// A small, fast fleet: used by unit tests and the smoke benches.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            users: 6,
            days: 2,
            sampling_interval_s: 900,
            upload_every_s: 1_800,
            grace_s: 14_400,
            link: LinkModel::mobile(),
            faults: FaultPlan::none(),
            reliable: ReliableConfig::default(),
        }
    }
}

/// Everything a fleet run produced, for assertions and reporting.
#[derive(Debug)]
pub struct FleetOutcome {
    /// One closed window per day `0..days` (possibly empty datasets), plus
    /// a trailing drain window when stragglers were still in flight after
    /// the last scheduled close.
    pub windows: Vec<DatasetWindow>,
    /// The per-window ingestion audit, parallel to `windows`.
    pub deltas: Vec<IngestDelta>,
    /// Network counters: traffic, injected faults, transport retries.
    pub stats: NetworkStats,
    /// Per-chunk delivery latency samples (enqueue→ack), in sim-ms.
    pub ack_latencies_ms: Vec<u64>,
    /// The fault-free oracle: the generated population partitioned by day.
    pub baseline: WindowedDataset,
    /// Total records generated (and therefore eventually uploadable).
    pub generated_records: u64,
}

impl FleetOutcome {
    /// Windows actually carrying data (the baseline never has empty days in
    /// dense generated populations, so these are what it compares against).
    pub fn nonempty_windows(&self) -> impl Iterator<Item = &DatasetWindow> {
        self.windows.iter().filter(|w| w.record_count() > 0)
    }

    /// Total records published across all windows.
    pub fn published_records(&self) -> u64 {
        self.windows.iter().map(|w| w.record_count() as u64).sum()
    }

    /// Whether every window was assembled without degradation.
    pub fn is_clean(&self) -> bool {
        self.deltas.iter().all(IngestDelta::is_clean)
    }
}

/// A simulated smartphone: stages day batches on a timer, pumps the
/// reliable sender, applies acks, and survives crash/restart by requeueing
/// its volatile in-flight window.
struct DeviceActor {
    hive: NodeId,
    outbox: DeviceOutbox,
    upload_every_ms: u64,
    /// Last day of the schedule: ticking stops once drained past it.
    last_day: i64,
    ack_latencies_ms: Vec<u64>,
}

impl DeviceActor {
    fn pump(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now().as_millis();
        for tx in self.outbox.sender_mut().poll(now) {
            if tx.retransmit {
                ctx.note_retry();
            }
            ctx.send(self.hive, tx.frame.to_message());
        }
        if let Some(due) = self.outbox.sender().next_due() {
            ctx.set_timer(due.saturating_sub(now).max(1), TICK_RETRY);
        }
    }
}

impl Actor for DeviceActor {
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, msg: Message) {
        if let Ok(ack) = AckFrame::from_message(&msg) {
            let now = ctx.now().as_millis();
            self.ack_latencies_ms
                .extend(self.outbox.sender_mut().on_ack(&ack, now));
            self.pump(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer_id: u64) {
        match timer_id {
            TICK_UPLOAD => {
                let now_s = ctx.now().as_millis() as i64;
                self.outbox.stage(now_s);
                self.pump(ctx);
                if !self.outbox.drained(self.last_day) {
                    ctx.set_timer(self.upload_every_ms, TICK_UPLOAD);
                }
            }
            _ => self.pump(ctx),
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        // Volatile transport state is gone; the staged outbox and cursor
        // are flash-durable. Requeue and resume ticking immediately.
        self.outbox.sender_mut().crash();
        ctx.set_timer(1, TICK_UPLOAD);
    }
}

/// The Hive's ingestion front: one [`Collector`] absorbing every device's
/// frames and answering acks.
struct HiveActor {
    collector: Collector,
}

impl Actor for HiveActor {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Message) {
        if let Ok(frame) = DataFrame::from_message(&msg) {
            if let Ok(ack) = self.collector.ingest(&frame) {
                ctx.send(from, ack.to_message());
            }
        }
    }
}

/// Runs one fleet end to end and returns every published window with its
/// audit trail, the network counters and the fault-free oracle.
///
/// Determinism: the same `config` (seed, faults and all) always produces
/// the same outcome, byte for byte — the chaos proptests rely on it.
///
/// # Panics
///
/// Panics if the simulated Hive violates the close-in-order protocol —
/// impossible by construction (days are closed by a monotone loop).
pub fn run_fleet(config: &FleetConfig) -> FleetOutcome {
    let mut fleet_span = obs::span("fleet.run");
    fleet_span.set_attr("devices", config.users);
    fleet_span.set_attr("days", config.days as u64);
    let population = CityModel::builder()
        .seed(config.seed)
        .build()
        .generate_population(&PopulationConfig {
            users: config.users,
            days: config.days as usize,
            sampling_interval_s: config.sampling_interval_s,
            ..PopulationConfig::default()
        });
    let baseline = WindowedDataset::partition(&population);
    let generated_records = population.record_count() as u64;

    let mut sim = Simulation::new(config.seed);
    sim.set_default_link(config.link);

    // One device per user: the generator emits one trajectory per
    // (user, day), so collect each user's full schedule first.
    let users = population.users();
    let mut collector = Collector::new();
    for &user in &users {
        collector.register(user.0, user);
    }
    let hive = sim.add_node("hive", Box::new(HiveActor { collector }));

    let mut device_nodes = Vec::with_capacity(users.len());
    for &user in &users {
        let outbox =
            DeviceOutbox::new(user.0, user, config.reliable, population.records_of(user));
        let node = sim.add_node(
            &format!("device-{}", user.0),
            Box::new(DeviceActor {
                hive,
                outbox,
                upload_every_ms: config.upload_every_s,
                last_day: config.days - 1,
                ack_latencies_ms: Vec::new(),
            }),
        );
        device_nodes.push(node);
    }
    sim.set_fault_plan(config.faults.clone());
    for (i, &node) in device_nodes.iter().enumerate() {
        // Stagger first ticks so the fleet does not thunder in lockstep.
        sim.post_timer(node, 1 + (i as u64 % 97), TICK_UPLOAD);
    }

    let mut windows = Vec::new();
    let mut deltas = Vec::new();
    for day in 0..config.days {
        let close_at = (day + 1) as u64 * DAY_SECONDS as u64 + config.grace_s;
        sim.run_until(SimTime::from_millis(close_at));
        let hive_actor = sim.actor_as_mut::<HiveActor>(hive).expect("hive actor");
        let (window, delta) = hive_actor
            .collector
            .close_day(day)
            .expect("days close in order");
        windows.push(window);
        deltas.push(delta);
    }
    // Drain whatever the faults delayed past the last scheduled close; if
    // stragglers remain, publish them in one trailing quarantine window.
    sim.run();
    let hive_actor = sim.actor_as_mut::<HiveActor>(hive).expect("hive actor");
    if hive_actor.collector.has_backlog() {
        let (window, delta) = hive_actor
            .collector
            .close_day(config.days)
            .expect("trailing close follows the last day");
        windows.push(window);
        deltas.push(delta);
    }

    let mut ack_latencies_ms = Vec::new();
    for &node in &device_nodes {
        let device = sim.actor_as::<DeviceActor>(node).expect("device actor");
        ack_latencies_ms.extend_from_slice(&device.ack_latencies_ms);
    }
    FleetOutcome {
        windows,
        deltas,
        stats: sim.stats(),
        ack_latencies_ms,
        baseline,
        generated_records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::window_fingerprint;

    #[test]
    fn fault_free_fleet_reproduces_the_partition_oracle() {
        let outcome = run_fleet(&FleetConfig::small(11));
        assert!(outcome.is_clean(), "no faults → clean deltas");
        assert_eq!(outcome.published_records(), outcome.generated_records);
        let published: Vec<_> = outcome.nonempty_windows().collect();
        assert_eq!(published.len(), outcome.baseline.len());
        for (got, want) in published.iter().zip(&outcome.baseline) {
            assert_eq!(window_fingerprint(got), window_fingerprint(want));
        }
        assert!(outcome.stats.retries == 0 || outcome.stats.delivered > 0);
        assert!(!outcome.ack_latencies_ms.is_empty());
    }

    #[test]
    fn chaotic_fleet_still_reproduces_the_oracle_when_data_arrives() {
        // Moderate chaos without partitions or crashes near day ends: all
        // data arrives before each grace deadline, so windows match the
        // oracle byte for byte even though the transport had to sweat.
        let mut config = FleetConfig::small(12);
        config.faults = FaultPlan::chaos(12);
        let outcome = run_fleet(&config);
        assert!(outcome.is_clean(), "deltas: {:?}", outcome.deltas);
        let published: Vec<_> = outcome.nonempty_windows().collect();
        assert_eq!(published.len(), outcome.baseline.len());
        for (got, want) in published.iter().zip(&outcome.baseline) {
            assert_eq!(window_fingerprint(got), window_fingerprint(want));
        }
        let stats = outcome.stats;
        assert!(
            stats.dropped_by_fault + stats.duplicated + stats.reordered > 0,
            "chaos must actually injure the network: {stats}"
        );
    }

    #[test]
    fn partition_over_a_day_end_quarantines_stragglers_exactly() {
        // Sever half the fleet across the day-0 close deadline. Their day-0
        // data misses the window and must be quarantined into day 1, with
        // the audit counters conserving every record.
        let mut config = FleetConfig::small(13);
        let day_end = DAY_SECONDS as u64;
        config.faults = FaultPlan::none().with_partition(simnet::fault::Partition {
            from_ms: day_end - 20_000,
            until_ms: day_end + config.grace_s + 10_000,
            nodes: (0..3).map(|i| NodeId(1 + i)).collect(),
        });
        let outcome = run_fleet(&config);
        assert!(!outcome.is_clean());
        let d0 = &outcome.deltas[0];
        assert!(d0.straggler_devices > 0, "{d0}");
        let quarantined_total: u64 = outcome.deltas.iter().map(|d| d.records_quarantined).sum();
        assert!(quarantined_total > 0, "stragglers must surface late");
        // Conservation: everything generated is published exactly once.
        assert_eq!(outcome.published_records(), outcome.generated_records);
        let published: u64 = outcome.deltas.iter().map(|d| d.records).sum();
        assert_eq!(published + quarantined_total, outcome.generated_records);
    }

    #[test]
    fn crashed_devices_resume_from_their_outbox() {
        let mut config = FleetConfig::small(14);
        // Crash device node 1 mid-day-0 for a long outage.
        config.faults = FaultPlan::none().with_crash(simnet::fault::Crash {
            node: NodeId(1),
            at_ms: 20_000,
            restart_ms: 45_000,
        });
        let outcome = run_fleet(&config);
        assert_eq!(outcome.published_records(), outcome.generated_records);
        assert!(outcome.stats.retries > 0, "crash forces retransmission");
    }
}
