//! Simulated smartphones: battery, sensor suite and the client runtime that
//! executes deployed task scripts.
//!
//! The substitution for real Android devices (`DESIGN.md` §2): the
//! middleware-visible surface — sensors queried by scripts, battery drain,
//! user privacy preferences, record upload queues — is faithfully modelled;
//! only the physical signal sources are synthetic (GPS fixes come from a
//! mobility trajectory, network quality from a position-seeded propagation
//! model).

use crate::error::ApisenseError;
use crate::hive::TaskId;
use crate::privacy::PrivacyPreferences;
use crate::script::{CompiledProgram, Host, Script, Value, Vm};
use geo::GeoPoint;
use mobility::{Timestamp, Trajectory, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Identifier of a device in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub u64);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "device-{}", self.0)
    }
}

/// The sensors a device can expose to crowd-sensing scripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SensorKind {
    /// Location fixes.
    Gps,
    /// Battery level.
    Battery,
    /// Acceleration magnitude.
    Accelerometer,
    /// Cellular signal quality (RSSI).
    NetworkQuality,
}

impl SensorKind {
    /// All sensor kinds.
    pub const ALL: [SensorKind; 4] = [
        SensorKind::Gps,
        SensorKind::Battery,
        SensorKind::Accelerometer,
        SensorKind::NetworkQuality,
    ];

    /// The host-API path used by scripts (`sensor.<name>`).
    pub fn script_name(&self) -> &'static str {
        match self {
            SensorKind::Gps => "gps",
            SensorKind::Battery => "battery",
            SensorKind::Accelerometer => "accelerometer",
            SensorKind::NetworkQuality => "network",
        }
    }

    /// Battery cost of one sample, as a fraction of a full charge.
    pub fn sample_cost(&self) -> f64 {
        match self {
            SensorKind::Gps => 2.0e-5,
            SensorKind::Battery => 1.0e-7,
            SensorKind::Accelerometer => 2.0e-6,
            SensorKind::NetworkQuality => 4.0e-6,
        }
    }
}

impl fmt::Display for SensorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.script_name())
    }
}

/// A simple smartphone battery model.
///
/// Levels are fractions of a full charge. Drain sources: a constant idle
/// draw plus per-sensor-sample and per-uploaded-byte costs. Devices recharge
/// overnight (22:00–06:00) when their owner is home.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    level: f64,
    /// Idle drain per hour of uptime.
    pub idle_drain_per_hour: f64,
    /// Charge rate per hour while charging.
    pub charge_per_hour: f64,
}

impl Battery {
    /// A full battery with typical smartphone parameters (~1 %/h idle,
    /// 50 %/h charging).
    pub fn full() -> Self {
        Self {
            level: 1.0,
            idle_drain_per_hour: 0.01,
            charge_per_hour: 0.5,
        }
    }

    /// Creates a battery at a specific level in `[0, 1]`.
    pub fn at_level(level: f64) -> Self {
        Self {
            level: level.clamp(0.0, 1.0),
            ..Self::full()
        }
    }

    /// Current level in `[0, 1]`.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Whether the battery is empty (device off).
    pub fn is_depleted(&self) -> bool {
        self.level <= 0.0
    }

    /// Removes `amount` of charge.
    pub fn drain(&mut self, amount: f64) {
        self.level = (self.level - amount.max(0.0)).max(0.0);
    }

    /// Adds `amount` of charge.
    pub fn charge(&mut self, amount: f64) {
        self.level = (self.level + amount.max(0.0)).min(1.0);
    }

    /// Advances time by `seconds`, draining idle power or charging.
    pub fn advance(&mut self, seconds: i64, charging: bool) {
        let hours = seconds.max(0) as f64 / 3_600.0;
        if charging {
            self.charge(self.charge_per_hour * hours);
        } else {
            self.drain(self.idle_drain_per_hour * hours);
        }
    }
}

/// A record produced by a task script on a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensedRecord {
    /// Task that produced the record.
    pub task: TaskId,
    /// The contributing participant.
    pub user: UserId,
    /// Device that produced the record.
    pub device: DeviceId,
    /// When the record was produced.
    pub time: Timestamp,
    /// The script-emitted payload.
    pub payload: Value,
}

impl SensedRecord {
    /// Extracts a location from the payload's `lat`/`lon` fields, if any.
    pub fn location(&self) -> Option<GeoPoint> {
        let m = self.payload.as_map()?;
        let lat = m.get("lat")?.as_num()?;
        let lon = m.get("lon")?.as_num()?;
        GeoPoint::new(lat, lon).ok()
    }

    /// Converts into a mobility record when the payload carries a location.
    pub fn to_location_record(&self) -> Option<mobility::LocationRecord> {
        Some(mobility::LocationRecord::new(
            self.user,
            self.time,
            self.location()?,
        ))
    }
}

/// A task deployed on a device.
///
/// The script's [`CompiledProgram`] is shared (via `Arc`) with every other
/// deployment of the same task; the [`Vm`] is this installation's private
/// executor, reused across readings so its stack, frame and inline-cache
/// allocations are paid once.
#[derive(Debug, Clone)]
struct InstalledTask {
    id: TaskId,
    script: Script,
    vm: Vm,
    sampling_interval_s: i64,
    min_battery: f64,
    next_run: Timestamp,
}

/// A simulated smartphone participating in the crowd.
#[derive(Debug)]
pub struct Device {
    id: DeviceId,
    user: UserId,
    trajectory: Trajectory,
    battery: Battery,
    prefs: PrivacyPreferences,
    sensors: BTreeSet<SensorKind>,
    installed: Vec<InstalledTask>,
    outbox: Vec<SensedRecord>,
    last_tick: Option<Timestamp>,
    records_produced: u64,
    records_suppressed: u64,
    script_fuel: u64,
}

impl Device {
    /// Creates a device for `user` whose GPS follows `trajectory`.
    pub fn new(id: DeviceId, user: UserId, trajectory: Trajectory) -> Self {
        Self {
            id,
            user,
            trajectory,
            battery: Battery::full(),
            prefs: PrivacyPreferences::default(),
            sensors: SensorKind::ALL.into_iter().collect(),
            installed: Vec::new(),
            outbox: Vec::new(),
            last_tick: None,
            records_produced: 0,
            records_suppressed: 0,
            script_fuel: 200_000,
        }
    }

    /// Replaces the privacy preferences ("the user keeps the control of her
    /// mobile phone", paper §2).
    pub fn with_preferences(mut self, prefs: PrivacyPreferences) -> Self {
        self.prefs = prefs;
        self
    }

    /// Replaces the battery.
    pub fn with_battery(mut self, battery: Battery) -> Self {
        self.battery = battery;
        self
    }

    /// Restricts the available sensors.
    pub fn with_sensors<I: IntoIterator<Item = SensorKind>>(mut self, sensors: I) -> Self {
        self.sensors = sensors.into_iter().collect();
        self
    }

    /// The device id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The owning participant.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Current battery state.
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Mutable battery access (used by virtual-sensor orchestration).
    pub fn battery_mut(&mut self) -> &mut Battery {
        &mut self.battery
    }

    /// The device's sensors.
    pub fn sensors(&self) -> &BTreeSet<SensorKind> {
        &self.sensors
    }

    /// The user's privacy preferences.
    pub fn preferences(&self) -> &PrivacyPreferences {
        &self.prefs
    }

    /// Records produced so far (before privacy suppression).
    pub fn records_produced(&self) -> u64 {
        self.records_produced
    }

    /// Records suppressed by the privacy layer.
    pub fn records_suppressed(&self) -> u64 {
        self.records_suppressed
    }

    /// Position at `time` according to the device's trajectory.
    pub fn position_at(&self, time: Timestamp) -> Option<GeoPoint> {
        self.trajectory.position_at(time)
    }

    /// Installs a task script (offloaded from the Hive).
    pub fn install(
        &mut self,
        id: TaskId,
        script: Script,
        sampling_interval_s: i64,
        min_battery: f64,
        start: Timestamp,
    ) {
        self.installed.push(InstalledTask {
            id,
            script,
            vm: Vm::new(),
            sampling_interval_s: sampling_interval_s.max(1),
            min_battery: min_battery.clamp(0.0, 1.0),
            next_run: start,
        });
    }

    /// Uninstalls a task.
    pub fn uninstall(&mut self, id: TaskId) {
        self.installed.retain(|t| t.id != id);
    }

    /// Number of installed tasks.
    pub fn installed_count(&self) -> usize {
        self.installed.len()
    }

    /// Whether the device is charging at `time` (overnight at home).
    fn is_charging(&self, time: Timestamp) -> bool {
        time.is_night()
    }

    /// Advances the device clock to `now`, running every installed task
    /// whose schedule has come due. Emitted records pass the privacy layer
    /// and are queued in the outbox.
    pub fn tick(&mut self, now: Timestamp) {
        if let Some(last) = self.last_tick {
            let dt = now - last;
            if dt > 0 {
                let charging = self.is_charging(now);
                self.battery.advance(dt, charging);
            }
        }
        self.last_tick = Some(now);
        if self.battery.is_depleted() {
            return;
        }
        let mut due: Vec<usize> = Vec::new();
        for (i, task) in self.installed.iter().enumerate() {
            if now >= task.next_run && self.battery.level() >= task.min_battery {
                due.push(i);
            }
        }
        for i in due {
            let (id, compiled, interval) = {
                let t = &self.installed[i];
                (t.id, Arc::clone(t.script.compiled()), t.sampling_interval_s)
            };
            self.installed[i].next_run = now + interval;
            // Take the task's VM so the run can borrow `self` mutably; the
            // program itself is only an `Arc` bump, never a re-compile.
            let mut vm = std::mem::take(&mut self.installed[i].vm);
            let records = self.execute_compiled(id, &compiled, &mut vm, now);
            self.installed[i].vm = vm;
            self.outbox.extend(records);
        }
    }

    /// Runs one compiled task program at `now` on the given VM, returning the
    /// records that survived the privacy filter.
    fn execute_compiled(
        &mut self,
        task: TaskId,
        compiled: &CompiledProgram,
        vm: &mut Vm,
        now: Timestamp,
    ) -> Vec<SensedRecord> {
        let mut host = self.host_at(now);
        // Script failures are logged, not fatal: one bad task must not take
        // down the client (the platform is multi-tenant).
        let _ = vm.run(compiled, &mut host, self.script_fuel);
        let (emitted, costs) = (host.emitted, host.sensor_costs);
        self.finish_run(task, emitted, costs, now)
    }

    /// Builds the script host view of this device at `now`.
    fn host_at(&self, now: Timestamp) -> DeviceHost<'_> {
        DeviceHost {
            device_sensors: &self.sensors,
            prefs: &self.prefs,
            battery_level: self.battery.level(),
            position: self.position_at(now),
            now,
            speed: self.speed_at(now),
            emitted: Vec::new(),
            sensor_costs: 0.0,
        }
    }

    /// Applies a finished run's side effects: battery drain, record wrapping
    /// and the privacy filter. Returns the surviving records.
    fn finish_run(
        &mut self,
        task: TaskId,
        emitted: Vec<Value>,
        sensor_costs: f64,
        now: Timestamp,
    ) -> Vec<SensedRecord> {
        self.battery.drain(sensor_costs);
        let mut kept = Vec::with_capacity(emitted.len());
        for value in emitted {
            self.records_produced += 1;
            let record = SensedRecord {
                task,
                user: self.user,
                device: self.id,
                time: now,
                payload: value,
            };
            match self.prefs.filter_record(record) {
                Some(filtered) => kept.push(filtered),
                None => self.records_suppressed += 1,
            }
        }
        kept
    }

    /// Executes `script` once at `now` through the bytecode VM, outside the
    /// normal tick schedule, returning the surviving records directly instead
    /// of queueing them in the outbox. The caller owns the `Vm` so repeated
    /// samples of the same task reuse its stack and inline caches.
    pub fn sample_scripted(
        &mut self,
        task: TaskId,
        script: &Script,
        vm: &mut Vm,
        now: Timestamp,
    ) -> Vec<SensedRecord> {
        let compiled = Arc::clone(script.compiled());
        self.execute_compiled(task, &compiled, vm, now)
    }

    /// Executes `script` once at `now` through the tree-walking interpreter —
    /// the differential baseline for [`Device::sample_scripted`].
    pub fn sample_interpreted(
        &mut self,
        task: TaskId,
        script: &Script,
        now: Timestamp,
    ) -> Vec<SensedRecord> {
        let mut host = self.host_at(now);
        let _ = script.run_interpreted(&mut host, self.script_fuel);
        let (emitted, costs) = (host.emitted, host.sensor_costs);
        self.finish_run(task, emitted, costs, now)
    }

    /// Approximate speed at `time` (m/s), for the accelerometer model.
    fn speed_at(&self, time: Timestamp) -> f64 {
        let a = self.trajectory.position_at(time - 30);
        let b = self.trajectory.position_at(time + 30);
        match (a, b) {
            (Some(a), Some(b)) => a.haversine_distance(&b).get() / 60.0,
            _ => 0.0,
        }
    }

    /// Drains queued records for upload.
    pub fn drain_outbox(&mut self) -> Vec<SensedRecord> {
        std::mem::take(&mut self.outbox)
    }

    /// Number of records waiting for upload.
    pub fn outbox_len(&self) -> usize {
        self.outbox.len()
    }
}

/// The script host exposing one device's sensors.
struct DeviceHost<'a> {
    device_sensors: &'a BTreeSet<SensorKind>,
    prefs: &'a PrivacyPreferences,
    battery_level: f64,
    position: Option<GeoPoint>,
    now: Timestamp,
    speed: f64,
    emitted: Vec<Value>,
    sensor_costs: f64,
}

impl DeviceHost<'_> {
    fn sensor_allowed(&self, kind: SensorKind) -> bool {
        self.device_sensors.contains(&kind) && self.prefs.sensor_enabled(kind)
    }

    /// A deterministic pseudo-random value in `[0, 1)` derived from position
    /// and time (propagation and vibration models need plausible texture,
    /// not true randomness).
    fn noise(&self, salt: u64) -> f64 {
        let mut h = salt ^ (self.now.seconds() as u64).wrapping_mul(0x9E3779B97F4A7C15);
        if let Some(p) = self.position {
            h ^= (p.latitude().to_bits()).wrapping_mul(0xD6E8FEB86659FD93);
            h ^= (p.longitude().to_bits()).rotate_left(17);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51AFD7ED558CCD);
        h ^= h >> 33;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Endpoint ids [`DeviceHost`] hands to the VM through [`Host::resolve`];
/// both dispatch paths route through [`Host::call_resolved`].
const EP_EMIT: u32 = 0;
const EP_LOG: u32 = 1;
const EP_TIME_NOW: u32 = 2;
const EP_TIME_HOUR: u32 = 3;
const EP_GPS: u32 = 4;
const EP_BATTERY: u32 = 5;
const EP_ACCELEROMETER: u32 = 6;
const EP_NETWORK: u32 = 7;

/// Maps a host path to its endpoint id.
fn endpoint_of(path: &str) -> Option<u32> {
    match path {
        "emit" => Some(EP_EMIT),
        "log" => Some(EP_LOG),
        "time.now" => Some(EP_TIME_NOW),
        "time.hour" => Some(EP_TIME_HOUR),
        "sensor.gps" => Some(EP_GPS),
        "sensor.battery" => Some(EP_BATTERY),
        "sensor.accelerometer" => Some(EP_ACCELEROMETER),
        "sensor.network" => Some(EP_NETWORK),
        _ => None,
    }
}

impl Host for DeviceHost<'_> {
    fn call(&mut self, path: &str, args: &mut [Value]) -> Result<Value, ApisenseError> {
        match endpoint_of(path) {
            Some(endpoint) => self.call_resolved(endpoint, args),
            None => Err(ApisenseError::UnknownSensor(path.to_string())),
        }
    }

    fn resolve(&mut self, path: &str) -> Option<u32> {
        endpoint_of(path)
    }

    fn call_resolved(
        &mut self,
        endpoint: u32,
        args: &mut [Value],
    ) -> Result<Value, ApisenseError> {
        match endpoint {
            EP_EMIT => {
                // The argument slice is owned by the call: take the record
                // instead of deep-cloning it.
                self.emitted.push(
                    args.first_mut()
                        .map(|v| std::mem::replace(v, Value::Null))
                        .unwrap_or(Value::Null),
                );
                Ok(Value::Null)
            }
            EP_LOG => Ok(Value::Null),
            EP_TIME_NOW => Ok(Value::Num(self.now.seconds() as f64)),
            EP_TIME_HOUR => Ok(Value::Num(self.now.hour_of_day() as f64)),
            EP_GPS => {
                if !self.sensor_allowed(SensorKind::Gps) {
                    return Ok(Value::Null);
                }
                self.sensor_costs += SensorKind::Gps.sample_cost();
                match self.position {
                    Some(p) => {
                        let mut m = std::collections::BTreeMap::new();
                        m.insert("lat".to_string(), Value::Num(p.latitude()));
                        m.insert("lon".to_string(), Value::Num(p.longitude()));
                        m.insert(
                            "accuracy".to_string(),
                            Value::Num(5.0 + 10.0 * self.noise(1)),
                        );
                        Ok(Value::Map(m))
                    }
                    None => Ok(Value::Null),
                }
            }
            EP_BATTERY => {
                if !self.sensor_allowed(SensorKind::Battery) {
                    return Ok(Value::Null);
                }
                self.sensor_costs += SensorKind::Battery.sample_cost();
                Ok(Value::Num(self.battery_level))
            }
            EP_ACCELEROMETER => {
                if !self.sensor_allowed(SensorKind::Accelerometer) {
                    return Ok(Value::Null);
                }
                self.sensor_costs += SensorKind::Accelerometer.sample_cost();
                // Vibration magnitude grows with speed; 9.81 at rest.
                let magnitude = 9.81 + self.speed * 0.3 + self.noise(2) * 0.5;
                Ok(Value::Num(magnitude))
            }
            EP_NETWORK => {
                if !self.sensor_allowed(SensorKind::NetworkQuality) {
                    return Ok(Value::Null);
                }
                self.sensor_costs += SensorKind::NetworkQuality.sample_cost();
                // Log-distance path-loss flavoured RSSI in [-110, -50] dBm,
                // spatially correlated via the position-seeded noise.
                let rssi = -50.0 - 60.0 * self.noise(3);
                Ok(Value::Num(rssi))
            }
            other => Err(ApisenseError::Runtime(format!(
                "unknown host endpoint {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::LocationRecord;

    fn trajectory() -> Trajectory {
        let records: Vec<LocationRecord> = (0..240)
            .map(|i| {
                LocationRecord::new(
                    UserId(1),
                    Timestamp::from_day_time(0, 10, 0, 0) + i * 60,
                    GeoPoint::new(45.75, 4.85 + 0.0001 * i as f64).unwrap(),
                )
            })
            .collect();
        Trajectory::new(UserId(1), records)
    }

    fn gps_script() -> Script {
        Script::compile(
            r#"
            let fix = sensor.gps();
            if (fix != null) {
                emit({ "lat": fix.lat, "lon": fix.lon, "battery": sensor.battery() });
            }
            "#,
        )
        .unwrap()
    }

    fn start() -> Timestamp {
        Timestamp::from_day_time(0, 10, 0, 0)
    }

    #[test]
    fn battery_model_drains_and_charges() {
        let mut b = Battery::full();
        assert_eq!(b.level(), 1.0);
        b.advance(3_600, false);
        assert!((b.level() - 0.99).abs() < 1e-9);
        b.drain(0.5);
        assert!((b.level() - 0.49).abs() < 1e-9);
        b.advance(3_600, true);
        assert!((b.level() - 0.99).abs() < 1e-9);
        b.drain(5.0);
        assert!(b.is_depleted());
        b.charge(0.3);
        assert!((b.level() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn tick_runs_task_on_schedule() {
        let mut device = Device::new(DeviceId(1), UserId(1), trajectory());
        device.install(TaskId(7), gps_script(), 300, 0.0, start());
        // Tick every minute for 30 minutes: the 300 s schedule fires 6 times
        // (at t=0, 300, ..., 1500).
        for i in 0..30 {
            device.tick(start() + i * 60);
        }
        assert_eq!(device.outbox_len(), 6);
        let records = device.drain_outbox();
        assert_eq!(records.len(), 6);
        assert_eq!(device.outbox_len(), 0);
        for r in &records {
            assert_eq!(r.task, TaskId(7));
            assert_eq!(r.user, UserId(1));
            let loc = r.location().expect("gps payload");
            assert!((loc.latitude() - 45.75).abs() < 0.01);
        }
    }

    #[test]
    fn low_battery_pauses_tasks() {
        let mut device = Device::new(DeviceId(1), UserId(1), trajectory())
            .with_battery(Battery::at_level(0.1));
        device.install(TaskId(1), gps_script(), 60, 0.2, start());
        for i in 0..10 {
            device.tick(start() + i * 60);
        }
        assert_eq!(device.outbox_len(), 0, "below min_battery: no sampling");
    }

    #[test]
    fn depleted_battery_stops_device() {
        let mut device = Device::new(DeviceId(1), UserId(1), trajectory())
            .with_battery(Battery::at_level(0.0));
        device.install(TaskId(1), gps_script(), 60, 0.0, start());
        device.tick(start());
        assert_eq!(device.outbox_len(), 0);
    }

    #[test]
    fn sensor_opt_out_returns_null_to_script() {
        use crate::privacy::PrivacyPreferences;
        let prefs = PrivacyPreferences::default().without_sensor(SensorKind::Gps);
        let mut device =
            Device::new(DeviceId(1), UserId(1), trajectory()).with_preferences(prefs);
        device.install(TaskId(1), gps_script(), 60, 0.0, start());
        device.tick(start());
        // Script checks for null and emits nothing.
        assert_eq!(device.outbox_len(), 0);
        assert_eq!(device.records_produced(), 0);
    }

    #[test]
    fn sampling_drains_battery() {
        let mut device = Device::new(DeviceId(1), UserId(1), trajectory());
        device.install(TaskId(1), gps_script(), 60, 0.0, start());
        for i in 0..60 {
            device.tick(start() + i * 60);
        }
        // One hour: idle drain ~1% plus 60 GPS+battery samples.
        let expected_floor = 1.0 - 0.011 - 60.0 * 3.0e-5;
        assert!(device.battery().level() < 0.999);
        assert!(device.battery().level() > expected_floor - 0.01);
    }

    #[test]
    fn night_ticks_charge_battery() {
        let mut device = Device::new(DeviceId(1), UserId(1), trajectory())
            .with_battery(Battery::at_level(0.5));
        let night = Timestamp::from_day_time(0, 23, 0, 0);
        device.tick(night);
        device.tick(night + 3_600);
        assert!(device.battery().level() > 0.9);
    }

    #[test]
    fn accelerometer_and_network_sensors() {
        let script = Script::compile(
            r#"emit({ "acc": sensor.accelerometer(), "rssi": sensor.network() });"#,
        )
        .unwrap();
        let mut device = Device::new(DeviceId(1), UserId(1), trajectory());
        device.install(TaskId(2), script, 60, 0.0, start());
        device.tick(start() + 3_600); // mid-trajectory: device is moving
        let records = device.drain_outbox();
        assert_eq!(records.len(), 1);
        let m = records[0].payload.as_map().unwrap();
        let acc = m["acc"].as_num().unwrap();
        assert!((9.81..15.0).contains(&acc), "acc {acc}");
        let rssi = m["rssi"].as_num().unwrap();
        assert!((-110.0..=-50.0).contains(&rssi), "rssi {rssi}");
    }

    #[test]
    fn install_uninstall() {
        let mut device = Device::new(DeviceId(1), UserId(1), trajectory());
        device.install(TaskId(1), gps_script(), 60, 0.0, start());
        device.install(TaskId(2), gps_script(), 60, 0.0, start());
        assert_eq!(device.installed_count(), 2);
        device.uninstall(TaskId(1));
        assert_eq!(device.installed_count(), 1);
    }

    #[test]
    fn failing_script_does_not_poison_device() {
        let bad = Script::compile("boom.unknown();").unwrap();
        let mut device = Device::new(DeviceId(1), UserId(1), trajectory());
        device.install(TaskId(1), bad, 60, 0.0, start());
        device.install(TaskId(2), gps_script(), 60, 0.0, start());
        device.tick(start());
        // The good task still produced its record.
        assert_eq!(device.outbox_len(), 1);
    }

    #[test]
    fn sensed_record_location_extraction() {
        let mut payload = std::collections::BTreeMap::new();
        payload.insert("lat".to_string(), Value::Num(45.0));
        payload.insert("lon".to_string(), Value::Num(4.0));
        let r = SensedRecord {
            task: TaskId(1),
            user: UserId(1),
            device: DeviceId(1),
            time: Timestamp::new(0),
            payload: Value::Map(payload),
        };
        assert_eq!(r.location().unwrap(), GeoPoint::new(45.0, 4.0).unwrap());
        assert!(r.to_location_record().is_some());
        let no_loc = SensedRecord {
            payload: Value::Num(1.0),
            ..r
        };
        assert!(no_loc.location().is_none());
    }
}
