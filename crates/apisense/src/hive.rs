//! The Hive: the central service of the APISENSE platform.
//!
//! "In its center sits the Hive service, that is responsible for managing
//! the community of mobile users and publishing crowd-sensing tasks."
//! (paper, §2). The Hive keeps the device registry, matches published tasks
//! to eligible devices, tracks deployments, and routes collected records
//! back to the owning Honeycomb.

use crate::device::{DeviceId, SensedRecord, SensorKind};
use crate::error::ApisenseError;
use crate::honeycomb::SensingTask;
use geo::{BoundingBox, GeoPoint};
use mobility::UserId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a published crowd-sensing task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task-{}", self.0)
    }
}

/// What the Hive knows about a registered device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceDescriptor {
    /// The device.
    pub device: DeviceId,
    /// Its owner.
    pub user: UserId,
    /// Sensors the device offers (and the user shares).
    pub sensors: BTreeSet<SensorKind>,
    /// Rough home region declared at enrolment (used for region matching;
    /// deliberately coarse — precise positions never reach the registry).
    pub region_hint: Option<GeoPoint>,
    /// Last reported battery level in `[0, 1]`.
    pub battery_level: f64,
}

/// A deployment decision: which devices a task was offloaded to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// The task.
    pub task: TaskId,
    /// Devices selected for the task.
    pub devices: Vec<DeviceId>,
}

/// The central Hive service.
#[derive(Debug, Default)]
pub struct Hive {
    devices: BTreeMap<DeviceId, DeviceDescriptor>,
    tasks: BTreeMap<TaskId, SensingTask>,
    deployments: BTreeMap<TaskId, Deployment>,
    collected: BTreeMap<TaskId, Vec<SensedRecord>>,
    next_task_id: u64,
}

impl Hive {
    /// Creates an empty Hive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enrols a device into the community.
    ///
    /// Re-registration replaces the previous descriptor (device update).
    pub fn register_device(&mut self, descriptor: DeviceDescriptor) {
        self.devices.insert(descriptor.device, descriptor);
    }

    /// Removes a device from the community.
    pub fn unregister_device(&mut self, device: DeviceId) {
        self.devices.remove(&device);
    }

    /// Updates a device's battery report.
    ///
    /// # Errors
    ///
    /// Returns [`ApisenseError::NotFound`] for unknown devices.
    pub fn report_battery(
        &mut self,
        device: DeviceId,
        level: f64,
    ) -> Result<(), ApisenseError> {
        match self.devices.get_mut(&device) {
            Some(d) => {
                d.battery_level = level.clamp(0.0, 1.0);
                Ok(())
            }
            None => Err(ApisenseError::NotFound("device", device.0)),
        }
    }

    /// Number of enrolled devices.
    pub fn community_size(&self) -> usize {
        self.devices.len()
    }

    /// Publishes a task uploaded by a Honeycomb; returns its id.
    pub fn publish_task(&mut self, mut task: SensingTask) -> TaskId {
        self.next_task_id += 1;
        let id = TaskId(self.next_task_id);
        task.assign_id(id);
        self.tasks.insert(id, task);
        id
    }

    /// The published task, if known.
    pub fn task(&self, id: TaskId) -> Option<&SensingTask> {
        self.tasks.get(&id)
    }

    /// Devices eligible for a task: they must offer every required sensor,
    /// have enough battery, and (when the task is regional) have a region
    /// hint inside the task's region.
    pub fn eligible_devices(&self, task: &SensingTask) -> Vec<DeviceId> {
        self.devices
            .values()
            .filter(|d| {
                task.required_sensors()
                    .iter()
                    .all(|s| d.sensors.contains(s))
                    && d.battery_level >= task.min_battery()
                    && match (task.region(), d.region_hint) {
                        (Some(region), Some(hint)) => region.contains(&hint),
                        (Some(_), None) => false,
                        (None, _) => true,
                    }
            })
            .map(|d| d.device)
            .collect()
    }

    /// Deploys a published task to all eligible devices (up to the task's
    /// participant cap).
    ///
    /// # Errors
    ///
    /// Returns [`ApisenseError::NotFound`] for unknown task ids.
    pub fn deploy(&mut self, id: TaskId) -> Result<Deployment, ApisenseError> {
        let task = self
            .tasks
            .get(&id)
            .ok_or(ApisenseError::NotFound("task", id.0))?;
        let mut devices = self.eligible_devices(task);
        if let Some(cap) = task.max_participants() {
            devices.truncate(cap);
        }
        let deployment = Deployment { task: id, devices };
        self.deployments.insert(id, deployment.clone());
        Ok(deployment)
    }

    /// The recorded deployment of a task, if any.
    pub fn deployment(&self, id: TaskId) -> Option<&Deployment> {
        self.deployments.get(&id)
    }

    /// The users recruited by a task's recorded deployment (owners of the
    /// deployed devices, sorted and de-duplicated) — the participant set a
    /// multi-campaign publication gateway scopes the task's releases to.
    ///
    /// # Errors
    ///
    /// Returns [`ApisenseError::NotFound`] when the task was never
    /// deployed.
    pub fn participants(&self, id: TaskId) -> Result<Vec<UserId>, ApisenseError> {
        let deployment = self
            .deployments
            .get(&id)
            .ok_or(ApisenseError::NotFound("deployment", id.0))?;
        let mut users: Vec<UserId> = deployment
            .devices
            .iter()
            .filter_map(|d| self.devices.get(d).map(|desc| desc.user))
            .collect();
        users.sort();
        users.dedup();
        Ok(users)
    }

    /// Ingests records uploaded by devices, grouped per task.
    pub fn ingest(&mut self, records: Vec<SensedRecord>) {
        for r in records {
            self.collected.entry(r.task).or_default().push(r);
        }
    }

    /// Drains everything collected for one task (forwarded to the
    /// Honeycomb that owns it).
    pub fn drain_collected(&mut self, id: TaskId) -> Vec<SensedRecord> {
        self.collected.remove(&id).unwrap_or_default()
    }

    /// Number of records currently buffered for a task.
    pub fn collected_count(&self, id: TaskId) -> usize {
        self.collected.get(&id).map(Vec::len).unwrap_or(0)
    }
}

/// Builds a [`DeviceDescriptor`] with all sensors and a full battery.
pub fn descriptor(device: DeviceId, user: UserId) -> DeviceDescriptor {
    DeviceDescriptor {
        device,
        user,
        sensors: SensorKind::ALL.into_iter().collect(),
        region_hint: None,
        battery_level: 1.0,
    }
}

/// Convenience: a bounding box centred on `center` with half-side `half_m`
/// metres (task region definitions).
pub fn square_region(center: GeoPoint, half_m: f64) -> BoundingBox {
    let dlat = half_m / 111_320.0;
    let cos_lat = center.latitude().to_radians().cos().max(0.01);
    let dlon = half_m / (111_320.0 * cos_lat);
    BoundingBox::new(
        GeoPoint::clamped(center.latitude() - dlat, center.longitude() - dlon),
        GeoPoint::clamped(center.latitude() + dlat, center.longitude() + dlon),
    )
    .expect("square region corners ordered")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::honeycomb::ExperimentBuilder;
    use crate::script::Script;

    fn gps_task() -> SensingTask {
        ExperimentBuilder::new("t")
            .script(Script::compile("emit(sensor.gps());").unwrap())
            .require_sensor(SensorKind::Gps)
            .build()
    }

    #[test]
    fn registration_and_community_size() {
        let mut hive = Hive::new();
        hive.register_device(descriptor(DeviceId(1), UserId(1)));
        hive.register_device(descriptor(DeviceId(2), UserId(2)));
        assert_eq!(hive.community_size(), 2);
        // Re-registration is an update, not a duplicate.
        hive.register_device(descriptor(DeviceId(1), UserId(1)));
        assert_eq!(hive.community_size(), 2);
        hive.unregister_device(DeviceId(1));
        assert_eq!(hive.community_size(), 1);
    }

    #[test]
    fn publish_assigns_ids() {
        let mut hive = Hive::new();
        let a = hive.publish_task(gps_task());
        let b = hive.publish_task(gps_task());
        assert_ne!(a, b);
        assert_eq!(hive.task(a).unwrap().id(), Some(a));
    }

    #[test]
    fn eligibility_requires_sensors() {
        let mut hive = Hive::new();
        let mut no_gps = descriptor(DeviceId(1), UserId(1));
        no_gps.sensors.remove(&SensorKind::Gps);
        hive.register_device(no_gps);
        hive.register_device(descriptor(DeviceId(2), UserId(2)));
        let id = hive.publish_task(gps_task());
        let task = hive.task(id).unwrap().clone();
        assert_eq!(hive.eligible_devices(&task), vec![DeviceId(2)]);
    }

    #[test]
    fn eligibility_respects_battery_floor() {
        let mut hive = Hive::new();
        let mut low = descriptor(DeviceId(1), UserId(1));
        low.battery_level = 0.05;
        hive.register_device(low);
        hive.register_device(descriptor(DeviceId(2), UserId(2)));
        let task = ExperimentBuilder::new("t")
            .script(Script::compile("1;").unwrap())
            .min_battery(0.2)
            .build();
        let id = hive.publish_task(task);
        let task = hive.task(id).unwrap().clone();
        assert_eq!(hive.eligible_devices(&task), vec![DeviceId(2)]);
        // Battery report can re-qualify the device.
        hive.report_battery(DeviceId(1), 0.9).unwrap();
        assert_eq!(hive.eligible_devices(&task).len(), 2);
        assert!(hive.report_battery(DeviceId(9), 0.5).is_err());
    }

    #[test]
    fn eligibility_respects_region() {
        let mut hive = Hive::new();
        let lyon = GeoPoint::new(45.75, 4.85).unwrap();
        let lille = GeoPoint::new(50.63, 3.06).unwrap();
        let mut in_region = descriptor(DeviceId(1), UserId(1));
        in_region.region_hint = Some(lyon);
        let mut out_region = descriptor(DeviceId(2), UserId(2));
        out_region.region_hint = Some(lille);
        let no_hint = descriptor(DeviceId(3), UserId(3));
        hive.register_device(in_region);
        hive.register_device(out_region);
        hive.register_device(no_hint);
        let task = ExperimentBuilder::new("t")
            .script(Script::compile("1;").unwrap())
            .region(square_region(lyon, 10_000.0))
            .build();
        let id = hive.publish_task(task);
        let task = hive.task(id).unwrap().clone();
        // Only the Lyon device qualifies; devices without a hint are
        // excluded from regional tasks.
        assert_eq!(hive.eligible_devices(&task), vec![DeviceId(1)]);
    }

    #[test]
    fn deploy_caps_participants() {
        let mut hive = Hive::new();
        for i in 0..10 {
            hive.register_device(descriptor(DeviceId(i), UserId(i)));
        }
        let task = ExperimentBuilder::new("t")
            .script(Script::compile("1;").unwrap())
            .max_participants(4)
            .build();
        let id = hive.publish_task(task);
        let deployment = hive.deploy(id).unwrap();
        assert_eq!(deployment.devices.len(), 4);
        assert_eq!(hive.deployment(id).unwrap().devices.len(), 4);
        assert!(hive.deploy(TaskId(999)).is_err());
    }

    #[test]
    fn ingest_and_drain() {
        use crate::script::Value;
        let mut hive = Hive::new();
        let id = hive.publish_task(gps_task());
        let record = SensedRecord {
            task: id,
            user: UserId(1),
            device: DeviceId(1),
            time: mobility::Timestamp::new(0),
            payload: Value::Null,
        };
        hive.ingest(vec![record.clone(), record.clone()]);
        assert_eq!(hive.collected_count(id), 2);
        let drained = hive.drain_collected(id);
        assert_eq!(drained.len(), 2);
        assert_eq!(hive.collected_count(id), 0);
    }

    #[test]
    fn square_region_contains_center() {
        let c = GeoPoint::new(45.75, 4.85).unwrap();
        let region = square_region(c, 5_000.0);
        assert!(region.contains(&c));
        let edge = c.destination(geo::Degrees::new(0.0), geo::Meters::new(4_900.0));
        assert!(region.contains(&edge));
        let outside = c.destination(geo::Degrees::new(0.0), geo::Meters::new(8_000.0));
        assert!(!region.contains(&outside));
    }
}
