//! Honeycomb endpoints: where experimenters define tasks and receive data.
//!
//! "These crowd-sensing tasks are uploaded on the Hive from Honeycomb
//! endpoints, which are deployed and used by people interested in collecting
//! specific datasets. The Honeycomb is therefore used to describe the
//! crowd-sensing tasks as scripts […] Once triggered by the mobile device,
//! these scripts will automatically produce a dataset, which will be sent
//! back to the Honeycomb to be processed and stored depending on
//! experiments." (paper, §2)

use crate::device::{SensedRecord, SensorKind};
use crate::hive::TaskId;
use crate::incentives::IncentiveStrategy;
use crate::script::Script;
use geo::BoundingBox;
use mobility::{Dataset, UserId};
use std::collections::{BTreeMap, BTreeSet};

/// A crowd-sensing task: the unit the Honeycomb uploads to the Hive and the
/// Hive offloads to devices.
#[derive(Debug, Clone, PartialEq)]
pub struct SensingTask {
    id: Option<TaskId>,
    name: String,
    script: Script,
    required_sensors: BTreeSet<SensorKind>,
    sampling_interval_s: i64,
    region: Option<BoundingBox>,
    min_battery: f64,
    max_participants: Option<usize>,
    incentive: IncentiveStrategy,
}

impl SensingTask {
    /// The Hive-assigned id (None until published).
    pub fn id(&self) -> Option<TaskId> {
        self.id
    }

    pub(crate) fn assign_id(&mut self, id: TaskId) {
        self.id = Some(id);
    }

    /// Experiment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task script offloaded to devices.
    pub fn script(&self) -> &Script {
        &self.script
    }

    /// Sensors a device must offer to run this task.
    pub fn required_sensors(&self) -> &BTreeSet<SensorKind> {
        &self.required_sensors
    }

    /// Seconds between script executions on the device.
    pub fn sampling_interval_s(&self) -> i64 {
        self.sampling_interval_s
    }

    /// Geographic restriction, if any.
    pub fn region(&self) -> Option<&BoundingBox> {
        self.region.as_ref()
    }

    /// Minimum battery level required to sample.
    pub fn min_battery(&self) -> f64 {
        self.min_battery
    }

    /// Participant cap, if any.
    pub fn max_participants(&self) -> Option<usize> {
        self.max_participants
    }

    /// The incentive strategy attached to the campaign.
    pub fn incentive(&self) -> &IncentiveStrategy {
        &self.incentive
    }
}

/// Builder for [`SensingTask`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    name: String,
    script: Option<Script>,
    required_sensors: BTreeSet<SensorKind>,
    sampling_interval_s: i64,
    region: Option<BoundingBox>,
    min_battery: f64,
    max_participants: Option<usize>,
    incentive: IncentiveStrategy,
}

impl ExperimentBuilder {
    /// Starts an experiment definition.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            script: None,
            required_sensors: BTreeSet::new(),
            sampling_interval_s: 60,
            region: None,
            min_battery: 0.1,
            max_participants: None,
            incentive: IncentiveStrategy::None,
        }
    }

    /// Sets the task script.
    pub fn script(mut self, script: Script) -> Self {
        self.script = Some(script);
        self
    }

    /// Declares a required sensor (may be called repeatedly).
    pub fn require_sensor(mut self, sensor: SensorKind) -> Self {
        self.required_sensors.insert(sensor);
        self
    }

    /// Sets the on-device sampling interval in seconds (min 1).
    pub fn sampling_interval_s(mut self, seconds: i64) -> Self {
        self.sampling_interval_s = seconds.max(1);
        self
    }

    /// Restricts the task to a region.
    pub fn region(mut self, region: BoundingBox) -> Self {
        self.region = Some(region);
        self
    }

    /// Sets the minimum battery level for sampling.
    pub fn min_battery(mut self, level: f64) -> Self {
        self.min_battery = level.clamp(0.0, 1.0);
        self
    }

    /// Caps the number of participating devices.
    pub fn max_participants(mut self, cap: usize) -> Self {
        self.max_participants = Some(cap);
        self
    }

    /// Attaches an incentive strategy.
    pub fn incentive(mut self, incentive: IncentiveStrategy) -> Self {
        self.incentive = incentive;
        self
    }

    /// Builds the task. A missing script defaults to a GPS sampler.
    pub fn build(self) -> SensingTask {
        let script = self.script.unwrap_or_else(|| {
            Script::compile(
                r#"let fix = sensor.gps(); if (fix != null) { emit({ "lat": fix.lat, "lon": fix.lon }); }"#,
            )
            .expect("default script is valid")
        });
        SensingTask {
            id: None,
            name: self.name,
            script,
            required_sensors: self.required_sensors,
            sampling_interval_s: self.sampling_interval_s,
            region: self.region,
            min_battery: self.min_battery,
            max_participants: self.max_participants,
            incentive: self.incentive,
        }
    }
}

/// Per-task collection statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectionStats {
    /// Records stored.
    pub records: usize,
    /// Distinct contributing users.
    pub contributors: usize,
}

/// A Honeycomb endpoint: defines experiments and stores their datasets.
#[derive(Debug, Default)]
pub struct Honeycomb {
    name: String,
    store: BTreeMap<TaskId, Vec<SensedRecord>>,
}

impl Honeycomb {
    /// Creates a Honeycomb endpoint.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            store: BTreeMap::new(),
        }
    }

    /// The endpoint name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stores records forwarded by the Hive.
    pub fn receive(&mut self, records: Vec<SensedRecord>) {
        for r in records {
            self.store.entry(r.task).or_default().push(r);
        }
    }

    /// Collection statistics for one task.
    pub fn stats(&self, task: TaskId) -> CollectionStats {
        match self.store.get(&task) {
            None => CollectionStats::default(),
            Some(records) => {
                let contributors: BTreeSet<UserId> = records.iter().map(|r| r.user).collect();
                CollectionStats {
                    records: records.len(),
                    contributors: contributors.len(),
                }
            }
        }
    }

    /// All stored records of a task.
    pub fn records(&self, task: TaskId) -> &[SensedRecord] {
        self.store.get(&task).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Converts a task's located records into a mobility dataset — the
    /// input PRIVAPI protects before publication.
    pub fn mobility_dataset(&self, task: TaskId) -> Dataset {
        let records: Vec<mobility::LocationRecord> = self
            .records(task)
            .iter()
            .filter_map(|r| r.to_location_record())
            .collect();
        Dataset::from_records(records)
    }

    /// Total records stored across all tasks.
    pub fn total_records(&self) -> usize {
        self.store.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;
    use crate::script::Value;
    use mobility::Timestamp;
    use std::collections::BTreeMap as Map;

    fn record(task: TaskId, user: u64, lat: f64) -> SensedRecord {
        let mut payload = Map::new();
        payload.insert("lat".to_string(), Value::Num(lat));
        payload.insert("lon".to_string(), Value::Num(4.0));
        SensedRecord {
            task,
            user: UserId(user),
            device: DeviceId(user),
            time: Timestamp::new(0),
            payload: Value::Map(payload),
        }
    }

    #[test]
    fn builder_defaults() {
        let task = ExperimentBuilder::new("exp").build();
        assert_eq!(task.name(), "exp");
        assert_eq!(task.sampling_interval_s(), 60);
        assert!(task.id().is_none());
        assert!(task.region().is_none());
        assert_eq!(task.min_battery(), 0.1);
        assert_eq!(*task.incentive(), IncentiveStrategy::None);
        // Default script compiles and mentions gps.
        assert!(task.script().source().contains("sensor.gps"));
    }

    #[test]
    fn builder_clamps_and_sets() {
        let task = ExperimentBuilder::new("x")
            .sampling_interval_s(0)
            .min_battery(7.0)
            .max_participants(3)
            .require_sensor(SensorKind::Gps)
            .require_sensor(SensorKind::Battery)
            .build();
        assert_eq!(task.sampling_interval_s(), 1);
        assert_eq!(task.min_battery(), 1.0);
        assert_eq!(task.max_participants(), Some(3));
        assert_eq!(task.required_sensors().len(), 2);
    }

    #[test]
    fn receive_and_stats() {
        let mut hc = Honeycomb::new("lab");
        assert_eq!(hc.name(), "lab");
        let t = TaskId(1);
        hc.receive(vec![
            record(t, 1, 45.0),
            record(t, 1, 45.1),
            record(t, 2, 45.2),
        ]);
        let stats = hc.stats(t);
        assert_eq!(stats.records, 3);
        assert_eq!(stats.contributors, 2);
        assert_eq!(hc.stats(TaskId(9)).records, 0);
        assert_eq!(hc.total_records(), 3);
    }

    #[test]
    fn mobility_dataset_extraction() {
        let mut hc = Honeycomb::new("lab");
        let t = TaskId(1);
        let mut unlocated = record(t, 3, 45.0);
        unlocated.payload = Value::Num(1.0);
        hc.receive(vec![record(t, 1, 45.0), unlocated]);
        let ds = hc.mobility_dataset(t);
        assert_eq!(ds.record_count(), 1, "unlocated records are skipped");
        assert_eq!(ds.user_count(), 1);
    }
}
