//! Property-based tests of the APISENSE middleware.

use apisense::privacy::{ExclusionZone, PrivacyPreferences, TimeWindow};
use apisense::script::{Host, Script, Value};
use apisense::ApisenseError;
use geo::GeoPoint;
use proptest::prelude::*;

struct NullHost;
impl Host for NullHost {
    fn call(&mut self, _path: &str, args: &mut [Value]) -> Result<Value, ApisenseError> {
        Ok(args.first().cloned().unwrap_or(Value::Null))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The compiler never panics, whatever the input text.
    #[test]
    fn compiler_never_panics(src in ".{0,200}") {
        let _ = Script::compile(&src);
    }

    /// Valid arithmetic always evaluates without error and agrees with Rust.
    #[test]
    fn arithmetic_matches_rust(a in -1_000i32..1_000, b in -1_000i32..1_000) {
        let src = format!("{a} + {b} * 2 - ({b} - {a})");
        let script = Script::compile(&src).unwrap();
        let result = script.run(&mut NullHost, 100_000).unwrap();
        let expected = a as f64 + b as f64 * 2.0 - (b as f64 - a as f64);
        prop_assert_eq!(result, Value::Num(expected));
    }

    /// Fuel always bounds execution: any script either finishes or reports
    /// fuel exhaustion within the budget — no runaway loops.
    #[test]
    fn fuel_always_terminates(n in 0u32..30, fuel in 1u64..2_000) {
        let src = format!("let i = 0; while (i < {n}) {{ i = i + 1; }} i");
        let script = Script::compile(&src).unwrap();
        match script.run(&mut NullHost, fuel) {
            Ok(Value::Num(v)) => prop_assert_eq!(v, n as f64),
            Ok(other) => prop_assert!(false, "unexpected value {other}"),
            Err(ApisenseError::FuelExhausted) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// String concatenation length is additive.
    #[test]
    fn string_concat(a in "[a-z]{0,20}", b in "[a-z]{0,20}") {
        let src = format!(r#""{a}" + "{b}""#);
        let script = Script::compile(&src).unwrap();
        let result = script.run(&mut NullHost, 10_000).unwrap();
        prop_assert_eq!(result, Value::Str(format!("{a}{b}")));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Blur displaces by a bounded, deterministic amount and never moves a
    /// record's timestamp or non-spatial payload.
    #[test]
    fn blur_is_bounded_and_deterministic(
        lat in 45.0..46.0f64,
        lon in 4.0..5.0f64,
        t in 0i64..1_000_000,
        sigma in 1.0..300.0f64,
        salt in any::<u64>(),
    ) {
        use apisense::device::{DeviceId, SensedRecord};
        use apisense::hive::TaskId;
        use mobility::{Timestamp, UserId};
        use std::collections::BTreeMap;

        let prefs = PrivacyPreferences::default()
            .with_blur(geo::Meters::new(sigma))
            .with_salt(salt);
        let mut payload = BTreeMap::new();
        payload.insert("lat".to_string(), Value::Num(lat));
        payload.insert("lon".to_string(), Value::Num(lon));
        payload.insert("extra".to_string(), Value::Num(42.0));
        let record = SensedRecord {
            task: TaskId(1),
            user: UserId(1),
            device: DeviceId(1),
            time: Timestamp::new(t),
            payload: Value::Map(payload),
        };
        let out1 = prefs.filter_record(record.clone()).unwrap();
        let out2 = prefs.filter_record(record.clone()).unwrap();
        prop_assert_eq!(&out1, &out2);
        prop_assert_eq!(out1.time, record.time);
        let original = record.location().unwrap();
        let blurred = out1.location().unwrap();
        let d = original.haversine_distance(&blurred).get();
        // Gaussian tail: 6 sigma covers essentially everything.
        prop_assert!(d <= sigma * 6.0 + 1.0, "blur {d} m at sigma {sigma}");
        prop_assert_eq!(
            out1.payload.as_map().unwrap().get("extra"),
            Some(&Value::Num(42.0))
        );
    }

    /// Exclusion zones and time windows are airtight: no published record
    /// violates them.
    #[test]
    fn filters_are_airtight(
        points in prop::collection::vec((45.0..45.1f64, 4.0..4.1f64, 0i64..604_800), 1..60),
        zone_lat in 45.0..45.1f64,
        zone_lon in 4.0..4.1f64,
        radius in 50.0..2_000.0f64,
        win_start in 0i64..23,
    ) {
        use apisense::device::{DeviceId, SensedRecord};
        use apisense::hive::TaskId;
        use mobility::{Timestamp, UserId};
        use std::collections::BTreeMap;

        let zone_center = GeoPoint::new(zone_lat, zone_lon).unwrap();
        let window = TimeWindow::new(win_start, (win_start + 8).min(24));
        let prefs = PrivacyPreferences::default()
            .with_exclusion_zone(ExclusionZone::new(zone_center, geo::Meters::new(radius)))
            .with_time_window(window);
        for (la, lo, t) in points {
            let mut payload = BTreeMap::new();
            payload.insert("lat".to_string(), Value::Num(la));
            payload.insert("lon".to_string(), Value::Num(lo));
            let record = SensedRecord {
                task: TaskId(1),
                user: UserId(1),
                device: DeviceId(1),
                time: Timestamp::new(t),
                payload: Value::Map(payload),
            };
            if let Some(out) = prefs.filter_record(record) {
                let p = out.location().unwrap();
                prop_assert!(
                    zone_center.haversine_distance(&p).get() > radius,
                    "published record inside the exclusion zone"
                );
                prop_assert!(window.contains_hour(out.time.hour_of_day()));
            }
        }
    }
}
