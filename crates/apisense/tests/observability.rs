//! Observation-parity property tests: turning the obs recorder on must
//! never change what the pipeline publishes or audits.
//!
//! The obs layer promises recording is purely additive — atomic counter
//! bumps and trace appends, no data-path branching. These tests drive the
//! two paths with the densest instrumentation (the fault-injected fleet
//! and the incremental streaming publisher) twice, recorder off then on,
//! and require byte-identical published windows plus identical audit
//! deltas ([`privapi::streaming::IngestDelta`],
//! [`privapi::streaming::StrategyCacheDelta`]).
//!
//! The obs recorder is process-global, so every test here serializes on
//! one lock; each `tests/*.rs` file is its own process, so nothing else
//! races the enabled flag.

use apisense::collect::window_fingerprint;
use apisense::fleet::{run_fleet, FleetConfig};
use mobility::gen::{CityModel, PopulationConfig};
use mobility::WindowedDataset;
use privapi::prelude::*;
use privapi::streaming::{IngestDelta, StrategyCacheDelta};
use proptest::prelude::*;
use simnet::FaultPlan;

static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// One chaos fleet run: per-window byte fingerprints plus the ingestion
/// audit, the pair the recorder must not perturb.
fn chaos_fleet(seed: u64, users: usize, days: i64) -> (Vec<Vec<u8>>, Vec<IngestDelta>) {
    let outcome = run_fleet(&FleetConfig {
        users,
        days,
        faults: FaultPlan::chaos(seed),
        ..FleetConfig::small(seed)
    });
    let fingerprints = outcome.windows.iter().map(window_fingerprint).collect();
    (fingerprints, outcome.deltas)
}

/// One incremental streaming run: per-window released bytes plus the
/// summed protected-side cache audit.
fn stream(
    seed: u64,
    users: usize,
    days: usize,
) -> (
    Vec<(SelectionReport, mobility::Dataset)>,
    StrategyCacheDelta,
) {
    let data = CityModel::builder()
        .seed(seed)
        .build()
        .generate_population(&PopulationConfig {
            users,
            days,
            sampling_interval_s: 1_800,
            ..PopulationConfig::default()
        });
    let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
    let mut totals = StrategyCacheDelta::default();
    let mut releases = Vec::new();
    for window in &WindowedDataset::partition(&data) {
        let release = publisher.publish_window(window).expect("publish succeeds");
        totals.users_reused += release.strategies.users_reused;
        totals.users_refreshed += release.strategies.users_refreshed;
        totals.shards_reused += release.strategies.shards_reused;
        totals.shards_refreshed += release.strategies.shards_refreshed;
        totals.protected_grid_rebuilds += release.strategies.protected_grid_rebuilds;
        totals.full_fallbacks += release.strategies.full_fallbacks;
        releases.push((release.published.selection, release.published.dataset));
    }
    (releases, totals)
}

/// Runs `work` with the recorder off, then on, restoring the prior state,
/// and returns both results for equality assertions.
fn off_then_on<T>(mut work: impl FnMut() -> T) -> (T, T) {
    let was_enabled = obs::enabled();
    obs::disable();
    let off = work();
    obs::enable();
    let on = work();
    if was_enabled {
        obs::enable();
    } else {
        obs::disable();
    }
    (off, on)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A fault-injected fleet publishes byte-identical windows with
    /// identical ingestion audits whether or not the recorder is on.
    #[test]
    fn chaos_fleet_is_recorder_invariant(seed in 0u64..1_000, users in 3usize..7) {
        let _guard = OBS_LOCK.lock().unwrap();
        let ((off_windows, off_deltas), (on_windows, on_deltas)) =
            off_then_on(|| chaos_fleet(seed, users, 2));
        prop_assert_eq!(off_windows, on_windows, "published windows drifted under recording");
        prop_assert_eq!(off_deltas, on_deltas, "IngestDelta audit drifted under recording");
    }

    /// The incremental streaming publisher releases identical bytes and
    /// identical protected-side cache audits with the recorder on.
    #[test]
    fn streaming_is_recorder_invariant(seed in 0u64..1_000, users in 3usize..8) {
        let _guard = OBS_LOCK.lock().unwrap();
        let ((off_releases, off_totals), (on_releases, on_totals)) =
            off_then_on(|| stream(seed, users, 3));
        prop_assert!(!off_releases.is_empty(), "the run must publish at least one window");
        prop_assert_eq!(off_releases, on_releases, "released bytes drifted under recording");
        prop_assert_eq!(off_totals, on_totals, "StrategyCacheDelta drifted under recording");
    }
}

/// While recording, the instrumented families actually accumulate — the
/// parity above is not vacuous.
#[test]
fn recording_accumulates_the_instrumented_families() {
    let _guard = OBS_LOCK.lock().unwrap();
    let was_enabled = obs::enabled();
    let before: u64 = obs::metrics::snapshot()
        .counters
        .iter()
        .map(|(_, v)| *v)
        .sum();
    obs::enable();
    let _ = chaos_fleet(7, 4, 2);
    let _ = stream(7, 4, 2);
    if was_enabled {
        obs::enable();
    } else {
        obs::disable();
    }
    let snapshot = obs::metrics::snapshot();
    let after: u64 = snapshot.counters.iter().map(|(_, v)| *v).sum();
    assert!(
        after > before,
        "recording a fleet + stream must move counters"
    );
    for family in [
        "ingest.",
        "reliable.",
        "net.",
        "streaming.",
        "strategy.",
        "engine.",
    ] {
        assert!(
            snapshot
                .counters
                .iter()
                .any(|(name, value)| name.starts_with(family) && *value > 0),
            "no non-zero counter in family {family:?}"
        );
    }
}
