//! Differential tests: the bytecode VM against the tree-walking
//! interpreter.
//!
//! The VM (`script/vm.rs`) claims behavioural equivalence with the
//! interpreter (`script/interp.rs`): identical values, identical error
//! classifications and messages, identical fuel-exhaustion points, and an
//! identical host-call trace. This suite checks that claim two ways:
//!
//! - a seeded program generator produces random-but-valid scripts covering
//!   the whole surface (functions, recursion past `MAX_CALL_DEPTH`,
//!   dynamic scoping, shadowed host names, failing host calls, unbounded
//!   loops, invalid assignments), each executed under a ladder of fuel
//!   budgets on both tiers;
//! - targeted fuel sweeps pin the boundary behaviour: at every budget the
//!   two tiers must flip from `FuelExhausted` to success (or to the same
//!   runtime error) at exactly the same point.
//!
//! Numeric comparison is NaN-aware (`0 / 0` must be "equal" across tiers
//! even though `NaN != NaN`).

use apisense::script::{Host, Script, Value, Vm};
use apisense::ApisenseError;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Deterministic host with internal state (`seq.next`) and a failing path
/// (`boom.fail`), recording every call for trace comparison.
#[derive(Default)]
struct DiffHost {
    counter: u64,
    trace: Vec<(String, Vec<Value>)>,
}

impl Host for DiffHost {
    fn call(&mut self, path: &str, args: &mut [Value]) -> Result<Value, ApisenseError> {
        self.trace.push((path.to_string(), args.to_vec()));
        match path {
            "emit" | "log" => Ok(Value::Null),
            "seq.next" => {
                self.counter += 1;
                Ok(Value::Num(self.counter as f64))
            }
            "sensor.battery" => {
                self.counter += 1;
                Ok(Value::Num((self.counter % 10) as f64 / 10.0))
            }
            "sensor.gps" => {
                let mut m = BTreeMap::new();
                m.insert("lat".to_string(), Value::Num(45.75));
                m.insert("lon".to_string(), Value::Num(4.85));
                Ok(Value::Map(m))
            }
            "math.floor" => Ok(Value::Num(
                args.first()
                    .and_then(Value::as_num)
                    .unwrap_or(f64::NAN)
                    .floor(),
            )),
            other => Err(ApisenseError::UnknownSensor(other.to_string())),
        }
    }
}

/// Structural equality with NaN == NaN (derived `PartialEq` on `Value`
/// would report a spurious mismatch when both tiers compute `NaN`).
fn values_equivalent(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => x == y || (x.is_nan() && y.is_nan()),
        (Value::List(xs), Value::List(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| values_equivalent(x, y))
        }
        (Value::Map(xm), Value::Map(ym)) => {
            xm.len() == ym.len()
                && xm
                    .iter()
                    .zip(ym)
                    .all(|((ka, va), (kb, vb))| ka == kb && values_equivalent(va, vb))
        }
        _ => a == b,
    }
}

fn outcomes_equivalent(
    a: &Result<Value, ApisenseError>,
    b: &Result<Value, ApisenseError>,
) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => values_equivalent(x, y),
        (Err(x), Err(y)) => x == y,
        _ => false,
    }
}

fn traces_equivalent(a: &[(String, Vec<Value>)], b: &[(String, Vec<Value>)]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((pa, xa), (pb, xb))| {
            pa == pb
                && xa.len() == xb.len()
                && xa.iter().zip(xb).all(|(x, y)| values_equivalent(x, y))
        })
}

/// Runs `script` on both tiers with the same budget and asserts outcome
/// and host-trace parity. The `vm` is reused across calls on purpose: a
/// production VM lives across readings, so cache reuse is part of what is
/// under test.
fn assert_parity(script: &Script, vm: &mut Vm, fuel: u64, src: &str) {
    let mut interp_host = DiffHost::default();
    let interp = script.run_interpreted(&mut interp_host, fuel);
    let mut vm_host = DiffHost::default();
    let by_vm = script.run_vm(vm, &mut vm_host, fuel);
    assert!(
        outcomes_equivalent(&interp, &by_vm),
        "tiers disagree at fuel {fuel}:\n interp: {interp:?}\n vm:     {by_vm:?}\n script:\n{src}"
    );
    assert!(
        traces_equivalent(&interp_host.trace, &vm_host.trace),
        "host traces differ at fuel {fuel}:\n interp: {:?}\n vm:     {:?}\n script:\n{src}",
        interp_host.trace,
        vm_host.trace
    );
}

const FUEL_LADDER: [u64; 12] = [0, 1, 2, 3, 5, 8, 13, 21, 60, 200, 1_000, 50_000];

fn assert_parity_across_budgets(src: &str) {
    let script = Script::compile(src)
        .unwrap_or_else(|e| panic!("generated script failed to compile: {e}\n{src}"));
    let mut vm = Vm::new();
    for fuel in FUEL_LADDER {
        assert_parity(&script, &mut vm, fuel, src);
    }
}

// ---------------------------------------------------------------------------
// Program generator
// ---------------------------------------------------------------------------

/// Generates random-but-parseable scripts. Biased toward valid programs
/// (declared variables, right arities) with deliberate error injection:
/// undeclared names, wrong arities, unknown host paths, nested assignment
/// targets, invalid callees and unbounded loops.
struct ProgramGen {
    rng: StdRng,
    out: String,
    /// Scope stack of declared variable names (compile-visible scoping).
    scopes: Vec<Vec<String>>,
    /// Declared function names with arities.
    fns: Vec<(String, usize)>,
    var_counter: usize,
    /// Remaining statement allowance (bounds program size).
    budget: usize,
}

const HOST_PATHS: [&str; 6] = [
    "emit",
    "seq.next",
    "sensor.battery",
    "sensor.gps",
    "math.floor",
    "boom.fail",
];

impl ProgramGen {
    fn generate(seed: u64) -> String {
        let mut g = ProgramGen {
            rng: StdRng::seed_from_u64(seed),
            out: String::new(),
            scopes: vec![Vec::new()],
            fns: Vec::new(),
            var_counter: 0,
            budget: 24,
        };
        let fn_count = g.rng.gen_range(0..3);
        for _ in 0..fn_count {
            g.fn_decl();
        }
        let stmts = g.rng.gen_range(3..9);
        for _ in 0..stmts {
            g.stmt(0);
        }
        // End on an expression so the program has an interesting result.
        let tail = g.expr(0);
        g.out.push_str(&format!("{tail};\n"));
        g.out
    }

    fn fresh_var(&mut self) -> String {
        self.var_counter += 1;
        format!("v{}", self.var_counter)
    }

    fn declared_var(&mut self) -> Option<String> {
        let all: Vec<&String> = self.scopes.iter().flatten().collect();
        if all.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..all.len());
        Some(all[i].clone())
    }

    fn fn_decl(&mut self) {
        let name = format!("f{}", self.fns.len());
        let arity = self.rng.gen_range(0..3);
        let params: Vec<String> = (0..arity).map(|i| format!("p{i}")).collect();
        self.fns.push((name.clone(), arity));
        self.out
            .push_str(&format!("fn {name}({}) {{\n", params.join(", ")));
        self.scopes.push(params);
        let body = self.rng.gen_range(1..4);
        for _ in 0..body {
            self.stmt(1);
        }
        if self.rng.gen_bool(0.7) {
            let e = self.expr(1);
            self.out.push_str(&format!("return {e};\n"));
        }
        self.scopes.pop();
        self.out.push_str("}\n");
    }

    fn stmt(&mut self, depth: usize) {
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        match self.rng.gen_range(0..10) {
            0..=3 => {
                let e = self.expr(depth);
                let name = self.fresh_var();
                self.out.push_str(&format!("let {name} = {e};\n"));
                self.scopes.last_mut().expect("scope").push(name);
            }
            4 => {
                let value = self.expr(depth);
                match (self.declared_var(), self.rng.gen_range(0..4)) {
                    (Some(v), 0) => self.out.push_str(&format!("{v} = {value};\n")),
                    (Some(v), 1) => self.out.push_str(&format!("{v}.field = {value};\n")),
                    (Some(v), 2) => {
                        let idx = self.expr(depth + 1);
                        self.out.push_str(&format!("{v}[{idx}] = {value};\n"));
                    }
                    // Nested / undeclared targets: error-path coverage.
                    (Some(v), _) => self.out.push_str(&format!("{v}.a.b = {value};\n")),
                    (None, _) => self.out.push_str(&format!("ghost = {value};\n")),
                }
            }
            5 => {
                let cond = self.expr(depth);
                self.out.push_str(&format!("if ({cond}) {{\n"));
                self.scopes.push(Vec::new());
                self.stmt(depth + 1);
                self.scopes.pop();
                if self.rng.gen_bool(0.5) {
                    self.out.push_str("} else {\n");
                    self.scopes.push(Vec::new());
                    self.stmt(depth + 1);
                    self.scopes.pop();
                }
                self.out.push_str("}\n");
            }
            6 => {
                let i = self.fresh_var();
                let bound = self.rng.gen_range(0..6);
                self.out.push_str(&format!("let {i} = 0;\n"));
                self.scopes.last_mut().expect("scope").push(i.clone());
                if self.rng.gen_bool(0.85) {
                    self.out.push_str(&format!("while ({i} < {bound}) {{\n"));
                } else {
                    // Unbounded: exercises fuel exhaustion on every budget.
                    self.out.push_str(&format!("while ({i} >= 0) {{\n"));
                }
                self.scopes.push(Vec::new());
                if self.rng.gen_bool(0.6) {
                    self.stmt(depth + 1);
                }
                self.scopes.pop();
                self.out.push_str(&format!("{i} = {i} + 1;\n}}\n"));
            }
            7 if depth > 0 => {
                let e = self.expr(depth);
                self.out.push_str(&format!("return {e};\n"));
            }
            _ => {
                let e = self.expr(depth);
                self.out.push_str(&format!("{e};\n"));
            }
        }
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth >= 4 {
            return self.leaf();
        }
        match self.rng.gen_range(0..12) {
            0..=3 => self.leaf(),
            4 => {
                let op = [
                    "+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||",
                ][self.rng.gen_range(0..13)];
                let l = self.expr(depth + 1);
                let r = self.expr(depth + 1);
                format!("({l} {op} {r})")
            }
            5 => {
                let e = self.expr(depth + 1);
                if self.rng.gen_bool(0.5) {
                    format!("(-{e})")
                } else {
                    format!("(!{e})")
                }
            }
            6 => {
                let n = self.rng.gen_range(0..3);
                let items: Vec<String> = (0..n).map(|_| self.expr(depth + 1)).collect();
                format!("[{}]", items.join(", "))
            }
            7 => {
                let n = self.rng.gen_range(0..3);
                let entries: Vec<String> = (0..n)
                    .map(|i| format!("\"k{i}\": {}", self.expr(depth + 1)))
                    .collect();
                format!("{{ {} }}", entries.join(", "))
            }
            8 => {
                // Parenthesized: a bare number literal would lex `42.lat`
                // as the number `42.` followed by a stray identifier.
                let e = self.expr(depth + 1);
                let field = ["lat", "lon", "length", "k0", "missing"][self.rng.gen_range(0..5)];
                format!("({e}).{field}")
            }
            9 => {
                let e = self.expr(depth + 1);
                let i = self.expr(depth + 1);
                format!("{e}[{i}]")
            }
            10 => self.call(depth),
            _ => self.leaf(),
        }
    }

    fn call(&mut self, depth: usize) -> String {
        let roll = self.rng.gen_range(0..10);
        if roll < 4 && !self.fns.is_empty() {
            let i = self.rng.gen_range(0..self.fns.len());
            let (name, arity) = self.fns[i].clone();
            // Occasionally call with the wrong arity (runtime error parity).
            let argc = if self.rng.gen_bool(0.85) {
                arity
            } else {
                arity + 1
            };
            let args: Vec<String> = (0..argc).map(|_| self.expr(depth + 1)).collect();
            format!("{name}({})", args.join(", "))
        } else if roll < 9 {
            let path = HOST_PATHS[self.rng.gen_range(0..HOST_PATHS.len())];
            let argc = self.rng.gen_range(0..2);
            let args: Vec<String> = (0..argc).map(|_| self.expr(depth + 1)).collect();
            format!("{path}({})", args.join(", "))
        } else {
            // Invalid callee: a literal is neither a name nor a host path.
            format!("(3)({})", self.expr(depth + 1))
        }
    }

    fn leaf(&mut self) -> String {
        match self.rng.gen_range(0..10) {
            0..=2 => format!("{}", self.rng.gen_range(0..100)),
            3 => format!("{:.2}", self.rng.gen_range(-10.0..10.0).abs()),
            4 => ["true", "false", "null"][self.rng.gen_range(0..3)].to_string(),
            5 => format!("\"s{}\"", self.rng.gen_range(0..5)),
            6..=8 => self
                .declared_var()
                .unwrap_or_else(|| format!("{}", self.rng.gen_range(0..10))),
            // Undeclared name: error-path coverage.
            _ => "phantom".to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Generated programs — including ones that exhaust fuel, recurse past
    /// the depth limit, or fail in host calls — behave identically on both
    /// tiers across the whole fuel ladder.
    #[test]
    fn vm_matches_interpreter_on_generated_programs(seed in any::<u64>()) {
        let src = ProgramGen::generate(seed);
        assert_parity_across_budgets(&src);
    }
}

/// Fuel boundary sweep around a mid-block runtime error: both tiers must
/// flip from `FuelExhausted` to `cannot add` at exactly the same budget
/// (this is the per-basic-block fuel accounting's hardest case).
#[test]
fn fuel_boundary_around_runtime_error() {
    let src = "let a = 1; let b = null + a; emit(b);";
    let script = Script::compile(src).unwrap();
    let mut vm = Vm::new();
    let mut saw_error = false;
    for fuel in 0..25 {
        assert_parity(&script, &mut vm, fuel, src);
        let mut host = DiffHost::default();
        if let Err(ApisenseError::Runtime(m)) = script.run_vm(&mut vm, &mut host, fuel) {
            assert!(m.contains("cannot add"));
            saw_error = true;
        }
    }
    assert!(saw_error, "sweep never reached the runtime error");
}

/// Fuel sweep over a host-calling loop: host-call traces must match at
/// every budget, including exhausting ones.
#[test]
fn fuel_sweep_preserves_host_traces() {
    let src = "let i = 0;\n\
               while (i < 6) {\n\
                 emit(seq.next());\n\
                 i = i + 1;\n\
               }\n\
               i;";
    let script = Script::compile(src).unwrap();
    let mut vm = Vm::new();
    for fuel in 0..120 {
        assert_parity(&script, &mut vm, fuel, src);
    }
}

/// The recursion limit trips at the same depth on both tiers.
#[test]
fn call_depth_boundary_is_identical() {
    for depth in [63, 64, 65] {
        let src =
            format!("fn f(n) {{ if (n == 0) {{ return 0; }} return f(n - 1); }} f({depth});");
        assert_parity_across_budgets(&src);
    }
}

/// A user function declared mid-script shadows the host path from that
/// point on; inline caches must follow the re-binding.
#[test]
fn host_shadowing_and_redeclaration_parity() {
    assert_parity_across_budgets(
        "let a = emit(1);\n\
         fn emit(x) { return x * 2; }\n\
         let b = emit(2);\n\
         fn emit(x) { return x * 3; }\n\
         let c = emit(2);\n\
         [a, b, c];",
    );
}

/// Dynamic scoping: a function body reads and assigns its caller's locals.
#[test]
fn dynamic_scoping_parity() {
    assert_parity_across_budgets(
        "let total = 0;\n\
         fn bump(n) { total = total + n; return total; }\n\
         bump(2);\n\
         bump(3);\n\
         total;",
    );
}

/// Error-message parity for the whole assignment-target error family.
#[test]
fn assignment_error_parity() {
    for src in [
        "ghost = 1;",
        "let m = { \"a\": { \"b\": 1 } }; m.a.b = 2;",
        "ghost.a.b = 2;",
        "let xs = [1]; xs[9] = 0;",
        "let n = 4; n.field = 1;",
        "sensor.gps().lat = 3;",
    ] {
        assert_parity_across_budgets(src);
    }
}
