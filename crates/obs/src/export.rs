//! JSON-lines export of the recorded trace and metrics.
//!
//! One record per line, each a self-describing object tagged by `"t"`:
//! `meta`, `counter`, `gauge`, `hist`, `span`, `event`. The format is
//! hand-rolled (no serde_json in this offline build) and is parsed back
//! by [`crate::json`] / summarized by [`crate::report`] and the
//! `obs_report` bin.

use crate::metrics;
use crate::trace::{self, AttrValue};
use std::fmt::Write as _;
use std::path::Path;

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn attr_json(value: &AttrValue) -> String {
    match value {
        AttrValue::U64(v) => v.to_string(),
        AttrValue::I64(v) => v.to_string(),
        AttrValue::F64(v) if v.is_finite() => {
            // Guarantee a float-shaped literal (1.0, not 1) so parsers
            // keep integer/float distinction stable.
            if v.fract() == 0.0 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        AttrValue::F64(_) => "null".to_string(),
        AttrValue::Bool(v) => v.to_string(),
        AttrValue::Str(v) => format!("\"{}\"", escape_json(v)),
    }
}

fn attrs_json(attrs: &[(&'static str, AttrValue)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape_json(key), attr_json(value));
    }
    out.push('}');
    out
}

/// Serialize the current metrics registry and trace buffer as JSON
/// lines. Metrics come out in deterministic name order; spans and
/// events in recording order.
pub fn to_jsonl() -> String {
    let snap = metrics::snapshot();
    let (spans, events, dropped) = trace::snapshot();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"t\":\"meta\",\"version\":1,\"spans\":{},\"events\":{},\"dropped\":{}}}",
        spans.len(),
        events.len(),
        dropped
    );
    for (name, value) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"t\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            escape_json(name),
            value
        );
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"t\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            escape_json(name),
            value
        );
    }
    for hist in &snap.hists {
        let bounds = hist
            .bounds
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let counts = hist
            .counts
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            out,
            "{{\"t\":\"hist\",\"name\":\"{}\",\"unit\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"le\":[{}],\"counts\":[{}]}}",
            escape_json(&hist.name),
            hist.unit,
            hist.count,
            hist.sum,
            hist.min,
            hist.max,
            bounds,
            counts
        );
    }
    for span in &spans {
        let _ = writeln!(
            out,
            "{{\"t\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"domain\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"attrs\":{}}}",
            span.id,
            span.parent,
            escape_json(span.name),
            span.domain.label(),
            span.start_ns,
            span.end_ns,
            attrs_json(&span.attrs)
        );
    }
    for event in &events {
        let _ = writeln!(
            out,
            "{{\"t\":\"event\",\"seq\":{},\"name\":\"{}\",\"domain\":\"{}\",\"at_ns\":{},\"attrs\":{}}}",
            event.seq,
            event.name,
            event.domain.label(),
            event.at_ns,
            attrs_json(&event.attrs)
        );
    }
    out
}

/// Write [`to_jsonl`] to a file.
pub fn write_jsonl(path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, to_jsonl())
}
