//! Span/event recorder: nested span trees with ids, point events, and a
//! process-global buffer drained by the exporter.
//!
//! Span parentage is tracked per thread (a thread-local stack of open
//! span ids), so spans opened inside rayon workers simply root at the
//! worker's own stack — cheap, lock-free on the hot path, and correct
//! for the strictly scoped guards this codebase uses. Records are pushed
//! under one short critical section on close; while recording is off the
//! guard is inert and never touches the lock.

use crate::clock::{wall_nanos, Clock, Domain, Stamp};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Attribute value attached to spans and events.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// A closed span as it sits in the trace buffer.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root.
    pub parent: u64,
    pub name: &'static str,
    pub domain: Domain,
    pub start_ns: u64,
    pub end_ns: u64,
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// A point event as it sits in the trace buffer.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Global record sequence — total order of event recording, used by
    /// the reporter to segment a trace by phase markers.
    pub seq: u64,
    pub name: &'static str,
    pub domain: Domain,
    pub at_ns: u64,
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Soft cap on buffered records; beyond it new records are counted as
/// dropped instead of growing without bound.
const RECORD_CAP: usize = 1 << 22;

#[derive(Default)]
struct TraceBuf {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    dropped: u64,
}

static BUF: Mutex<TraceBuf> = Mutex::new(TraceBuf {
    spans: Vec::new(),
    events: Vec::new(),
    dropped: 0,
});
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static OPEN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

enum ClockRef<'a> {
    Wall,
    Injected(&'a dyn Clock),
}

struct ActiveSpan<'a> {
    id: u64,
    parent: u64,
    name: &'static str,
    clock: ClockRef<'a>,
    start: Stamp,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// RAII span guard. Inert (id 0, no recording) when constructed while
/// recording is off; otherwise records itself on drop.
pub struct Span<'a> {
    inner: Option<ActiveSpan<'a>>,
}

impl Span<'static> {
    #[inline]
    pub(crate) fn start_wall(name: &'static str) -> Span<'static> {
        if !crate::enabled() {
            return Span { inner: None };
        }
        Span {
            inner: Some(open(
                name,
                ClockRef::Wall,
                Stamp {
                    domain: Domain::Wall,
                    nanos: wall_nanos(),
                },
            )),
        }
    }
}

impl<'a> Span<'a> {
    #[inline]
    pub(crate) fn start_at(name: &'static str, clock: &'a dyn Clock) -> Span<'a> {
        if !crate::enabled() {
            return Span { inner: None };
        }
        let start = clock.stamp();
        Span {
            inner: Some(open(name, ClockRef::Injected(clock), start)),
        }
    }

    /// This span's id (0 when inert), usable to correlate events.
    #[inline]
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.id)
    }

    /// Attach an attribute; no-op on an inert span.
    #[inline]
    pub fn set_attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.attrs.push((key, value.into()));
        }
    }
}

fn open<'a>(name: &'static str, clock: ClockRef<'a>, start: Stamp) -> ActiveSpan<'a> {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = OPEN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    ActiveSpan {
        id,
        parent,
        name,
        clock,
        start,
        attrs: Vec::new(),
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        OPEN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            debug_assert_eq!(
                stack.last().copied(),
                Some(inner.id),
                "span guards must nest"
            );
            stack.pop();
        });
        let end = match inner.clock {
            ClockRef::Wall => Stamp {
                domain: Domain::Wall,
                nanos: wall_nanos(),
            },
            ClockRef::Injected(clock) => clock.stamp(),
        };
        let record = SpanRecord {
            id: inner.id,
            parent: inner.parent,
            name: inner.name,
            domain: inner.start.domain,
            start_ns: inner.start.nanos,
            end_ns: end.nanos.max(inner.start.nanos),
            attrs: inner.attrs,
        };
        let mut buf = BUF.lock();
        if buf.spans.len() + buf.events.len() >= RECORD_CAP {
            buf.dropped += 1;
        } else {
            buf.spans.push(record);
        }
    }
}

/// Push an event record (callers check `enabled()` first).
pub(crate) fn record_event(
    name: &'static str,
    clock: &dyn Clock,
    attrs: &[(&'static str, AttrValue)],
) {
    record_event_stamped(name, clock.stamp(), attrs);
}

/// Push an event record at an explicit stamp (callers check `enabled()`
/// first).
pub(crate) fn record_event_stamped(
    name: &'static str,
    stamp: Stamp,
    attrs: &[(&'static str, AttrValue)],
) {
    let record = EventRecord {
        seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
        name,
        domain: stamp.domain,
        at_ns: stamp.nanos,
        attrs: attrs.to_vec(),
    };
    let mut buf = BUF.lock();
    if buf.spans.len() + buf.events.len() >= RECORD_CAP {
        buf.dropped += 1;
    } else {
        buf.events.push(record);
    }
}

/// Copy the buffered records out: `(spans, events, dropped)`.
pub fn snapshot() -> (Vec<SpanRecord>, Vec<EventRecord>, u64) {
    let buf = BUF.lock();
    (buf.spans.clone(), buf.events.clone(), buf.dropped)
}

/// Clear the trace buffer (ids keep counting up across resets).
pub fn reset() {
    let mut buf = BUF.lock();
    buf.spans.clear();
    buf.events.clear();
    buf.dropped = 0;
}
