//! Typed instrument registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Instruments are registered on first use under a `&'static str` name
//! and interned for the life of the process (leaked once per unique
//! name), so the hot path after registration is a single atomic op with
//! no locking. Registration itself takes a read lock on the registry
//! map and only upgrades to a write lock on a miss.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn add(&self, by: u64) {
        self.value.fetch_add(by, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn zero(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins gauge (signed, stored as two's-complement bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn set(&self, value: i64) {
        self.bits.store(value as u64, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.bits.load(Ordering::Relaxed) as i64
    }

    fn zero(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

/// Pre-defined bucket scales for histograms. Fixed bounds keep the
/// record path branch-light (a linear scan over ≤ 20 bounds) and make
/// traces from different runs directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Buckets {
    /// Latency in milliseconds (sim or wall), 1 ms .. 1000 s.
    LatencyMs,
    /// Payload sizes in bytes, 64 B .. 1 MiB.
    Bytes,
    /// Wall micro-durations in microseconds, 1 µs .. 10 s.
    WallMicros,
}

impl Buckets {
    /// Inclusive upper bounds of each bucket; values above the last
    /// bound land in an implicit overflow bucket.
    pub fn bounds(self) -> &'static [u64] {
        match self {
            Buckets::LatencyMs => &[
                1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000,
                50_000, 100_000, 250_000, 500_000, 1_000_000,
            ],
            Buckets::Bytes => &[
                64, 128, 256, 512, 1_024, 2_048, 4_096, 8_192, 16_384, 65_536, 262_144,
                1_048_576,
            ],
            Buckets::WallMicros => &[
                1, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000,
                1_000_000, 5_000_000, 10_000_000,
            ],
        }
    }

    /// Stable unit label used in the JSON-lines export.
    pub fn unit(self) -> &'static str {
        match self {
            Buckets::LatencyMs => "latency_ms",
            Buckets::Bytes => "bytes",
            Buckets::WallMicros => "wall_us",
        }
    }
}

/// Fixed-bucket histogram with exact sum/count/min/max aggregates.
#[derive(Debug)]
pub struct Histogram {
    scale: Buckets,
    /// One slot per bound plus a trailing overflow slot.
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new(scale: Buckets) -> Self {
        let slots = scale.bounds().len() + 1;
        let counts = (0..slots)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Histogram {
            scale,
            counts,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub fn scale(&self) -> Buckets {
        self.scale
    }

    #[inline]
    pub fn record(&self, value: u64) {
        let bounds = self.scale.bounds();
        let slot = bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(bounds.len());
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn snapshot(&self, name: &str) -> HistSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistSnapshot {
            name: name.to_string(),
            unit: self.scale.unit(),
            bounds: self.scale.bounds(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count,
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn zero(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one histogram, for export.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    pub name: String,
    pub unit: &'static str,
    pub bounds: &'static [u64],
    /// `bounds.len() + 1` slots; the last is the overflow bucket.
    pub counts: Vec<u64>,
    pub sum: u64,
    pub count: u64,
    pub min: u64,
    pub max: u64,
}

/// Point-in-time copy of the whole registry, for export.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub hists: Vec<HistSnapshot>,
}

static COUNTERS: RwLock<BTreeMap<&'static str, &'static Counter>> =
    RwLock::new(BTreeMap::new());
static GAUGES: RwLock<BTreeMap<&'static str, &'static Gauge>> = RwLock::new(BTreeMap::new());
static HISTS: RwLock<BTreeMap<&'static str, &'static Histogram>> = RwLock::new(BTreeMap::new());

/// Look up (registering on first use) the named counter.
pub fn counter(name: &'static str) -> &'static Counter {
    if let Some(c) = COUNTERS.read().get(name) {
        return c;
    }
    let mut map = COUNTERS.write();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// Look up (registering on first use) the named gauge.
pub fn gauge(name: &'static str) -> &'static Gauge {
    if let Some(g) = GAUGES.read().get(name) {
        return g;
    }
    let mut map = GAUGES.write();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
}

/// Look up (registering on first use) the named histogram. The scale is
/// pinned at registration; a mismatched scale on a later call is a bug
/// in the instrumentation (debug-asserted, first scale wins).
pub fn histogram(name: &'static str, scale: Buckets) -> &'static Histogram {
    if let Some(h) = HISTS.read().get(name) {
        debug_assert_eq!(
            h.scale(),
            scale,
            "histogram {name:?} re-registered with another scale"
        );
        return h;
    }
    let mut map = HISTS.write();
    let h = map
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new(scale))));
    debug_assert_eq!(
        h.scale(),
        scale,
        "histogram {name:?} re-registered with another scale"
    );
    h
}

/// Zero every registered instrument (registrations are kept).
pub fn reset_values() {
    for c in COUNTERS.read().values() {
        c.zero();
    }
    for g in GAUGES.read().values() {
        g.zero();
    }
    for h in HISTS.read().values() {
        h.zero();
    }
}

/// Copy out the current instrument values, in deterministic (sorted by
/// name) order.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: COUNTERS
            .read()
            .iter()
            .map(|(n, c)| (n.to_string(), c.get()))
            .collect(),
        gauges: GAUGES
            .read()
            .iter()
            .map(|(n, g)| (n.to_string(), g.get()))
            .collect(),
        hists: HISTS.read().iter().map(|(n, h)| h.snapshot(n)).collect(),
    }
}
