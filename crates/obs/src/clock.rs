//! Time domains and the injected clock abstraction.
//!
//! Pipeline components stamp monotonic **wall** time; simnet components
//! stamp **sim** time. Both are carried as nanoseconds so one trace can
//! hold both, with the [`Domain`] tag keeping them from ever being
//! compared across domains.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Which clock a stamp came from. Durations are only meaningful within
/// one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Monotonic process wall time.
    Wall,
    /// Deterministic simulated time (1 sim-ms = 1 dataset-second in the
    /// fleet harness).
    Sim,
}

impl Domain {
    /// Stable label used in the JSON-lines export.
    pub fn label(self) -> &'static str {
        match self {
            Domain::Wall => "wall",
            Domain::Sim => "sim",
        }
    }
}

/// A point in time: a domain tag plus nanoseconds since that domain's
/// epoch (process start for wall, simulation start for sim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    pub domain: Domain,
    pub nanos: u64,
}

impl Stamp {
    /// A sim-domain stamp from simulated milliseconds.
    #[inline]
    pub fn sim_ms(ms: u64) -> Self {
        Stamp {
            domain: Domain::Sim,
            nanos: ms.saturating_mul(1_000_000),
        }
    }

    /// A wall-domain stamp for "now".
    #[inline]
    pub fn wall_now() -> Self {
        Stamp {
            domain: Domain::Wall,
            nanos: wall_nanos(),
        }
    }
}

/// Source of stamps, injected into spans and events so each component
/// records in its native time domain.
pub trait Clock {
    fn stamp(&self) -> Stamp;
}

static WALL_EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the (lazily pinned) process wall epoch.
#[inline]
pub(crate) fn wall_nanos() -> u64 {
    WALL_EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Monotonic wall clock; the default for pipeline spans and events.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallClock;

impl Clock for WallClock {
    #[inline]
    fn stamp(&self) -> Stamp {
        Stamp::wall_now()
    }
}

/// Deterministic sim-time clock. The owning simulation advances it
/// (`set_ms`) as its event loop steps; instrumented components anywhere
/// downstream then stamp sim time without threading `now` through every
/// call.
#[derive(Debug, Default)]
pub struct SimClock {
    now_ms: AtomicU64,
}

impl SimClock {
    pub const fn new() -> Self {
        SimClock {
            now_ms: AtomicU64::new(0),
        }
    }

    /// Advance (or rewind, for a fresh run) the simulated clock.
    #[inline]
    pub fn set_ms(&self, ms: u64) {
        self.now_ms.store(ms, Ordering::Relaxed);
    }

    #[inline]
    pub fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::Relaxed)
    }
}

impl Clock for SimClock {
    #[inline]
    fn stamp(&self) -> Stamp {
        Stamp::sim_ms(self.now_ms())
    }
}
