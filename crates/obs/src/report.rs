//! Trace summarization backing the `obs_report` bin: parses a JSON-lines
//! trace back into memory and renders per-window wall breakdowns,
//! per-campaign cost, transport latency percentiles, and cache hit
//! rates — all sourced from the same instruments the pipeline's delta
//! structs feed.

use crate::json::{self, JsonValue};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// One histogram read back from a trace.
#[derive(Debug, Clone)]
pub struct HistData {
    pub unit: String,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub le: Vec<u64>,
    pub counts: Vec<u64>,
}

/// One span read back from a trace.
#[derive(Debug, Clone)]
pub struct SpanData {
    pub id: u64,
    pub parent: u64,
    pub name: String,
    pub domain: String,
    pub start_ns: u64,
    pub end_ns: u64,
    pub attrs: JsonValue,
}

impl SpanData {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attrs.get(key)?.as_u64()
    }
}

/// One event read back from a trace.
#[derive(Debug, Clone)]
pub struct EventData {
    pub seq: u64,
    pub name: String,
    pub domain: String,
    pub at_ns: u64,
    pub attrs: JsonValue,
}

/// A parsed trace, ready to summarize.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    pub dropped: u64,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub hists: BTreeMap<String, HistData>,
    pub spans: Vec<SpanData>,
    pub events: Vec<EventData>,
}

/// Parse a whole JSON-lines trace. Unknown record types are skipped (a
/// newer exporter must not break an older reporter); malformed lines
/// are errors.
pub fn parse_trace(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let tag = v.get("t").and_then(|t| t.as_str()).unwrap_or("");
        let name = || {
            v.get("name")
                .and_then(|n| n.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("line {}: missing name", lineno + 1))
        };
        let num = |key: &str| v.get(key).and_then(|x| x.as_u64()).unwrap_or(0);
        match tag {
            "meta" => summary.dropped = num("dropped"),
            "counter" => {
                summary.counters.insert(name()?, num("value"));
            }
            "gauge" => {
                let value = v.get("value").and_then(|x| x.as_i64()).unwrap_or(0);
                summary.gauges.insert(name()?, value);
            }
            "hist" => {
                let read_arr = |key: &str| -> Vec<u64> {
                    v.get(key)
                        .and_then(|a| a.as_array())
                        .map(|items| items.iter().filter_map(|i| i.as_u64()).collect())
                        .unwrap_or_default()
                };
                summary.hists.insert(
                    name()?,
                    HistData {
                        unit: v
                            .get("unit")
                            .and_then(|u| u.as_str())
                            .unwrap_or("")
                            .to_string(),
                        count: num("count"),
                        sum: num("sum"),
                        min: num("min"),
                        max: num("max"),
                        le: read_arr("le"),
                        counts: read_arr("counts"),
                    },
                );
            }
            "span" => summary.spans.push(SpanData {
                id: num("id"),
                parent: num("parent"),
                name: name()?,
                domain: v
                    .get("domain")
                    .and_then(|d| d.as_str())
                    .unwrap_or("")
                    .to_string(),
                start_ns: num("start_ns"),
                end_ns: num("end_ns"),
                attrs: v
                    .get("attrs")
                    .cloned()
                    .unwrap_or(JsonValue::Obj(Vec::new())),
            }),
            "event" => summary.events.push(EventData {
                seq: num("seq"),
                name: name()?,
                domain: v
                    .get("domain")
                    .and_then(|d| d.as_str())
                    .unwrap_or("")
                    .to_string(),
                at_ns: num("at_ns"),
                attrs: v
                    .get("attrs")
                    .cloned()
                    .unwrap_or(JsonValue::Obj(Vec::new())),
            }),
            _ => {}
        }
    }
    summary.events.sort_by_key(|e| e.seq);
    Ok(summary)
}

fn family_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

impl TraceSummary {
    /// Instrument families (name prefix before the first `.`) with any
    /// recorded activity: a nonzero counter, a non-empty histogram, or
    /// any span/event.
    pub fn active_families(&self) -> BTreeSet<String> {
        let mut families = BTreeSet::new();
        for (name, value) in &self.counters {
            if *value > 0 {
                families.insert(family_of(name).to_string());
            }
        }
        for (name, hist) in &self.hists {
            if hist.count > 0 {
                families.insert(family_of(name).to_string());
            }
        }
        for span in &self.spans {
            families.insert(family_of(&span.name).to_string());
        }
        for event in &self.events {
            families.insert(family_of(&event.name).to_string());
        }
        families
    }

    /// Required families absent from the trace.
    pub fn missing_families(&self, required: &[String]) -> Vec<String> {
        let active = self.active_families();
        required
            .iter()
            .filter(|f| !active.contains(*f))
            .cloned()
            .collect()
    }

    /// Exact delivery-latency samples (ms) grouped by the most recent
    /// `obs.phase` marker; `""` for samples before any marker. These are
    /// the same per-ack samples `BENCH_e13.json` summarizes, so
    /// nearest-rank percentiles over a phase match the bench numbers
    /// exactly.
    pub fn latency_segments(&self) -> Vec<(String, Vec<u64>)> {
        let mut segments: Vec<(String, Vec<u64>)> = vec![(String::new(), Vec::new())];
        for event in &self.events {
            match event.name.as_str() {
                "obs.phase" => {
                    let phase = event
                        .attrs
                        .get("phase")
                        .and_then(|p| p.as_str())
                        .unwrap_or("?")
                        .to_string();
                    segments.push((phase, Vec::new()));
                }
                "reliable.delivered" => {
                    if let Some(ms) = event.attrs.get("latency_ms").and_then(|l| l.as_u64()) {
                        segments
                            .last_mut()
                            .expect("seeded with one segment")
                            .1
                            .push(ms);
                    }
                }
                _ => {}
            }
        }
        segments.retain(|(_, samples)| !samples.is_empty());
        segments
    }
}

/// Nearest-rank percentile over ascending `sorted`, `q` in 0..=1 — the
/// same formula the e13 bench uses, so reported percentiles match
/// `BENCH_e13.json` exactly.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn ratio_pct(hits: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        hits as f64 * 100.0 / total as f64
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Render the human-readable run summary.
pub fn render(summary: &TraceSummary) -> String {
    let mut out = String::new();
    let counter = |name: &str| summary.counters.get(name).copied().unwrap_or(0);
    let _ = writeln!(
        out,
        "trace: {} spans, {} events, {} counters, {} histograms{}",
        summary.spans.len(),
        summary.events.len(),
        summary.counters.len(),
        summary.hists.len(),
        if summary.dropped > 0 {
            format!(" ({} records dropped at cap)", summary.dropped)
        } else {
            String::new()
        }
    );
    let families: Vec<String> = summary.active_families().into_iter().collect();
    let _ = writeln!(out, "active families: {}", families.join(", "));

    // Per-window wall breakdown: privapi.window spans with their
    // streaming.advance / engine.sweep children summed by name.
    let windows: Vec<&SpanData> = summary
        .spans
        .iter()
        .filter(|s| s.name == "privapi.window")
        .collect();
    if !windows.is_empty() {
        let mut children_of: BTreeMap<u64, BTreeMap<&str, u64>> = BTreeMap::new();
        for span in &summary.spans {
            if span.parent != 0 {
                *children_of
                    .entry(span.parent)
                    .or_default()
                    .entry(span.name.as_str())
                    .or_default() += span.duration_ns();
            }
        }
        let _ = writeln!(
            out,
            "\nper-window wall breakdown ({} windows):",
            windows.len()
        );
        let _ = writeln!(
            out,
            "  {:>6} {:>10} {:>10} {:>10} {:>10}",
            "day", "total_ms", "advance_ms", "sweep_ms", "other_ms"
        );
        let shown = windows.len().min(24);
        for window in windows.iter().take(shown) {
            let day = window.attr_u64("day").unwrap_or(0);
            let total = window.duration_ns();
            let kids = children_of.get(&window.id);
            let advance = kids
                .and_then(|k| k.get("streaming.advance").copied())
                .unwrap_or(0);
            let sweep = kids
                .and_then(|k| k.get("engine.sweep").copied())
                .unwrap_or(0);
            let other = total.saturating_sub(advance + sweep);
            let _ = writeln!(
                out,
                "  {:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                day,
                ms(total),
                ms(advance),
                ms(sweep),
                ms(other)
            );
        }
        if windows.len() > shown {
            let _ = writeln!(out, "  ... {} more windows elided", windows.len() - shown);
        }
        let total: u64 = windows.iter().map(|w| w.duration_ns()).sum();
        let _ = writeln!(
            out,
            "  total {:.3} ms across {} windows (mean {:.3} ms)",
            ms(total),
            windows.len(),
            ms(total / windows.len() as u64)
        );
    }

    // Per-campaign cost: campaign.publish spans keyed by campaign id.
    let mut campaigns: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for span in summary
        .spans
        .iter()
        .filter(|s| s.name == "campaign.publish")
    {
        let entry = campaigns
            .entry(span.attr_u64("campaign").unwrap_or(0))
            .or_default();
        entry.0 += 1;
        entry.1 += span.duration_ns();
    }
    if !campaigns.is_empty() {
        let _ = writeln!(out, "\nper-campaign cost ({} campaigns):", campaigns.len());
        let _ = writeln!(
            out,
            "  {:>10} {:>8} {:>10} {:>10}",
            "campaign", "windows", "total_ms", "mean_ms"
        );
        for (id, (windows, total)) in &campaigns {
            let _ = writeln!(
                out,
                "  {:>10} {:>8} {:>10.3} {:>10.3}",
                id,
                windows,
                ms(*total),
                ms(total / windows.max(&1))
            );
        }
    }

    // Transport delivery latency: exact per-ack samples, segmented by
    // phase markers, plus the aggregate histogram if present.
    let segments = summary.latency_segments();
    if !segments.is_empty() {
        let _ = writeln!(
            out,
            "\ntransport delivery latency (sim-ms, exact per-ack samples):"
        );
        let _ = writeln!(
            out,
            "  {:<24} {:>8} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "phase", "acks", "min", "p50", "p95", "p99", "max"
        );
        let mut all: Vec<u64> = Vec::new();
        for (phase, samples) in &segments {
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let label = if phase.is_empty() {
                "(unphased)"
            } else {
                phase.as_str()
            };
            let _ = writeln!(
                out,
                "  {:<24} {:>8} {:>6} {:>6} {:>6} {:>6} {:>6}",
                label,
                sorted.len(),
                sorted.first().copied().unwrap_or(0),
                percentile(&sorted, 0.50),
                percentile(&sorted, 0.95),
                percentile(&sorted, 0.99),
                sorted.last().copied().unwrap_or(0),
            );
            all.extend_from_slice(&sorted);
        }
        if segments.len() > 1 {
            all.sort_unstable();
            let _ = writeln!(
                out,
                "  {:<24} {:>8} {:>6} {:>6} {:>6} {:>6} {:>6}",
                "(all)",
                all.len(),
                all.first().copied().unwrap_or(0),
                percentile(&all, 0.50),
                percentile(&all, 0.95),
                percentile(&all, 0.99),
                all.last().copied().unwrap_or(0),
            );
        }
    }
    if let Some(hist) = summary.hists.get("reliable.delivery_latency_ms") {
        if hist.count > 0 {
            let _ = writeln!(
                out,
                "  histogram aggregate: {} acks, mean {:.1} ms, min {} ms, max {} ms",
                hist.count,
                hist.sum as f64 / hist.count as f64,
                hist.min,
                hist.max
            );
        }
    }

    // Cache hit rates, straight from the instruments the delta structs
    // feed.
    let mut cache_lines: Vec<String> = Vec::new();
    let pairs: [(&str, &str, &str); 4] = [
        (
            "streaming session reuse",
            "streaming.users_reused",
            "streaming.users_refreshed",
        ),
        (
            "strategy user reuse",
            "strategy.users_reused",
            "strategy.users_refreshed",
        ),
        (
            "strategy shard reuse",
            "strategy.shards_reused",
            "strategy.shards_refreshed",
        ),
        (
            "engine candidate cache",
            "engine.cache_hits",
            "engine.cache_misses",
        ),
    ];
    for (label, hit_name, miss_name) in pairs {
        let hits = counter(hit_name);
        let misses = counter(miss_name);
        if hits + misses > 0 {
            cache_lines.push(format!(
                "  {label:<26} {:>6.2}% ({hits} hit / {misses} miss)",
                ratio_pct(hits, hits + misses)
            ));
        }
    }
    let baseline_reuses = counter("streaming.baseline_reuses");
    let baseline_rebuilds = counter("streaming.baseline_rebuilds");
    if baseline_reuses + baseline_rebuilds > 0 {
        cache_lines.push(format!(
            "  {:<26} {:>6.2}% ({baseline_reuses} reused / {baseline_rebuilds} rebuilt)",
            "baseline fold reuse",
            ratio_pct(baseline_reuses, baseline_reuses + baseline_rebuilds)
        ));
    }
    if !cache_lines.is_empty() {
        let _ = writeln!(out, "\ncache hit rates:");
        for line in cache_lines {
            let _ = writeln!(out, "{line}");
        }
    }

    // Headline counters per family.
    let mut by_family: BTreeMap<&str, Vec<(&String, &u64)>> = BTreeMap::new();
    for (name, value) in &summary.counters {
        if *value > 0 {
            by_family
                .entry(family_of(name))
                .or_default()
                .push((name, value));
        }
    }
    if !by_family.is_empty() {
        let _ = writeln!(out, "\ncounters:");
        for (family, counters) in by_family {
            let rendered: Vec<String> = counters
                .iter()
                .map(|(name, value)| {
                    format!(
                        "{}={value}",
                        name.strip_prefix(family)
                            .unwrap_or(name)
                            .trim_start_matches('.')
                    )
                })
                .collect();
            let _ = writeln!(out, "  {family}: {}", rendered.join(" "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_matches_nearest_rank() {
        let samples = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&samples, 0.50), 6);
        assert_eq!(percentile(&samples, 0.95), 10);
        assert_eq!(percentile(&samples, 0.0), 1);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn parses_and_segments_a_synthetic_trace() {
        let trace = concat!(
            "{\"t\":\"meta\",\"version\":1,\"spans\":1,\"events\":4,\"dropped\":0}\n",
            "{\"t\":\"counter\",\"name\":\"ingest.records\",\"value\":12}\n",
            "{\"t\":\"counter\",\"name\":\"streaming.users_reused\",\"value\":9}\n",
            "{\"t\":\"counter\",\"name\":\"streaming.users_refreshed\",\"value\":3}\n",
            "{\"t\":\"span\",\"id\":1,\"parent\":0,\"name\":\"privapi.window\",\"domain\":\"wall\",\"start_ns\":0,\"end_ns\":5000000,\"attrs\":{\"day\":2}}\n",
            "{\"t\":\"event\",\"seq\":0,\"name\":\"obs.phase\",\"domain\":\"wall\",\"at_ns\":0,\"attrs\":{\"phase\":\"chaos\"}}\n",
            "{\"t\":\"event\",\"seq\":1,\"name\":\"reliable.delivered\",\"domain\":\"sim\",\"at_ns\":1,\"attrs\":{\"latency_ms\":10}}\n",
            "{\"t\":\"event\",\"seq\":2,\"name\":\"reliable.delivered\",\"domain\":\"sim\",\"at_ns\":2,\"attrs\":{\"latency_ms\":30}}\n",
            "{\"t\":\"event\",\"seq\":3,\"name\":\"reliable.delivered\",\"domain\":\"sim\",\"at_ns\":3,\"attrs\":{\"latency_ms\":20}}\n",
        );
        let summary = parse_trace(trace).unwrap();
        assert_eq!(summary.counters["ingest.records"], 12);
        let families = summary.active_families();
        for family in ["ingest", "streaming", "privapi", "reliable", "obs"] {
            assert!(
                families.contains(family),
                "{family} missing from {families:?}"
            );
        }
        assert!(summary
            .missing_families(&["vm".to_string(), "ingest".to_string()])
            .contains(&"vm".to_string()));
        let segments = summary.latency_segments();
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].0, "chaos");
        assert_eq!(segments[0].1, vec![10, 30, 20]);
        let rendered = render(&summary);
        assert!(rendered.contains("per-window wall breakdown"));
        assert!(rendered.contains("chaos"));
        assert!(rendered.contains("streaming session reuse"));
    }
}
