//! Minimal recursive-descent JSON parser — just enough for `obs_report`
//! to read back the traces this crate exports (and the repo's bench
//! JSON), with no external dependency.
//!
//! Numbers are held as `f64`; the exported counters fit well inside the
//! 2^53 exact-integer range.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Insertion-ordered key/value pairs (duplicate keys keep the last).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not produced by our
                            // exporter; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {other:?} at byte {}", self.pos))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_i64(), Some(-3));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let v = parse(r#""café → λ""#).unwrap();
        assert_eq!(v.as_str(), Some("café → λ"));
    }
}
