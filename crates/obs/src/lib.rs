//! Unified observability layer: spans, a metrics registry, and
//! machine-readable JSON-lines traces across the whole pipeline.
//!
//! Everything in this crate is gated on a single process-wide switch
//! ([`enable`] / [`disable`]). While recording is **off** (the default),
//! every entry point degrades to one relaxed atomic load and a branch —
//! no allocation, no locking, no clock read — so instrumented hot paths
//! pay effectively nothing. While recording is **on**, instruments
//! accumulate into lock-free atomics and span/event records buffer into
//! a process-global trace that [`export::to_jsonl`] serializes.
//!
//! Two time domains coexist ([`Domain`]): pipeline components stamp
//! monotonic **wall** time via the built-in [`WallClock`], while simnet
//! components stamp **sim** time by injecting a [`SimClock`] that the
//! simulation advances. Instruments are order-independent atomic sums,
//! so recording never perturbs determinism: published windows stay
//! byte-identical with recording on or off (proptested in
//! `tests/observability.rs`).
//!
//! ```
//! obs::reset();
//! obs::enable();
//! obs::count("demo.widgets", 3);
//! {
//!     let mut span = obs::span("demo.frobnicate");
//!     span.set_attr("widgets", 3u64);
//! }
//! obs::disable();
//! let trace = obs::export::to_jsonl();
//! assert!(trace.contains("demo.widgets"));
//! assert!(trace.contains("demo.frobnicate"));
//! ```

pub mod clock;
pub mod export;
pub mod json;
pub mod metrics;
pub mod report;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};

pub use clock::{Clock, Domain, SimClock, Stamp, WallClock};
pub use metrics::{Buckets, Counter, Gauge, Histogram};
pub use trace::{AttrValue, Span};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn recording on process-wide.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn recording off process-wide. Already-recorded data is kept until
/// [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether recording is currently on. This is the no-op fast path: one
/// relaxed load, checked before any other work in every entry point.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear every recorded span/event and zero every registered instrument
/// (registrations themselves are kept — instrument names are interned
/// once per process). Does not change the enabled flag.
pub fn reset() {
    metrics::reset_values();
    trace::reset();
}

/// Add `by` to the named counter. No-op while recording is off.
#[inline]
pub fn count(name: &'static str, by: u64) {
    if !enabled() {
        return;
    }
    metrics::counter(name).add(by);
}

/// Set the named gauge. No-op while recording is off.
#[inline]
pub fn gauge_set(name: &'static str, value: i64) {
    if !enabled() {
        return;
    }
    metrics::gauge(name).set(value);
}

/// Record `value` into the named fixed-bucket histogram. The bucket
/// `scale` is fixed at first use; later calls must pass the same scale.
/// No-op while recording is off.
#[inline]
pub fn observe(name: &'static str, scale: Buckets, value: u64) {
    if !enabled() {
        return;
    }
    metrics::histogram(name, scale).record(value);
}

/// Start a wall-clock span. The span records itself (with its duration
/// and parent) when dropped. Returns an inert guard while recording is
/// off.
#[inline]
pub fn span(name: &'static str) -> Span<'static> {
    Span::start_wall(name)
}

/// Start a span stamped by an injected clock (sim components pass their
/// [`SimClock`]). Returns an inert guard while recording is off.
#[inline]
pub fn span_at<'a>(name: &'static str, clock: &'a dyn Clock) -> Span<'a> {
    Span::start_at(name, clock)
}

/// Record a point event stamped with wall time. Attr values that
/// allocate (strings) should be gated on [`enabled`] at the call site;
/// numeric attrs are free to construct.
#[inline]
pub fn event(name: &'static str, attrs: &[(&'static str, AttrValue)]) {
    if !enabled() {
        return;
    }
    trace::record_event(name, &WallClock, attrs);
}

/// Record a point event stamped by an injected clock (sim time).
#[inline]
pub fn event_at(name: &'static str, clock: &dyn Clock, attrs: &[(&'static str, AttrValue)]) {
    if !enabled() {
        return;
    }
    trace::record_event(name, clock, attrs);
}

/// Record a point event at an explicit sim-time millisecond stamp — for
/// components (like the reliable transport endpoints) that receive
/// `now_ms` as a call parameter instead of holding a clock.
#[inline]
pub fn event_sim_ms(name: &'static str, now_ms: u64, attrs: &[(&'static str, AttrValue)]) {
    if !enabled() {
        return;
    }
    trace::record_event_stamped(name, Stamp::sim_ms(now_ms), attrs);
}

/// Mark a phase boundary in the trace. `obs_report` segments
/// order-dependent summaries (e.g. transport latency percentiles) by
/// the most recent phase marker, so multi-run drivers like `bench_summary`
/// can keep their runs distinguishable inside one trace.
#[inline]
pub fn phase(name: &'static str) {
    if !enabled() {
        return;
    }
    trace::record_event(
        "obs.phase",
        &WallClock,
        &[("phase", AttrValue::Str(name.into()))],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global recorder is process-wide state shared by every #[test]
    // thread, so the unit tests here serialize on one lock.
    static TEST_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn disabled_is_inert() {
        let _guard = TEST_LOCK.lock();
        reset();
        disable();
        count("test.counter", 5);
        observe("test.hist", Buckets::LatencyMs, 10);
        {
            let mut s = span("test.span");
            s.set_attr("k", 1u64);
            assert_eq!(s.id(), 0);
        }
        event("test.event", &[]);
        // Registrations persist across reset, so check for zero values
        // rather than absence (another test may have interned the name).
        let snap = metrics::snapshot();
        assert!(snap
            .counters
            .iter()
            .all(|(n, v)| !n.starts_with("test.") || *v == 0));
        assert!(snap
            .hists
            .iter()
            .all(|h| !h.name.starts_with("test.") || h.count == 0));
        let (spans, events, _) = trace::snapshot();
        assert!(spans.iter().all(|s| s.name != "test.span"));
        assert!(events.iter().all(|e| e.name != "test.event"));
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let _guard = TEST_LOCK.lock();
        reset();
        enable();
        count("test.acc", 2);
        count("test.acc", 3);
        observe("test.lat", Buckets::LatencyMs, 7);
        observe("test.lat", Buckets::LatencyMs, 900);
        disable();
        let snap = metrics::snapshot();
        let c = snap.counters.iter().find(|(n, _)| n == "test.acc").unwrap();
        assert_eq!(c.1, 5);
        let h = snap.hists.iter().find(|h| h.name == "test.lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 907);
        assert_eq!(h.min, 7);
        assert_eq!(h.max, 900);
        assert_eq!(h.counts.iter().sum::<u64>(), 2);
    }

    #[test]
    fn spans_nest_and_stamp_domains() {
        let _guard = TEST_LOCK.lock();
        reset();
        enable();
        let sim = SimClock::new();
        sim.set_ms(42);
        let outer_id;
        {
            let outer = span("test.outer");
            outer_id = outer.id();
            assert_ne!(outer_id, 0);
            {
                let inner = span("test.inner");
                assert_ne!(inner.id(), outer_id);
            }
            let _sim_span = span_at("test.sim", &sim);
            event_at("test.tick", &sim, &[("n", AttrValue::U64(1))]);
        }
        disable();
        let (spans, events, dropped) = trace::snapshot();
        assert_eq!(dropped, 0);
        let outer = spans.iter().find(|s| s.name == "test.outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "test.inner").unwrap();
        let simsp = spans.iter().find(|s| s.name == "test.sim").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(simsp.parent, outer.id);
        assert_eq!(outer.domain, Domain::Wall);
        assert_eq!(simsp.domain, Domain::Sim);
        assert_eq!(simsp.start_ns, 42_000_000);
        let tick = events.iter().find(|e| e.name == "test.tick").unwrap();
        assert_eq!(tick.domain, Domain::Sim);
        assert_eq!(tick.at_ns, 42_000_000);
        assert!(outer.end_ns >= outer.start_ns);
    }

    #[test]
    fn export_jsonl_round_trips_through_the_parser() {
        let _guard = TEST_LOCK.lock();
        reset();
        enable();
        count("test.round", 9);
        observe("test.bytes", Buckets::Bytes, 4096);
        {
            let mut s = span("test.trip");
            s.set_attr("label", "with \"quotes\" and \\slashes\\");
        }
        disable();
        let jsonl = export::to_jsonl();
        let mut saw_counter = false;
        let mut saw_span = false;
        let mut saw_hist = false;
        for line in jsonl.lines() {
            let v = json::parse(line).expect("every exported line parses");
            match v.get("t").and_then(|t| t.as_str()) {
                Some("counter")
                    if v.get("name").and_then(|n| n.as_str()) == Some("test.round") =>
                {
                    assert_eq!(v.get("value").and_then(|x| x.as_u64()), Some(9));
                    saw_counter = true;
                }
                Some("hist")
                    if v.get("name").and_then(|n| n.as_str()) == Some("test.bytes") =>
                {
                    assert_eq!(v.get("unit").and_then(|x| x.as_str()), Some("bytes"));
                    saw_hist = true;
                }
                Some("span") if v.get("name").and_then(|n| n.as_str()) == Some("test.trip") => {
                    let attrs = v.get("attrs").unwrap();
                    assert_eq!(
                        attrs.get("label").and_then(|x| x.as_str()),
                        Some("with \"quotes\" and \\slashes\\")
                    );
                    saw_span = true;
                }
                _ => {}
            }
        }
        assert!(saw_counter && saw_span && saw_hist);
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let _guard = TEST_LOCK.lock();
        reset();
        enable();
        count("test.keep", 4);
        reset();
        count("test.keep", 1);
        disable();
        let snap = metrics::snapshot();
        let c = snap
            .counters
            .iter()
            .find(|(n, _)| n == "test.keep")
            .unwrap();
        assert_eq!(c.1, 1);
    }
}
