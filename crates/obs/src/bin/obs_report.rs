//! Summarize a JSON-lines observability trace.
//!
//! ```bash
//! cargo run -p obs --bin obs_report --release -- obs_trace.jsonl
//! # CI gate: required instrument families must be present and non-empty
//! cargo run -p obs --bin obs_report --release -- obs_trace.jsonl \
//!     --require ingest,reliable,streaming,vm
//! ```
//!
//! Prints the run summary (per-window wall breakdown, per-campaign
//! cost, transport delivery-latency percentiles, cache hit rates).
//! With `--require fam1,fam2,...` it exits 1 if any listed instrument
//! family recorded nothing — the "Observability holds" CI step builds
//! on this. Unknown flags exit 2, never silently default.

use obs::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut require: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--require" => match iter.next() {
                Some(value) if !value.starts_with("--") => {
                    require.extend(value.split(',').map(|s| s.trim().to_string()));
                }
                _ => {
                    eprintln!("--require needs a comma-separated family list");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unexpected flag {other:?}; usage: obs_report <trace.jsonl> [--require fam1,fam2]");
                std::process::exit(2);
            }
            other => {
                if path.replace(other.to_string()).is_some() {
                    eprintln!("exactly one trace path expected");
                    std::process::exit(2);
                }
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: obs_report <trace.jsonl> [--require fam1,fam2]");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let summary = report::parse_trace(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });
    print!("{}", report::render(&summary));
    if !require.is_empty() {
        let missing = summary.missing_families(&require);
        if missing.is_empty() {
            println!("\nrequired families present: {}", require.join(", "));
        } else {
            eprintln!(
                "\nmissing required instrument families: {}",
                missing.join(", ")
            );
            std::process::exit(1);
        }
    }
}
