//! The orchestrator's governing property: every campaign's per-window
//! winners are **byte-identical** to running that campaign alone through
//! a [`privapi::streaming::StreamingPublisher`] fed its filtered window
//! stream — across generator seeds, sparse participation and subset
//! filters.

use campaign::{Campaign, CampaignId, CampaignOutcome, Orchestrator};
use mobility::gen::{thin_participation_salted, CityModel, PopulationConfig};
use mobility::{ParticipantFilter, UserId, WindowedDataset};
use privapi::pipeline::{PrivApi, PrivApiConfig};
use privapi::streaming::StreamingPublisher;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// For each registered campaign — a full-population one, a
    /// user-subset one, and a full-population one at a different
    /// selection seed (same attack configuration, so all three lean on
    /// one shared original-side session) — the orchestrated releases
    /// must equal the standalone streaming releases bit for bit, day by
    /// day, including which days are skipped (filter emptied the window)
    /// and which days fail (no feasible strategy on the prefix).
    #[test]
    fn orchestrated_winners_match_standalone_streaming(
        seed in any::<u64>(),
        users in 2usize..5,
        days in 2usize..4,
    ) {
        let data = CityModel::builder()
            .seed(seed ^ 0xE12)
            .build()
            .generate_population(&PopulationConfig {
                users,
                days,
                sampling_interval_s: 300,
                gps_noise_m: 5.0,
                leisure_probability: 0.3,
            });
        // Sparse participation: some windows genuinely miss users, so the
        // reuse and derivation paths execute.
        let data = thin_participation_salted(&data, 50, seed);
        let windows = WindowedDataset::partition(&data);
        let subset = ParticipantFilter::users(
            (0..users as u64 / 2 + 1).map(UserId).collect::<Vec<_>>(),
        );
        let other_seed = PrivApiConfig {
            seed: seed ^ 0x5EED,
            ..PrivApiConfig::default()
        };
        // Campaign 4 is fingerprint-identical to campaign 1 (same pool,
        // seed, attack and objective on the same session), so it rides
        // the protected-side donor path — its releases must STILL be
        // bitwise-equal to its own standalone replay.
        let campaigns: Vec<(u64, PrivApiConfig, ParticipantFilter)> = vec![
            (1, PrivApiConfig::default(), ParticipantFilter::All),
            (2, PrivApiConfig::default(), subset),
            (3, other_seed, ParticipantFilter::All),
            (4, PrivApiConfig::default(), ParticipantFilter::All),
        ];

        let mut orchestrator = Orchestrator::new();
        for (id, config, filter) in &campaigns {
            orchestrator
                .register(
                    Campaign::new(*id, format!("c{id}"), *config)
                        .with_filter(filter.clone()),
                )
                .unwrap();
        }
        prop_assert_eq!(orchestrator.shared_sessions(), 1,
            "same attack configuration must share one session");

        let mut reports = Vec::new();
        for window in &windows {
            reports.push(orchestrator.advance_day(window).unwrap());
        }

        // The follower campaign adopted every protected state it
        // published with — never re-anonymizing a user the leader
        // already covered.
        for report in &reports {
            if let Some(release) = report.release_of(CampaignId(4)) {
                prop_assert!(release.strategies.users_donated > 0,
                    "day {}: follower must adopt the leader's states", report.day);
                prop_assert_eq!(release.strategies.users_refreshed, 0);
                prop_assert_eq!(release.strategies.shards_refreshed, 0);
            }
        }

        for (id, config, filter) in &campaigns {
            let mut standalone =
                StreamingPublisher::from_privapi(PrivApi::new(*config));
            for (window, report) in windows.iter().zip(&reports) {
                let outcome = report
                    .outcomes
                    .iter()
                    .find(|(c, _)| *c == CampaignId(*id))
                    .map(|(_, o)| o)
                    .expect("every campaign reports every day");
                match filter.filter_window(window) {
                    None => {
                        prop_assert!(
                            matches!(outcome, CampaignOutcome::Skipped(_)),
                            "campaign {} day {}: empty filtered window must skip, got {:?}",
                            id, window.day(), outcome
                        );
                    }
                    Some(filtered) => match (outcome, standalone.publish_window(&filtered)) {
                        (CampaignOutcome::Published(release), Ok(expected)) => {
                            prop_assert_eq!(
                                &release.published.selection, &expected.published.selection,
                                "campaign {} day {}", id, window.day()
                            );
                            prop_assert_eq!(
                                &release.published.strategy, &expected.published.strategy,
                                "campaign {} day {}", id, window.day()
                            );
                            prop_assert_eq!(
                                &release.published.privacy, &expected.published.privacy,
                                "campaign {} day {}", id, window.day()
                            );
                            prop_assert_eq!(
                                &release.published.dataset, &expected.published.dataset,
                                "campaign {} day {}", id, window.day()
                            );
                            prop_assert_eq!(release.day, window.day());
                        }
                        (CampaignOutcome::Failed(a), Err(b)) => {
                            prop_assert_eq!(
                                format!("{a}"), format!("{b}"),
                                "campaign {} day {}: both paths must fail alike",
                                id, window.day()
                            );
                        }
                        (outcome, expected) => {
                            return Err(TestCaseError::fail(format!(
                                "campaign {} day {}: orchestrated {outcome:?} vs \
                                 standalone {expected:?} disagree",
                                id,
                                window.day()
                            )));
                        }
                    },
                }
            }
        }
    }
}
