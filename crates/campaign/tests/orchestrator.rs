//! Integration tests of the multi-campaign orchestrator: the
//! shared-extraction counting invariants, donor derivation, and the
//! campaign lifecycle.

use campaign::{
    Campaign, CampaignError, CampaignId, CampaignOutcome, CampaignStatus, Orchestrator,
    SkipReason,
};
use geo::GeoPoint;
use mobility::gen::{CityModel, PopulationConfig};
use mobility::{
    Dataset, LocationRecord, ParticipantFilter, Timestamp, UserId, WindowedDataset, DAY_SECONDS,
};
use privapi::attack::{PoiAttack, PoiAttackConfig};
use privapi::pipeline::PrivApiConfig;
use privapi::streaming::{PopulationCache, StreamingPublisher};

fn dataset(seed: u64, users: usize, days: usize) -> Dataset {
    CityModel::builder()
        .seed(seed)
        .build()
        .generate_population(&PopulationConfig {
            users,
            days,
            sampling_interval_s: 240,
            gps_noise_m: 5.0,
            leisure_probability: 0.4,
        })
}

/// Original-side-only per-user extraction cost of one streaming replay:
/// what a session cache alone (no candidate evaluation) pays.
fn original_side_cost(windows: &WindowedDataset) -> usize {
    let probe = PoiAttack::default();
    let mut cache = PopulationCache::new();
    for window in windows {
        cache.advance(&probe, window).unwrap();
    }
    probe.user_extractions()
}

/// Total per-user extraction cost (original + protected side) of one
/// standalone streaming campaign over the windows.
fn standalone_cost(windows: &WindowedDataset, config: PrivApiConfig) -> usize {
    let probe = PoiAttack::default();
    let privapi = privapi::pipeline::PrivApi::new(config).with_attack(probe.clone());
    let mut publisher = StreamingPublisher::from_privapi(privapi);
    for window in windows {
        publisher.publish_window(window).unwrap();
    }
    probe.user_extractions()
}

#[test]
fn same_config_campaigns_share_the_original_side_extraction() {
    // The headline counter: K campaigns with identical (pool, seed,
    // attack, objective) fingerprints on one session pay the whole
    // per-user extraction bill ONCE, not K times — the original side
    // through the shared session, the protected side through donor
    // snapshots (the registration-order leader evaluates; followers
    // adopt its per-candidate state by pointer clone). The
    // orchestrator's total is exactly one standalone replay.
    let windows = WindowedDataset::partition(&dataset(61, 4, 3));
    let config = PrivApiConfig::default();
    let original = original_side_cost(&windows);
    let standalone = standalone_cost(&windows, config);
    assert!(original > 0 && standalone > original);

    const K: usize = 3;
    let probe = PoiAttack::default();
    let mut orchestrator = Orchestrator::new();
    for k in 0..K {
        orchestrator
            .register(
                Campaign::new(k as u64, format!("c{k}"), config).with_attack(probe.clone()),
            )
            .unwrap();
    }
    assert_eq!(
        orchestrator.shared_sessions(),
        1,
        "one session for K sharers"
    );
    for window in &windows {
        let report = orchestrator.advance_day(window).unwrap();
        assert_eq!(report.published().count(), K);
        assert_eq!(report.sessions.len(), 1, "the session advanced once");
        let releases: Vec<_> = report.published().collect();
        let leader = releases[0];
        assert!(leader.shared);
        assert_eq!(leader.strategies.users_donated, 0, "the leader pays");
        for follower in &releases[1..] {
            assert!(follower.shared);
            // Followers re-anonymize and re-attack nobody: every
            // candidate's protected state arrives from the leader.
            assert_eq!(follower.strategies.users_refreshed, 0);
            assert_eq!(follower.strategies.shards_refreshed, 0);
            assert!(follower.strategies.users_donated > 0);
            assert!(follower.strategies.shards_donated > 0);
            // Donor adoption is exact: byte-identical releases.
            assert_eq!(follower.published.selection, leader.published.selection);
            assert_eq!(follower.published.dataset, leader.published.dataset);
        }
    }
    assert_eq!(
        probe.user_extractions(),
        standalone,
        "K identical campaigns must cost one standalone replay, not {K}×"
    );
    // And no full-dataset pass anywhere: both cache layers stay on the
    // per-user delta paths for the (fully local) default pool.
    assert_eq!(probe.extractions(), 0);
}

#[test]
fn differing_config_campaigns_pay_exactly_their_own_pass() {
    let windows = WindowedDataset::partition(&dataset(67, 3, 3));
    let config = PrivApiConfig::default();
    let custom_attack_config = PoiAttackConfig {
        match_distance: geo::Meters::new(500.0),
        ..PoiAttackConfig::default()
    };

    // Reference costs, measured in isolation.
    let shared_probe = PoiAttack::default();
    let custom_probe = PoiAttack::new(custom_attack_config.clone());
    let standalone_default = standalone_cost(&windows, config);
    let standalone_custom = {
        let probe = PoiAttack::new(custom_attack_config.clone());
        let privapi = privapi::pipeline::PrivApi::new(config).with_attack(probe.clone());
        let mut publisher = StreamingPublisher::from_privapi(privapi);
        for window in &windows {
            publisher.publish_window(window).unwrap();
        }
        probe.user_extractions()
    };
    // Two same-config campaigns + one with its own attack parameters.
    let mut orchestrator = Orchestrator::new();
    for k in 0..2u64 {
        orchestrator
            .register(
                Campaign::new(k, format!("c{k}"), config).with_attack(shared_probe.clone()),
            )
            .unwrap();
    }
    orchestrator
        .register(Campaign::new(9, "custom", config).with_attack(custom_probe.clone()))
        .unwrap();
    assert_eq!(
        orchestrator.shared_sessions(),
        2,
        "differing attack configurations never share a session"
    );
    for window in &windows {
        let report = orchestrator.advance_day(window).unwrap();
        assert_eq!(report.published().count(), 3);
        assert_eq!(report.sessions.len(), 2);
    }
    // The same-config pair shares everything — one original-side pass
    // through the session, one protected-side pass through the donor
    // snapshot; the custom campaign pays exactly its own standalone cost
    // — no more, no less.
    assert_eq!(shared_probe.user_extractions(), standalone_default);
    assert_eq!(custom_probe.user_extractions(), standalone_custom);
}

#[test]
fn user_subset_campaign_derives_shards_from_the_shared_session() {
    // Users 1 and 2 pin the population bounding box, so the {1, 2}
    // subset's extraction grid equals the population's on every window —
    // the exact-derivation condition. The subset campaign must then add
    // ZERO original-side per-user extractions of its own.
    let mut records = Vec::new();
    for day in 0..3i64 {
        for i in 0..120i64 {
            let t = Timestamp::new(day * DAY_SECONDS + i * 300);
            records.push(LocationRecord::new(
                UserId(1),
                t,
                GeoPoint::new(45.70, 4.78).unwrap(),
            ));
            records.push(LocationRecord::new(
                UserId(2),
                t,
                GeoPoint::new(45.80, 4.90).unwrap(),
            ));
            records.push(LocationRecord::new(
                UserId(3),
                t,
                GeoPoint::new(45.75, 4.85).unwrap(),
            ));
        }
    }
    let windows = WindowedDataset::partition(&Dataset::from_records(records));
    let config = PrivApiConfig::default();
    let probe = PoiAttack::default();
    let mut orchestrator = Orchestrator::new();
    // Full-population campaign first, so the subset finds its donor.
    orchestrator
        .register(Campaign::new(1, "full", config).with_attack(probe.clone()))
        .unwrap();
    orchestrator
        .register(
            Campaign::new(2, "subset", config)
                .with_attack(probe.clone())
                .with_filter(ParticipantFilter::users([UserId(1), UserId(2)])),
        )
        .unwrap();

    let mut derived_total = 0;
    for window in &windows {
        let report = orchestrator.advance_day(window).unwrap();
        let subset = report.release_of(CampaignId(2)).expect("subset releases");
        assert!(!subset.shared);
        assert_eq!(
            subset.delta.users_refreshed,
            0,
            "day {}: every subset shard must be derived, not extracted",
            window.day()
        );
        derived_total += subset.delta.users_derived;
    }
    assert_eq!(derived_total, 2 * windows.len(), "both users, every window");
    // Grand total: shared original side (= full-population replay) paid
    // once, plus protected-side work for both campaigns — not a single
    // subset-side original extraction.
    let full_standalone = {
        let p = PoiAttack::default();
        let mut publisher = StreamingPublisher::from_privapi(
            privapi::pipeline::PrivApi::new(config).with_attack(p.clone()),
        );
        for window in &windows {
            publisher.publish_window(window).unwrap();
        }
        p.user_extractions()
    };
    let subset_protected = {
        let filter = ParticipantFilter::users([UserId(1), UserId(2)]);
        let filtered: Vec<_> = windows
            .iter()
            .filter_map(|w| filter.filter_window(w))
            .collect();
        // Standalone subset campaign: total cost...
        let p = PoiAttack::default();
        let mut publisher = StreamingPublisher::from_privapi(
            privapi::pipeline::PrivApi::new(config).with_attack(p.clone()),
        );
        for window in &filtered {
            publisher.publish_window(window).unwrap();
        }
        // ...minus its original-side share (which the orchestrator
        // derives for free) leaves the protected-side work it always
        // pays itself.
        let op = PoiAttack::default();
        let mut oc = PopulationCache::new();
        for window in &filtered {
            oc.advance(&op, window).unwrap();
        }
        p.user_extractions() - op.user_extractions()
    };
    assert_eq!(
        probe.user_extractions(),
        full_standalone + subset_protected,
        "the subset campaign's original side must ride the shared session"
    );
}

#[test]
fn duplicate_active_ids_are_rejected_and_retired_ids_are_reusable() {
    let config = PrivApiConfig::default();
    let mut orchestrator = Orchestrator::new();
    orchestrator
        .register(Campaign::new(1, "first", config))
        .unwrap();
    let err = orchestrator
        .register(Campaign::new(1, "imposter", config))
        .unwrap_err();
    assert_eq!(err, CampaignError::DuplicateId(CampaignId(1)));
    orchestrator.retire(CampaignId(1)).unwrap();
    assert_eq!(
        orchestrator.status(CampaignId(1)),
        Some(CampaignStatus::Retired)
    );
    // Retired ids are reusable; retiring twice is an error.
    orchestrator
        .register(Campaign::new(1, "second", config))
        .unwrap();
    assert_eq!(
        orchestrator.status(CampaignId(1)),
        Some(CampaignStatus::Active)
    );
    orchestrator.retire(CampaignId(1)).unwrap();
    assert_eq!(
        orchestrator.retire(CampaignId(1)),
        Err(CampaignError::Unknown(CampaignId(1)))
    );
    assert_eq!(orchestrator.registry().len(), 2);
}

#[test]
fn lifecycle_windows_and_mid_stream_registration() {
    let windows = WindowedDataset::partition(&dataset(43, 3, 4));
    assert_eq!(windows.len(), 4);
    let days = windows.days();
    let config = PrivApiConfig::default();
    let mut orchestrator = Orchestrator::new();
    // Campaign 1 runs the whole stream; campaign 2 covers days [1], [2]
    // only (bounded lifetime).
    orchestrator
        .register(Campaign::new(1, "whole", config))
        .unwrap();
    orchestrator
        .register(
            Campaign::new(2, "bounded", config)
                .with_start_day(days[1])
                .with_end_day(days[2]),
        )
        .unwrap();
    assert_eq!(
        orchestrator.status(CampaignId(2)),
        Some(CampaignStatus::Pending)
    );

    // Day 0: campaign 2 not started.
    let report = orchestrator.advance_day(&windows.windows()[0]).unwrap();
    assert!(report.release_of(CampaignId(1)).is_some());
    assert!(matches!(
        report.outcomes[1].1,
        CampaignOutcome::Skipped(SkipReason::NotStarted)
    ));

    // Day 1: campaign 3 registers mid-stream — it only ever sees data
    // from here on. Campaign 2 activates.
    orchestrator
        .register(Campaign::new(3, "late", config))
        .unwrap();
    let report = orchestrator.advance_day(&windows.windows()[1]).unwrap();
    assert_eq!(report.published().count(), 3);
    assert_eq!(
        orchestrator.status(CampaignId(2)),
        Some(CampaignStatus::Active)
    );
    // The late campaign's release covers only the post-registration
    // prefix: its selection saw one window of data.
    let late = report.release_of(CampaignId(3)).unwrap();
    let standalone = privapi::pipeline::PrivApi::new(config)
        .publish(windows.windows()[1].dataset())
        .unwrap();
    assert_eq!(late.published.selection, standalone.selection);
    assert_eq!(late.published.dataset, standalone.dataset);

    // Day 2: last covered day for campaign 2; day 3: it has ended.
    let report = orchestrator.advance_day(&windows.windows()[2]).unwrap();
    assert!(report.release_of(CampaignId(2)).is_some());
    let report = orchestrator.advance_day(&windows.windows()[3]).unwrap();
    assert!(matches!(
        report.outcomes[1].1,
        CampaignOutcome::Skipped(SkipReason::Ended)
    ));
    assert_eq!(
        orchestrator.status(CampaignId(2)),
        Some(CampaignStatus::Completed)
    );
    assert_eq!(
        orchestrator.registry().windows_published(CampaignId(2)),
        Some(2)
    );
    assert_eq!(
        orchestrator.registry().last_published_day(CampaignId(2)),
        Some(days[2])
    );

    // Out-of-order and duplicate days are rejected with the typed error.
    assert_eq!(
        orchestrator.advance_day(&windows.windows()[3]).unwrap_err(),
        CampaignError::Stream {
            day: days[3],
            last_day: days[3]
        }
    );
}

#[test]
fn retired_campaigns_stop_observing_and_sessions_stop_with_them() {
    let windows = WindowedDataset::partition(&dataset(29, 3, 3));
    let config = PrivApiConfig::default();
    let probe = PoiAttack::default();
    let mut orchestrator = Orchestrator::new();
    orchestrator
        .register(Campaign::new(1, "only", config).with_attack(probe.clone()))
        .unwrap();
    orchestrator.advance_day(&windows.windows()[0]).unwrap();
    let after_first = probe.user_extractions();
    orchestrator.retire(CampaignId(1)).unwrap();
    // With no active consumer, later days advance nothing and cost
    // nothing.
    let report = orchestrator.advance_day(&windows.windows()[1]).unwrap();
    assert!(report.sessions.is_empty());
    assert!(matches!(
        report.outcomes[0].1,
        CampaignOutcome::Skipped(SkipReason::Retired)
    ));
    assert_eq!(probe.user_extractions(), after_first);
}

#[test]
fn retiring_the_last_consumer_garbage_collects_the_session() {
    let windows = WindowedDataset::partition(&dataset(31, 3, 3));
    let config = PrivApiConfig::default();
    let probe = PoiAttack::default();
    let mut orchestrator = Orchestrator::new();
    orchestrator
        .register(Campaign::new(1, "a", config).with_attack(probe.clone()))
        .unwrap();
    orchestrator
        .register(Campaign::new(2, "b", config).with_attack(probe.clone()))
        .unwrap();
    assert_eq!(orchestrator.shared_sessions(), 1);
    orchestrator.advance_day(&windows.windows()[0]).unwrap();
    // Retiring one sharer keeps the session alive; retiring the last
    // consumer frees it on the spot.
    orchestrator.retire(CampaignId(1)).unwrap();
    assert_eq!(orchestrator.shared_sessions(), 1);
    orchestrator.retire(CampaignId(2)).unwrap();
    assert_eq!(orchestrator.shared_sessions(), 0, "empty group collected");
    // A same-config newcomer gets a FRESH session: the dead session's
    // ingested prefix (and its shards) must not resurrect — the
    // newcomer's view of the stream begins at the next window, exactly
    // like any mid-stream registration.
    orchestrator
        .register(Campaign::new(3, "c", config).with_attack(probe.clone()))
        .unwrap();
    assert_eq!(orchestrator.shared_sessions(), 1);
    let report = orchestrator.advance_day(&windows.windows()[1]).unwrap();
    let release = report.release_of(CampaignId(3)).expect("newcomer releases");
    let standalone = privapi::pipeline::PrivApi::new(config)
        .publish(windows.windows()[1].dataset())
        .unwrap();
    assert_eq!(release.published.selection, standalone.selection);
    assert_eq!(release.published.dataset, standalone.dataset);
}

#[test]
fn session_gc_remaps_surviving_shared_indices() {
    let windows = WindowedDataset::partition(&dataset(37, 3, 3));
    let config = PrivApiConfig::default();
    let custom_attack_config = PoiAttackConfig {
        match_distance: geo::Meters::new(500.0),
        ..PoiAttackConfig::default()
    };
    let mut orchestrator = Orchestrator::new();
    // Session 0 (default attack) and session 1 (custom attack).
    orchestrator
        .register(Campaign::new(1, "default", config))
        .unwrap();
    orchestrator
        .register(
            Campaign::new(2, "custom", config)
                .with_attack(PoiAttack::new(custom_attack_config.clone())),
        )
        .unwrap();
    assert_eq!(orchestrator.shared_sessions(), 2);
    orchestrator.advance_day(&windows.windows()[0]).unwrap();
    // Collecting session 0 shifts session 1 down; campaign 2's view must
    // follow it to the remapped slot and keep publishing byte-identical
    // releases.
    orchestrator.retire(CampaignId(1)).unwrap();
    assert_eq!(orchestrator.shared_sessions(), 1);
    let report = orchestrator.advance_day(&windows.windows()[1]).unwrap();
    let release = report.release_of(CampaignId(2)).expect("survivor releases");
    let mut standalone = StreamingPublisher::from_privapi(
        privapi::pipeline::PrivApi::new(config)
            .with_attack(PoiAttack::new(custom_attack_config)),
    );
    standalone.publish_window(&windows.windows()[0]).unwrap();
    let expected = standalone.publish_window(&windows.windows()[1]).unwrap();
    assert_eq!(release.published.selection, expected.published.selection);
    assert_eq!(release.published.dataset, expected.published.dataset);
}

#[test]
fn ingest_provenance_is_stamped_and_flags_degradation() {
    use privapi::streaming::IngestDelta;
    let windows = WindowedDataset::partition(&dataset(67, 3, 2));
    let mut orchestrator = Orchestrator::new();
    orchestrator
        .register(Campaign::new(1, "c", PrivApiConfig::default()))
        .unwrap();

    let clean = IngestDelta::new(windows.windows()[0].day());
    let report = orchestrator
        .advance_day_with_ingest(&windows.windows()[0], clean)
        .unwrap();
    assert_eq!(report.ingest, Some(clean));
    assert!(!report.degraded(), "clean delta is not degradation");

    let mut dirty = IngestDelta::new(windows.windows()[1].day());
    dirty.records_quarantined = 3;
    dirty.straggler_devices = 1;
    let report = orchestrator
        .advance_day_with_ingest(&windows.windows()[1], dirty)
        .unwrap();
    assert!(report.degraded(), "quarantine flags the window as degraded");

    // The ascending-day stream guard holds on the ingest path too; a
    // replayed window is a harness bug, not a network fault.
    assert!(matches!(
        orchestrator.advance_day_with_ingest(&windows.windows()[1], dirty),
        Err(CampaignError::Stream { .. })
    ));
}
