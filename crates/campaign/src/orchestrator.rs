//! The multi-campaign orchestrator: N concurrent campaigns, one
//! population stream, shared original-side extraction.
//!
//! # Why sharing works
//!
//! Every campaign's per-window cost splits into two halves:
//!
//! * **original side** — extracting the population's own POI exposure
//!   (per-user [`privapi::attack::UserAttackShard`]s + the reference
//!   index) over the accumulated prefix. This depends only on *(stream,
//!   attack configuration)* — not on the campaign's objective, pool, seed
//!   or privacy floor. K campaigns with the same attack configuration
//!   need it exactly once.
//! * **protected side** — anonymizing and self-attacking every candidate
//!   strategy. This depends on the campaign's pool and seed and is never
//!   shared; each campaign keeps its own
//!   [`privapi::streaming::StrategySessionCache`].
//!
//! The orchestrator therefore keeps one [`SharedSession`] (a
//! [`PopulationCache`] plus the attack that maintains it) per distinct
//! *(attack configuration, start day, stream position)* group.
//! [`Orchestrator::advance_day`] advances each consumed session **once**,
//! then fans the per-campaign evaluations out across the cores — campaigns
//! × candidate strategies — collecting outcomes in registration order so
//! the winner schedule is deterministic regardless of scheduling.
//!
//! Filtered campaigns own a private [`PopulationCache`] over their
//! filtered stream. A pure user-subset campaign additionally names a
//! matching shared session as *donor*: whenever the donor is in lockstep
//! (same attack configuration, same day, same extraction grid — i.e. the
//! subset spans the population's bounding box), invalidated shards are
//! **derived** (cloned) from the donor instead of re-extracted
//! ([`PopulationCache::advance_derived`]); any mismatch falls back to a
//! real extraction, so derivation can never change results.
//!
//! # The parity invariant
//!
//! Each campaign's releases are **byte-identical** to running that
//! campaign alone through a [`privapi::streaming::StreamingPublisher`]
//! fed its filtered windows (skipping days its filter empties). This is
//! by construction — the orchestrator drives the exact
//! [`privapi::pipeline::PrivApi::publish_session`] path a standalone
//! session runs — and enforced by property tests across seeds, sparse
//! participation and subset filters.

use crate::campaign::{Campaign, CampaignError, CampaignId, CampaignStatus};
use crate::registry::{CampaignEntry, CampaignRegistry, View};
use mobility::{DatasetWindow, UserId};
use privapi::attack::{PoiAttack, PoiAttackConfig};
use privapi::federated::FederationDelta;
use privapi::pipeline::PublishedDataset;
use privapi::streaming::{
    BaselineDelta, IngestDelta, PopulationCache, StrategyCacheDelta, StrategyDonor,
    StrategySessionCache, WindowDelta, WindowUpdate,
};
use privapi::PrivapiError;
use rayon::prelude::*;
use std::collections::HashMap;

/// One shared original-side extraction session: the population's
/// [`PopulationCache`] under one attack configuration, advanced once per
/// window and read by every attached campaign.
#[derive(Debug)]
pub(crate) struct SharedSession {
    /// The attack maintaining the cache (a clone of the first attached
    /// campaign's, so its extraction accounting lands on that campaign's
    /// probe).
    pub(crate) attack: PoiAttack,
    pub(crate) config: PoiAttackConfig,
    pub(crate) cache: PopulationCache,
    /// First day the session ingests (the attached campaigns' common
    /// `start_day`).
    pub(crate) start_day: Option<i64>,
}

/// Why a campaign produced no release for a day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The campaign's `start_day` lies in the future.
    NotStarted,
    /// The campaign's `end_day` has passed.
    Ended,
    /// The campaign was retired by the operator.
    Retired,
    /// The campaign's filter left no record in this window.
    NoParticipants,
}

/// One campaign's result for one orchestrated day.
#[derive(Debug)]
pub enum CampaignOutcome {
    /// The campaign ingested the (filtered) window and released.
    /// (Boxed: a release carries the full protected dataset, orders of
    /// magnitude larger than the other variants.)
    Published(Box<CampaignRelease>),
    /// The campaign did not observe this window.
    Skipped(SkipReason),
    /// The campaign observed the window but could not release (e.g.
    /// [`PrivapiError::NoFeasibleStrategy`] on its prefix). The window
    /// *was* ingested into the campaign's view; later days continue from
    /// the grown prefix, exactly as a standalone session would.
    Failed(PrivapiError),
}

impl CampaignOutcome {
    /// The release, when this outcome published one.
    pub fn release(&self) -> Option<&CampaignRelease> {
        match self {
            CampaignOutcome::Published(release) => Some(release.as_ref()),
            _ => None,
        }
    }
}

/// One campaign's release for one day, with the audit of what its caches
/// reused, derived or recomputed.
#[derive(Debug)]
pub struct CampaignRelease {
    /// The campaign that released.
    pub id: CampaignId,
    /// The day that triggered the release.
    pub day: i64,
    /// Original-side cache audit for the campaign's view. For a shared
    /// campaign this is the shared session's delta (paid once, reported
    /// to every sharer); [`WindowDelta::users_derived`] counts shards
    /// cloned from a donor session.
    pub delta: WindowDelta,
    /// Protected-side audit summed over the campaign's candidate pool.
    /// [`StrategyCacheDelta::users_donated`] counts per-user protected
    /// states adopted from a fingerprint-identical campaign on the same
    /// shared session instead of being re-anonymized.
    pub strategies: StrategyCacheDelta,
    /// Incremental utility-baseline audit for this release: cells folded
    /// in place versus grids rebuilt from scratch.
    pub baseline: BaselineDelta,
    /// Whether the campaign read a shared session (original-side work
    /// amortized across campaigns) rather than a private cache.
    pub shared: bool,
    /// The release itself — same shape as a standalone
    /// [`privapi::pipeline::PrivApi::publish`] of the campaign's prefix.
    pub published: PublishedDataset,
}

/// Everything one [`Orchestrator::advance_day`] call did.
#[derive(Debug)]
pub struct DayReport {
    /// The day processed.
    pub day: i64,
    /// Audit of every shared session advanced this day (one entry per
    /// session that had an attached consuming campaign).
    pub sessions: Vec<WindowDelta>,
    /// Per-campaign outcomes, in registration order.
    pub outcomes: Vec<(CampaignId, CampaignOutcome)>,
    /// Provenance of the window itself, when it was assembled by the
    /// reliable ingestion layer (see
    /// [`Orchestrator::advance_day_with_ingest`]): how many batches were
    /// folded in, what was deduplicated, and whether straggler data was
    /// quarantined into this window. `None` for windows fed directly from
    /// a materialized dataset.
    pub ingest: Option<IngestDelta>,
    /// Federated-release provenance, when the window came from the
    /// device-local pipeline (see
    /// [`Orchestrator::advance_day_federated`]): which config version it
    /// was assembled under, and exactly what was quarantined as stale,
    /// rejected as implausible or superseded by catch-up re-uploads.
    /// `None` for central (raw-upload) windows.
    pub federation: Option<FederationDelta>,
}

impl DayReport {
    /// The releases published this day, in registration order.
    pub fn published(&self) -> impl Iterator<Item = &CampaignRelease> {
        self.outcomes.iter().filter_map(|(_, o)| o.release())
    }

    /// Whether this day's window was assembled in degraded mode (straggler
    /// data quarantined or deferred by the ingestion layer).
    pub fn degraded(&self) -> bool {
        self.ingest.is_some_and(|d| !d.is_clean())
            || self.federation.is_some_and(|d| !d.is_clean())
    }

    /// The release of one campaign, if it published.
    pub fn release_of(&self, id: CampaignId) -> Option<&CampaignRelease> {
        self.outcomes
            .iter()
            .find(|(c, _)| *c == id)
            .and_then(|(_, o)| o.release())
    }
}

/// Runs N concurrent campaigns over one shared population window stream.
///
/// # Example
///
/// ```
/// use campaign::{Campaign, Orchestrator};
/// use mobility::gen::{CityModel, PopulationConfig};
/// use mobility::WindowedDataset;
/// use privapi::pipeline::PrivApiConfig;
///
/// let data = CityModel::builder().seed(3).build().generate_population(
///     &PopulationConfig { users: 3, days: 2, ..PopulationConfig::default() },
/// );
/// let mut orchestrator = Orchestrator::new();
/// orchestrator.register(Campaign::new(1, "city-wide", PrivApiConfig::default())).unwrap();
/// orchestrator.register(Campaign::new(2, "replica", PrivApiConfig::default())).unwrap();
/// for window in &WindowedDataset::partition(&data) {
///     let report = orchestrator.advance_day(window).unwrap();
///     // Both campaigns release; the original-side extraction ran once.
///     assert_eq!(report.published().count(), 2);
///     assert_eq!(report.sessions.len(), 1);
/// }
/// ```
#[derive(Debug, Default)]
pub struct Orchestrator {
    registry: CampaignRegistry,
    sessions: Vec<SharedSession>,
    last_day: Option<i64>,
}

impl Orchestrator {
    /// Creates an orchestrator with no campaigns.
    pub fn new() -> Self {
        Self::default()
    }

    /// The campaign registry (ids, statuses, per-campaign counters).
    pub fn registry(&self) -> &CampaignRegistry {
        &self.registry
    }

    /// Day index of the most recently processed window.
    pub fn last_day(&self) -> Option<i64> {
        self.last_day
    }

    /// Number of shared original-side sessions currently maintained (one
    /// per distinct attack-configuration × start-day × stream-position
    /// group with at least one full-population campaign).
    pub fn shared_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Lifecycle status of a campaign relative to the stream position.
    pub fn status(&self, id: CampaignId) -> Option<CampaignStatus> {
        self.registry.status(id, self.last_day)
    }

    /// Registers a campaign. Campaigns may join mid-stream: their view of
    /// the population starts at the next window (optionally further
    /// bounded by [`Campaign::with_start_day`]).
    ///
    /// A full-population campaign joins (or creates) the shared session
    /// matching its attack configuration, start day and stream position,
    /// so K same-configuration campaigns pay the original-side extraction
    /// once. A filtered campaign gets a private view; a pure user-subset
    /// filter additionally links the matching shared session as shard
    /// donor **if one already exists** — register the full-population
    /// campaign first to give its subsets a donor.
    ///
    /// # Errors
    ///
    /// [`CampaignError::DuplicateId`] when an active campaign already
    /// holds the id (retired ids are reusable).
    pub fn register(&mut self, campaign: Campaign) -> Result<CampaignId, CampaignError> {
        if self.registry.is_active(campaign.id()) {
            return Err(CampaignError::DuplicateId(campaign.id()));
        }
        if let Some(policy) = campaign.federation() {
            if let Err(e) = policy.validate_pool(campaign.privapi().pool()) {
                let strategy = match e {
                    PrivapiError::NonFederable { strategy } => strategy,
                    other => other.to_string(),
                };
                return Err(CampaignError::NonFederable {
                    id: campaign.id(),
                    strategy,
                });
            }
        }
        let view = if campaign.filter().is_all() {
            View::Shared(self.find_or_create_session(&campaign))
        } else {
            View::Private {
                cache: Box::new(PopulationCache::new()),
                donor: if campaign.filter().is_user_subset() {
                    self.find_session(&campaign)
                } else {
                    None
                },
            }
        };
        self.registry.push(CampaignEntry {
            campaign,
            retired: false,
            view,
            strategies: StrategySessionCache::new(),
            windows_published: 0,
            last_published_day: None,
        })
    }

    /// Retires an active campaign: it stops observing the stream
    /// immediately and its id becomes reusable. A shared session whose
    /// last non-retired consumer retires is garbage-collected on the spot
    /// (its cache freed, surviving session indices remapped); a later
    /// campaign with the same configuration starts a fresh session rather
    /// than resurrecting the dead one's shards.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Unknown`] when no active campaign holds the id.
    pub fn retire(&mut self, id: CampaignId) -> Result<(), CampaignError> {
        self.registry.retire(id)?;
        self.collect_sessions();
        Ok(())
    }

    /// Drops every shared session left without a non-retired `Shared`
    /// consumer and remaps the indices held by surviving views. Retired
    /// campaigns whose session died are detached; private donor links to a
    /// dead session are severed (they were already best-effort).
    fn collect_sessions(&mut self) {
        let mut keep = vec![false; self.sessions.len()];
        for entry in &self.registry.entries {
            if let (false, Some(index)) = (entry.retired, entry.view.shared_session()) {
                keep[index] = true;
            }
        }
        if keep.iter().all(|k| *k) {
            return;
        }
        let mut next = 0;
        let remap: Vec<Option<usize>> = keep
            .iter()
            .map(|kept| {
                kept.then(|| {
                    next += 1;
                    next - 1
                })
            })
            .collect();
        let mut index = 0;
        self.sessions.retain(|_| {
            index += 1;
            keep[index - 1]
        });
        for entry in &mut self.registry.entries {
            let detach = match &mut entry.view {
                View::Shared(i) => match remap[*i] {
                    Some(new) => {
                        *i = new;
                        false
                    }
                    None => true,
                },
                View::Private { donor, .. } => {
                    if let Some(d) = *donor {
                        *donor = remap[d];
                    }
                    false
                }
                View::Detached => false,
            };
            if detach {
                entry.view = View::Detached;
            }
        }
    }

    /// Processes one population day window: advances every consumed shared
    /// session exactly once, then evaluates all campaigns — campaigns ×
    /// candidate strategies fanned out over the available cores — and
    /// reports per-campaign outcomes in registration order (the
    /// deterministic winner schedule).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Stream`] when the window's day is not past the
    /// orchestrator's last processed day (nothing is ingested anywhere).
    /// Per-campaign publication failures are reported as
    /// [`CampaignOutcome::Failed`], never as an `advance_day` error.
    pub fn advance_day(&mut self, window: &DatasetWindow) -> Result<DayReport, CampaignError> {
        let day = window.day();
        if let Some(last) = self.last_day {
            if day <= last {
                return Err(CampaignError::Stream {
                    day,
                    last_day: last,
                });
            }
        }
        self.last_day = Some(day);
        let mut day_span = obs::span("campaign.day");
        day_span.set_attr("day", day);
        day_span.set_attr("campaigns", self.registry.entries.len() as u64);
        if window.record_count() == 0 {
            // An empty day changes nothing: every campaign skips it, each
            // for its own lifecycle reason (mirrors a standalone publisher
            // never seeing a window for a record-less day).
            let outcomes = self
                .registry
                .entries
                .iter()
                .map(|e| {
                    let reason = if e.retired {
                        SkipReason::Retired
                    } else if e.campaign.start_day().is_some_and(|s| day < s) {
                        SkipReason::NotStarted
                    } else if e.campaign.end_day().is_some_and(|end| day > end) {
                        SkipReason::Ended
                    } else {
                        SkipReason::NoParticipants
                    };
                    (e.campaign.id(), CampaignOutcome::Skipped(reason))
                })
                .collect();
            return Ok(DayReport {
                day,
                sessions: Vec::new(),
                outcomes,
                ingest: None,
                federation: None,
            });
        }

        // Phase 1 — advance each shared session consumed by at least one
        // campaign observing this day. Donor-only links do not keep a
        // session alive: extracting the whole population to spare a
        // subset would cost more than it saves.
        let mut session_deltas: Vec<Option<WindowDelta>> = Vec::new();
        session_deltas.resize_with(self.sessions.len(), || None);
        for (index, session) in self.sessions.iter_mut().enumerate() {
            if session.start_day.is_some_and(|s| day < s) {
                continue;
            }
            let consumed = self.registry.entries.iter().any(|e| {
                !e.retired && e.campaign.covers(day) && e.view.shared_session() == Some(index)
            });
            if !consumed {
                continue;
            }
            let delta = session
                .cache
                .advance(&session.attack, window)
                .expect("sessions follow the orchestrator's strictly ascending days");
            session_deltas[index] = Some(delta);
        }

        // Phase 2 — evaluate every campaign against its view, in
        // parallel, collecting in registration order. Campaigns on the
        // same shared session with identical (pool, seed, attack,
        // objective) fingerprints share protected-side work too: the
        // registration-order leader of each group evaluates first, then
        // its followers adopt the leader's per-candidate snapshot
        // ([`StrategyDonor`]) instead of re-anonymizing and re-attacking
        // the same prefix.
        let leader_of = self.donor_leaders(day);
        let sessions = &self.sessions;
        let deltas = &session_deltas;
        let (mut followers, mut leads): (Vec<_>, Vec<_>) = self
            .registry
            .entries
            .iter_mut()
            .enumerate()
            .partition(|(i, _)| leader_of[*i].is_some());
        let mut indexed: Vec<(usize, (CampaignId, CampaignOutcome))> = leads
            .par_iter_mut()
            .map(|(i, entry)| {
                let id = entry.campaign.id();
                (
                    *i,
                    (id, evaluate_campaign(entry, window, sessions, deltas, None)),
                )
            })
            .collect();
        if !followers.is_empty() {
            let donors: HashMap<usize, StrategyDonor> = leads
                .iter()
                .filter(|(i, _)| leader_of.contains(&Some(*i)))
                .filter_map(|(i, entry)| {
                    let windows = entry
                        .view
                        .shared_session()
                        .map(|s| sessions[s].cache.windows_ingested())?;
                    Some((*i, entry.strategies.donor_snapshot(windows)?))
                })
                .collect();
            let donors = &donors;
            let follower_outcomes: Vec<(usize, (CampaignId, CampaignOutcome))> = followers
                .par_iter_mut()
                .map(|(i, entry)| {
                    let donor = leader_of[*i].and_then(|l| donors.get(&l));
                    let id = entry.campaign.id();
                    (
                        *i,
                        (
                            id,
                            evaluate_campaign(entry, window, sessions, deltas, donor),
                        ),
                    )
                })
                .collect();
            indexed.extend(follower_outcomes);
        }
        indexed.sort_by_key(|(i, _)| *i);
        let outcomes = indexed.into_iter().map(|(_, o)| o).collect();
        Ok(DayReport {
            day,
            sessions: session_deltas.into_iter().flatten().collect(),
            outcomes,
            ingest: None,
            federation: None,
        })
    }

    /// [`Orchestrator::advance_day`] for a window assembled by the
    /// reliable ingestion layer, stamping its [`IngestDelta`] provenance
    /// into the report.
    ///
    /// This is the degraded-mode path: the ingestion protocol closes days
    /// strictly in order and quarantines straggler data into the next
    /// window, so a partitioned region can never poison the stream with a
    /// stale day — the window publishes normally and the report carries
    /// the audit of what was quarantined or deferred.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Orchestrator::advance_day`]. The ingestion
    /// protocol satisfies the ascending-day contract by construction, so
    /// [`CampaignError::Stream`] here indicates a harness bug, not a
    /// network fault.
    pub fn advance_day_with_ingest(
        &mut self,
        window: &DatasetWindow,
        ingest: IngestDelta,
    ) -> Result<DayReport, CampaignError> {
        debug_assert_eq!(window.day(), ingest.day, "ingest audit for wrong day");
        let mut report = self.advance_day(window)?;
        report.ingest = Some(ingest);
        Ok(report)
    }

    /// [`Orchestrator::advance_day`] for a *federated* window: the
    /// dataset holds device-anonymized trajectories assembled by the
    /// protected-lane collector, `ingest` is the calibration cohort's raw
    /// ingestion audit (when the cohort fed this day's selection) and
    /// `federation` is the protected lane's ledger. The report carries
    /// both, and [`DayReport::degraded`] flags the day whenever either
    /// ledger shows stale, implausible, superseded or straggling data —
    /// the campaign-layer half of the "never silently mixed" invariant.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Orchestrator::advance_day`].
    pub fn advance_day_federated(
        &mut self,
        window: &DatasetWindow,
        ingest: Option<IngestDelta>,
        federation: FederationDelta,
    ) -> Result<DayReport, CampaignError> {
        debug_assert_eq!(
            window.day(),
            federation.day,
            "federation audit for wrong day"
        );
        let mut report = self.advance_day(window)?;
        report.ingest = ingest;
        report.federation = Some(federation);
        Ok(report)
    }

    /// For each campaign observing `day` on a shared session, the
    /// registration-order leader it may adopt protected-side state from:
    /// the earliest non-retired campaign on the *same* session with an
    /// identical `(pool, seed, attack, objective)` fingerprint. Leaders
    /// (and every campaign without one) map to `None`. Privacy floors may
    /// differ — the floor gates acceptance, not the per-candidate
    /// protected state being shared.
    fn donor_leaders(&self, day: i64) -> Vec<Option<usize>> {
        let entries = &self.registry.entries;
        let eligible: Vec<Option<usize>> = entries
            .iter()
            .map(|e| {
                if e.retired || !e.campaign.covers(day) {
                    None
                } else {
                    e.view.shared_session()
                }
            })
            .collect();
        let mut leader: Vec<Option<usize>> = vec![None; entries.len()];
        for i in 0..entries.len() {
            let Some(session) = eligible[i] else { continue };
            if leader[i].is_some() {
                continue;
            }
            let a = entries[i].campaign.privapi();
            for j in (i + 1)..entries.len() {
                if leader[j].is_some() || eligible[j] != Some(session) {
                    continue;
                }
                let b = entries[j].campaign.privapi();
                if a.config().seed == b.config().seed
                    && a.config().objective == b.config().objective
                    && a.attack().config() == b.attack().config()
                    && a.pool().infos() == b.pool().infos()
                {
                    leader[j] = Some(i);
                }
            }
        }
        leader
    }

    /// An existing, joinable session matching the campaign's attack
    /// configuration, start day and stream position (nothing ingested
    /// yet — a session that already absorbed windows holds a prefix the
    /// newcomer never saw).
    fn find_session(&self, campaign: &Campaign) -> Option<usize> {
        self.sessions.iter().position(|s| {
            s.cache.windows_ingested() == 0
                && s.start_day == campaign.start_day()
                && &s.config == campaign.privapi().attack().config()
        })
    }

    fn find_or_create_session(&mut self, campaign: &Campaign) -> usize {
        if let Some(index) = self.find_session(campaign) {
            return index;
        }
        let attack = campaign.privapi().attack().clone();
        self.sessions.push(SharedSession {
            config: attack.config().clone(),
            attack,
            cache: PopulationCache::new(),
            start_day: campaign.start_day(),
        });
        self.sessions.len() - 1
    }
}

/// One campaign's step for one day: scope checks, view ingest (shared
/// read / private advance with optional donor derivation), then the
/// standard [`privapi::pipeline::PrivApi::publish_session`] evaluation —
/// with an optional protected-side [`StrategyDonor`] from a
/// fingerprint-identical leader campaign on the same shared session.
fn evaluate_campaign(
    entry: &mut CampaignEntry,
    window: &DatasetWindow,
    sessions: &[SharedSession],
    session_deltas: &[Option<WindowDelta>],
    donor: Option<&StrategyDonor>,
) -> CampaignOutcome {
    let day = window.day();
    if entry.retired {
        return CampaignOutcome::Skipped(SkipReason::Retired);
    }
    let mut span = obs::span("campaign.publish");
    span.set_attr("campaign", entry.campaign.id().0);
    span.set_attr("day", day);
    let CampaignEntry {
        campaign,
        view,
        strategies,
        ..
    } = entry;
    debug_assert!(
        donor.is_none() || matches!(view, View::Shared(_)),
        "donors are only selected among same-session shared campaigns"
    );
    if campaign.start_day().is_some_and(|s| day < s) {
        return CampaignOutcome::Skipped(SkipReason::NotStarted);
    }
    if campaign.end_day().is_some_and(|e| day > e) {
        return CampaignOutcome::Skipped(SkipReason::Ended);
    }
    let filtered_window;
    let (population, delta, changed_users, shared): (
        &PopulationCache,
        WindowDelta,
        Vec<UserId>,
        bool,
    ) = match view {
        View::Shared(index) => {
            let delta = session_deltas[*index]
                .expect("an active shared campaign's session advanced this day");
            (&sessions[*index].cache, delta, window.users(), true)
        }
        View::Private { cache, donor } => {
            let Some(filtered) = campaign.filter().filter_window(window) else {
                return CampaignOutcome::Skipped(SkipReason::NoParticipants);
            };
            filtered_window = filtered;
            let donor_cache = donor.map(|index| &sessions[index].cache);
            let delta = match cache.advance_derived(
                campaign.privapi().attack(),
                &filtered_window,
                donor_cache,
            ) {
                Ok(delta) => delta,
                Err(error) => return CampaignOutcome::Failed(error),
            };
            (&**cache, delta, filtered_window.users(), false)
        }
        View::Detached => unreachable!("only retired campaigns are detached"),
    };
    let update = WindowUpdate {
        changed_users,
        grid_rebuilt: delta.grid_rebuilt,
    };
    match campaign
        .privapi()
        .publish_session(population, strategies, &update, donor)
    {
        Ok((published, strategy_delta, baseline)) => {
            entry.windows_published += 1;
            entry.last_published_day = Some(day);
            CampaignOutcome::Published(Box::new(CampaignRelease {
                id: entry.campaign.id(),
                day,
                delta,
                strategies: strategy_delta,
                baseline,
                shared,
                published,
            }))
        }
        Err(error) => CampaignOutcome::Failed(error),
    }
}
