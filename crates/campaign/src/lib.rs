//! # campaign — multi-campaign orchestration over a shared population
//!
//! The paper deploys PRIVAPI inside APISENSE, a platform that runs *many*
//! crowd-sensing campaigns at once over the same user community — yet a
//! [`privapi::streaming::StreamingPublisher`] serves exactly one campaign
//! per session. This crate multiplexes them: a [`CampaignRegistry`] of
//! concurrent [`Campaign`]s — each with its own objective, privacy floor,
//! seed, strategy pool, attack parameters, participant filter and
//! lifetime — driven by an [`Orchestrator`] over one day-window stream,
//! with the original-side extraction work **shared** across campaigns
//! instead of repeated per campaign.
//!
//! What is shared and what is not:
//!
//! * same attack configuration + full population → one shared
//!   original-side session, K campaigns read it (the per-user extraction
//!   cost is ~1/K of running K independent publishers);
//! * same attack configuration + user-subset filter → a private view that
//!   *derives* shards from the shared session whenever the extraction
//!   grids agree;
//! * different attack configuration → the campaign pays exactly its own
//!   original-side pass, nothing more;
//! * the protected side (per-candidate anonymizations and self-attacks)
//!   is always per campaign — it depends on the campaign's pool and seed.
//!
//! Every campaign's releases stay **byte-identical** to running that
//! campaign alone through a `StreamingPublisher` on its filtered stream
//! (property-tested across seeds, sparse participation and subset
//! filters).
//!
//! See [`Orchestrator`] for the end-to-end example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod orchestrator;
mod registry;

pub use campaign::{Campaign, CampaignError, CampaignId, CampaignStatus};
pub use orchestrator::{CampaignOutcome, CampaignRelease, DayReport, Orchestrator, SkipReason};
pub use registry::CampaignRegistry;
