//! Campaign definitions: identity, privacy policy, recruitment and
//! lifetime.
//!
//! A [`Campaign`] bundles everything one concurrent crowd-sensing study
//! needs from the privacy stack: its own PRIVAPI configuration (objective,
//! privacy floor, seed), its own strategy pool and attack parameters, a
//! [`ParticipantFilter`] scoping which slice of the shared population it
//! observes, and an optional `[start_day, end_day]` lifetime. The
//! [`crate::Orchestrator`] runs any number of them over one window stream.

use mobility::ParticipantFilter;
use privapi::engine::ExecutionMode;
use privapi::federated::FederationPolicy;
use privapi::pipeline::{PrivApi, PrivApiConfig};
use privapi::pool::StrategyPool;
use privapi::prelude::PoiAttack;
use std::error::Error;
use std::fmt;

/// Identifier of a campaign within one orchestrator.
///
/// Ids are caller-chosen (they typically mirror the platform's own task or
/// campaign ids). The orchestrator rejects *overlapping* duplicates — two
/// simultaneously active campaigns may never share an id — but an id
/// becomes reusable once its campaign is retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CampaignId(pub u64);

impl fmt::Display for CampaignId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign-{}", self.0)
    }
}

/// Where a campaign sits in its lifecycle, relative to the orchestrator's
/// current stream position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignStatus {
    /// Registered, but its `start_day` has not been reached yet.
    Pending,
    /// Observing the stream (and publishing on days with participants).
    Active,
    /// Its `end_day` has passed; it will never publish again.
    Completed,
    /// Explicitly retired by the operator.
    Retired,
}

/// Errors of the campaign registry and orchestrator.
///
/// Per-campaign *publication* failures (e.g. no feasible strategy on a
/// day's prefix) are not errors of the orchestration step — they are
/// reported per campaign as [`crate::CampaignOutcome::Failed`], so one
/// campaign's infeasible day never blocks the others.
#[derive(Debug, PartialEq)]
pub enum CampaignError {
    /// A campaign with this id is already active (overlapping duplicate).
    DuplicateId(CampaignId),
    /// No campaign with this id is registered (or it is already retired).
    Unknown(CampaignId),
    /// The window stream went backwards: the day is not past the
    /// orchestrator's most recently processed day.
    Stream {
        /// Day index of the rejected window.
        day: i64,
        /// Most recently processed day.
        last_day: i64,
    },
    /// A campaign opted into federated release
    /// ([`Campaign::with_federation`]) but its candidate pool holds a
    /// strategy that cannot run device-locally. Rejected at registration:
    /// a non-federable winner would force devices to upload raw data,
    /// silently voiding the policy.
    NonFederable {
        /// The campaign that was rejected.
        id: CampaignId,
        /// The offending candidate, rendered as `name(params)`.
        strategy: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::DuplicateId(id) => {
                write!(
                    f,
                    "{id} is already active: overlapping campaigns must have distinct ids"
                )
            }
            CampaignError::Unknown(id) => write!(f, "{id} is not an active campaign"),
            CampaignError::Stream { day, last_day } => write!(
                f,
                "window for day {day} arrived after day {last_day}: the campaign stream \
                 must ascend strictly"
            ),
            CampaignError::NonFederable { id, strategy } => write!(
                f,
                "{id} declares a federation policy but pools non-federable \
                 strategy {strategy}: every candidate must run device-locally"
            ),
        }
    }
}

impl Error for CampaignError {}

/// One crowd-sensing campaign: a privacy policy, a participant scope and a
/// lifetime over the shared population stream.
///
/// # Example
///
/// ```
/// use campaign::Campaign;
/// use mobility::{ParticipantFilter, UserId};
/// use privapi::pipeline::PrivApiConfig;
///
/// let c = Campaign::new(7, "commute-study", PrivApiConfig::default())
///     .with_filter(ParticipantFilter::users([UserId(1), UserId(2)]))
///     .with_start_day(2)
///     .with_end_day(9);
/// assert_eq!(c.id().0, 7);
/// assert!(!c.covers(1));
/// assert!(c.covers(5));
/// assert!(!c.covers(10));
/// ```
#[derive(Debug)]
pub struct Campaign {
    id: CampaignId,
    name: String,
    privapi: PrivApi,
    filter: ParticipantFilter,
    start_day: Option<i64>,
    end_day: Option<i64>,
    federation: Option<FederationPolicy>,
}

impl Campaign {
    /// Creates a full-population, open-ended campaign with the shared
    /// default strategy pool.
    pub fn new(id: u64, name: impl Into<String>, config: PrivApiConfig) -> Self {
        Self::from_privapi(id, name, PrivApi::new(config))
    }

    /// Wraps an already-configured PRIVAPI middleware (custom pool, attack
    /// or execution mode).
    pub fn from_privapi(id: u64, name: impl Into<String>, privapi: PrivApi) -> Self {
        Self {
            id: CampaignId(id),
            name: name.into(),
            privapi,
            filter: ParticipantFilter::All,
            start_day: None,
            end_day: None,
            federation: None,
        }
    }

    /// Replaces the strategy pool searched on every publication.
    pub fn with_pool(mut self, pool: StrategyPool) -> Self {
        self.privapi = self.privapi.with_pool(pool);
        self
    }

    /// Replaces the attack measuring POI exposure (custom parameters, or
    /// an instrumented probe for extraction accounting). Campaigns with
    /// equal attack *configurations* share original-side extraction work
    /// under the orchestrator; a campaign with its own parameters pays
    /// exactly its own pass.
    pub fn with_attack(mut self, attack: PoiAttack) -> Self {
        self.privapi = self.privapi.with_attack(attack);
        self
    }

    /// Sets the candidate-evaluation schedule (parallel by default).
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.privapi = self.privapi.with_mode(mode);
        self
    }

    /// Scopes the campaign to a participant filter (user subset, region,
    /// daily hours, or a conjunction).
    pub fn with_filter(mut self, filter: ParticipantFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Opts the campaign into federated release: devices anonymize
    /// locally under the broadcast winner and only the policy's
    /// calibration cohort uploads raw. Registration validates that every
    /// pooled candidate can actually run device-locally
    /// ([`CampaignError::NonFederable`] otherwise), and day reports carry
    /// the federated provenance ledger
    /// ([`crate::DayReport::federation`]).
    pub fn with_federation(mut self, policy: FederationPolicy) -> Self {
        self.federation = Some(policy);
        self
    }

    /// First day (inclusive) the campaign observes.
    pub fn with_start_day(mut self, day: i64) -> Self {
        self.start_day = Some(day);
        self
    }

    /// Last day (inclusive) the campaign observes.
    pub fn with_end_day(mut self, day: i64) -> Self {
        self.end_day = Some(day);
        self
    }

    /// The campaign id.
    pub fn id(&self) -> CampaignId {
        self.id
    }

    /// The campaign's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The campaign's PRIVAPI middleware (objective, floor, seed, pool,
    /// attack).
    pub fn privapi(&self) -> &PrivApi {
        &self.privapi
    }

    /// The campaign's federation policy, when it opted into device-local
    /// anonymization.
    pub fn federation(&self) -> Option<&FederationPolicy> {
        self.federation.as_ref()
    }

    /// The campaign's participant scope.
    pub fn filter(&self) -> &ParticipantFilter {
        &self.filter
    }

    /// First observed day, if bounded.
    pub fn start_day(&self) -> Option<i64> {
        self.start_day
    }

    /// Last observed day, if bounded.
    pub fn end_day(&self) -> Option<i64> {
        self.end_day
    }

    /// Whether `day` falls inside the campaign's lifetime.
    pub fn covers(&self, day: i64) -> bool {
        self.start_day.is_none_or(|s| day >= s) && self.end_day.is_none_or(|e| day <= e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_bounds_are_inclusive() {
        let c = Campaign::new(1, "c", PrivApiConfig::default())
            .with_start_day(3)
            .with_end_day(5);
        assert!(!c.covers(2));
        assert!(c.covers(3));
        assert!(c.covers(5));
        assert!(!c.covers(6));
        let open = Campaign::new(2, "open", PrivApiConfig::default());
        assert!(open.covers(i64::MIN) && open.covers(i64::MAX));
    }

    #[test]
    fn error_messages_name_the_campaign_and_days() {
        assert!(CampaignError::DuplicateId(CampaignId(4))
            .to_string()
            .contains("campaign-4"));
        assert!(CampaignError::Unknown(CampaignId(9))
            .to_string()
            .contains("campaign-9"));
        let stream = CampaignError::Stream {
            day: 1,
            last_day: 2,
        };
        assert!(stream.to_string().contains("day 1"));
        assert!(stream.to_string().contains("day 2"));
    }
}
