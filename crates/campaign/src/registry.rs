//! The campaign registry: id bookkeeping and per-campaign runtime state.
//!
//! The registry owns every campaign the orchestrator has ever seen —
//! active, pending, completed and retired — together with the runtime
//! state each one accumulates across windows: its view of the population
//! (shared or private original-side cache) and its per-strategy
//! protected-side caches. Overlapping duplicate ids are rejected at
//! registration; a retired campaign's id becomes reusable.

use crate::campaign::{Campaign, CampaignError, CampaignId, CampaignStatus};
use privapi::streaming::{PopulationCache, StrategySessionCache};

/// How a campaign reads the population stream's original-side state.
#[derive(Debug)]
pub(crate) enum View {
    /// Full-population campaign reading a shared
    /// [`crate::orchestrator::SharedSession`] directly (index into the
    /// orchestrator's session table). Its original-side extraction is the
    /// session's — paid once per window however many campaigns share it.
    Shared(usize),
    /// Filtered campaign with its own [`PopulationCache`]. A pure
    /// user-subset campaign may name a shared session as `donor`:
    /// whenever the donor is in lockstep (same attack configuration, same
    /// day, same extraction grid), invalidated shards are cloned from it
    /// instead of re-extracted.
    Private {
        /// The campaign's own original-side cache over its filtered
        /// stream. (Boxed: a populated cache dwarfs the `Shared` index.)
        cache: Box<PopulationCache>,
        /// Shared-session index shards may be derived from, when exact.
        donor: Option<usize>,
    },
    /// A retired shared campaign whose session was garbage-collected: the
    /// index it held is gone, and a detached view can never be read again
    /// (retired campaigns skip every window before touching their view).
    Detached,
}

impl View {
    /// The shared session this view advances (donor links do not keep a
    /// session alive — see the orchestrator's session-advance rule).
    pub(crate) fn shared_session(&self) -> Option<usize> {
        match self {
            View::Shared(i) => Some(*i),
            View::Private { .. } | View::Detached => None,
        }
    }
}

/// One registered campaign plus its runtime state.
#[derive(Debug)]
pub(crate) struct CampaignEntry {
    pub(crate) campaign: Campaign,
    pub(crate) retired: bool,
    pub(crate) view: View,
    /// The campaign's protected-side per-candidate caches (its own pool,
    /// seed and attack fingerprints — never shared across campaigns).
    pub(crate) strategies: StrategySessionCache,
    /// Windows this campaign actually published.
    pub(crate) windows_published: usize,
    /// Day of the campaign's most recent release.
    pub(crate) last_published_day: Option<i64>,
}

/// Id bookkeeping over every campaign an orchestrator has seen.
#[derive(Debug, Default)]
pub struct CampaignRegistry {
    pub(crate) entries: Vec<CampaignEntry>,
}

impl CampaignRegistry {
    /// Number of registered campaigns (all lifecycles).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no campaign was ever registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every registered campaign id, in registration order (retired
    /// campaigns included; an id reused after retirement appears twice).
    pub fn ids(&self) -> Vec<CampaignId> {
        self.entries.iter().map(|e| e.campaign.id()).collect()
    }

    /// Ids of the non-retired campaigns, in registration order.
    pub fn active_ids(&self) -> Vec<CampaignId> {
        self.entries
            .iter()
            .filter(|e| !e.retired)
            .map(|e| e.campaign.id())
            .collect()
    }

    /// Whether a non-retired campaign holds `id`.
    pub fn is_active(&self, id: CampaignId) -> bool {
        self.entries
            .iter()
            .any(|e| !e.retired && e.campaign.id() == id)
    }

    /// The campaign registered under `id` — the non-retired holder if one
    /// exists, otherwise the most recently retired one.
    pub fn campaign(&self, id: CampaignId) -> Option<&Campaign> {
        self.entry(id).map(|e| &e.campaign)
    }

    /// Lifecycle status of `id` relative to the stream position `last_day`
    /// (the orchestrator passes its own high-water mark).
    pub fn status(&self, id: CampaignId, last_day: Option<i64>) -> Option<CampaignStatus> {
        let entry = self.entry(id)?;
        if entry.retired {
            return Some(CampaignStatus::Retired);
        }
        let campaign = &entry.campaign;
        Some(match last_day {
            Some(day) if campaign.end_day().is_some_and(|e| day > e) => {
                CampaignStatus::Completed
            }
            Some(day) if campaign.start_day().is_some_and(|s| day < s) => {
                CampaignStatus::Pending
            }
            None if campaign.start_day().is_some() => CampaignStatus::Pending,
            _ => CampaignStatus::Active,
        })
    }

    /// Windows the campaign has published so far.
    pub fn windows_published(&self, id: CampaignId) -> Option<usize> {
        self.entry(id).map(|e| e.windows_published)
    }

    /// Day of the campaign's most recent release.
    pub fn last_published_day(&self, id: CampaignId) -> Option<i64> {
        self.entry(id).and_then(|e| e.last_published_day)
    }

    /// Registers an entry; rejects an id already held by an active
    /// campaign.
    pub(crate) fn push(&mut self, entry: CampaignEntry) -> Result<CampaignId, CampaignError> {
        let id = entry.campaign.id();
        if self.is_active(id) {
            return Err(CampaignError::DuplicateId(id));
        }
        self.entries.push(entry);
        Ok(id)
    }

    /// Retires the active campaign holding `id`.
    pub(crate) fn retire(&mut self, id: CampaignId) -> Result<(), CampaignError> {
        match self
            .entries
            .iter_mut()
            .find(|e| !e.retired && e.campaign.id() == id)
        {
            Some(entry) => {
                entry.retired = true;
                Ok(())
            }
            None => Err(CampaignError::Unknown(id)),
        }
    }

    /// The active holder of `id`, falling back to the most recently
    /// retired one.
    fn entry(&self, id: CampaignId) -> Option<&CampaignEntry> {
        self.entries
            .iter()
            .find(|e| !e.retired && e.campaign.id() == id)
            .or_else(|| self.entries.iter().rev().find(|e| e.campaign.id() == id))
    }
}
