//! Property-based tests of the mobility substrate.

use geo::GeoPoint;
use mobility::io;
use mobility::staypoint::{detect, StayPointConfig};
use mobility::{Dataset, LocationRecord, Timestamp, Trajectory, UserId};
use proptest::prelude::*;

fn record() -> impl Strategy<Value = LocationRecord> {
    (0u64..5, 0i64..200_000, 45.0..46.0f64, 4.0..5.0f64).prop_map(|(u, t, la, lo)| {
        LocationRecord::new(UserId(u), Timestamp::new(t), GeoPoint::new(la, lo).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn trajectory_new_always_sorted(records in prop::collection::vec(record(), 0..50)) {
        let t = Trajectory::new(UserId(1), records);
        for w in t.records().windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
        // Every remaining record belongs to the owner.
        for r in t.records() {
            prop_assert_eq!(r.user, UserId(1));
        }
    }

    #[test]
    fn duration_is_nonnegative_and_consistent(records in prop::collection::vec(record(), 0..50)) {
        let t = Trajectory::new(UserId(2), records);
        prop_assert!(t.duration_s() >= 0);
        if t.len() >= 2 {
            prop_assert_eq!(
                t.duration_s(),
                t.end_time().unwrap() - t.start_time().unwrap()
            );
        }
    }

    #[test]
    fn position_at_always_inside_bbox(
        records in prop::collection::vec(record(), 1..50),
        query_t in -10_000i64..300_000,
    ) {
        let t = Trajectory::new(UserId(3), records);
        if t.is_empty() { return Ok(()); }
        let p = t.position_at(Timestamp::new(query_t)).unwrap();
        let bbox = geo::BoundingBox::from_points(
            t.records().iter().map(|r| &r.point).collect::<Vec<_>>().into_iter()
        ).unwrap();
        prop_assert!(bbox.expanded(1e-9).contains(&p));
    }

    #[test]
    fn split_by_gap_preserves_records(
        records in prop::collection::vec(record(), 0..50),
        gap in 1i64..10_000,
    ) {
        let t = Trajectory::new(UserId(1), records);
        let parts = t.split_by_gap(gap);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, t.len());
        // No part contains an internal gap larger than the threshold.
        for part in &parts {
            for w in part.records().windows(2) {
                prop_assert!(w[1].time - w[0].time <= gap);
            }
        }
    }

    #[test]
    fn stay_points_meet_both_thresholds(records in prop::collection::vec(record(), 0..60)) {
        let t = Trajectory::new(UserId(1), records);
        let cfg = StayPointConfig::default();
        for stay in detect(&t, &cfg) {
            prop_assert!(stay.duration_s() >= cfg.time_threshold_s);
            prop_assert!(stay.departure >= stay.arrival);
        }
    }

    #[test]
    fn jsonl_roundtrip_any_dataset(records in prop::collection::vec(record(), 0..60)) {
        let ds = Dataset::from_records(records);
        let mut buf = Vec::new();
        io::write_jsonl(&ds, &mut buf).unwrap();
        let back = io::read_jsonl(buf.as_slice()).unwrap();
        prop_assert_eq!(back.record_count(), ds.record_count());
        prop_assert_eq!(back.user_count(), ds.user_count());
        for user in ds.users() {
            for (a, b) in ds.records_of(user).iter().zip(back.records_of(user)) {
                prop_assert_eq!(a.user, b.user);
                prop_assert_eq!(a.time, b.time);
                // The JSON float parser may lose the last ulp
                // (sub-micrometre); positions must agree to < 1 µm.
                prop_assert!(a.point.haversine_distance(&b.point).get() < 1e-6);
            }
        }
    }

    #[test]
    fn csv_roundtrip_positions_within_centimetres(records in prop::collection::vec(record(), 0..40)) {
        let ds = Dataset::from_records(records);
        let mut buf = Vec::new();
        io::write_csv(&ds, &mut buf).unwrap();
        let back = io::read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back.record_count(), ds.record_count());
        for user in ds.users() {
            for (a, b) in ds.records_of(user).iter().zip(back.records_of(user)) {
                prop_assert_eq!(a.time, b.time);
                prop_assert!(a.point.haversine_distance(&b.point).get() < 0.05);
            }
        }
    }

    #[test]
    fn timestamp_decomposition_is_consistent(s in -1_000_000i64..1_000_000) {
        let t = Timestamp::new(s);
        prop_assert_eq!(t.day_index() * 86_400 + t.seconds_of_day(), s);
        prop_assert!((0..24).contains(&t.hour_of_day()));
        prop_assert!((0..7).contains(&t.weekday()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The generator never produces records outside the city bounds, and is
    /// stable under repeated invocation.
    #[test]
    fn generator_bounds_and_determinism(seed in 0u64..50) {
        use mobility::gen::{CityModel, PopulationConfig};
        let config = PopulationConfig {
            users: 2,
            days: 1,
            sampling_interval_s: 600,
            ..PopulationConfig::default()
        };
        let city = CityModel::builder().seed(seed).build();
        let a = city.generate_population(&config);
        let b = city.generate_population(&config);
        prop_assert_eq!(&a, &b);
        let center = city.center();
        for r in a.iter_records() {
            let d = center.haversine_distance(&r.point).get();
            prop_assert!(d < city.radius().get() * 1.2 + 500.0, "record {d} m out");
        }
    }
}
