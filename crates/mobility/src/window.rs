//! Day-windowed datasets for streaming publication.
//!
//! A continuously running crowd-sensing deployment does not collect one
//! static dataset — it accumulates records day after day and must publish
//! *rolling releases*. This module provides the partitioning the streaming
//! publication pipeline is built on:
//!
//! * [`DatasetWindow`] — all records of one day, re-grouped into one
//!   trajectory per user (users sorted, records time-sorted), so every
//!   window has a canonical, order-stable shape;
//! * [`WindowedDataset`] — a dataset partitioned into its day windows,
//!   iterable as a stream of daily deltas and able to reconstruct any
//!   *concatenated prefix* (`windows[0..=i]` re-assembled into one
//!   [`Dataset`]).
//!
//! The prefix reconstruction is the correctness anchor of the streaming
//! publisher: publishing window `i` incrementally must select exactly the
//! same winner as a batch publish of [`WindowedDataset::prefix`]`(i)`.
//! Because both the incremental path and the batch path build their input
//! by concatenating the same windows in the same order, the comparison is
//! byte-for-byte meaningful.

use crate::record::{Dataset, LocationRecord, Trajectory, UserId};
use std::collections::BTreeMap;

/// One day of a partitioned dataset: every record whose
/// [`crate::Timestamp::day_index`] equals [`DatasetWindow::day`], re-grouped
/// into one time-sorted trajectory per user (users in ascending `UserId`
/// order).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetWindow {
    day: i64,
    dataset: Dataset,
}

impl DatasetWindow {
    /// Assembles a window from a day index and an already-canonical
    /// dataset (users sorted, one time-sorted trajectory per user) —
    /// how [`crate::filter::ParticipantFilter::filter_window`] rebuilds a
    /// campaign's view of a partitioned window without re-bucketing.
    pub fn from_parts(day: i64, dataset: Dataset) -> Self {
        Self { day, dataset }
    }

    /// The day index this window covers.
    pub fn day(&self) -> i64 {
        self.day
    }

    /// The window's records as a dataset (one trajectory per user).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Users active in this window, sorted.
    pub fn users(&self) -> Vec<UserId> {
        self.dataset.users()
    }

    /// Number of records in this window.
    pub fn record_count(&self) -> usize {
        self.dataset.record_count()
    }
}

/// A dataset partitioned into day windows, in ascending day order.
///
/// # Example
///
/// ```
/// use mobility::gen::{CityModel, PopulationConfig};
/// use mobility::WindowedDataset;
///
/// let city = CityModel::builder().seed(7).build();
/// let dataset = city.generate_population(&PopulationConfig {
///     users: 2,
///     days: 3,
///     ..PopulationConfig::default()
/// });
/// let windowed = WindowedDataset::partition(&dataset);
/// assert_eq!(windowed.len(), 3);
/// // Replaying every window reconstructs the full record multiset.
/// let total: usize = windowed.iter().map(|w| w.record_count()).sum();
/// assert_eq!(total, dataset.record_count());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowedDataset {
    windows: Vec<DatasetWindow>,
}

impl WindowedDataset {
    /// Partitions `dataset` into day windows.
    ///
    /// Records are bucketed by [`crate::Timestamp::day_index`]; within a
    /// window each user's records form one trajectory, time-sorted with the
    /// dataset's original iteration order as the tiebreak for equal
    /// timestamps (the sort is stable). Days with no records produce no
    /// window, so every window is non-empty.
    pub fn partition(dataset: &Dataset) -> Self {
        let mut by_day: BTreeMap<i64, BTreeMap<UserId, Vec<LocationRecord>>> = BTreeMap::new();
        for record in dataset.iter_records() {
            by_day
                .entry(record.time.day_index())
                .or_default()
                .entry(record.user)
                .or_default()
                .push(*record);
        }
        let windows = by_day
            .into_iter()
            .map(|(day, users)| DatasetWindow {
                day,
                dataset: users
                    .into_iter()
                    .map(|(user, records)| Trajectory::new(user, records))
                    .collect(),
            })
            .collect();
        Self { windows }
    }

    /// The windows, in ascending day order.
    pub fn windows(&self) -> &[DatasetWindow] {
        &self.windows
    }

    /// Number of (non-empty) day windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the partition holds no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The day indexes covered, ascending.
    pub fn days(&self) -> Vec<i64> {
        self.windows.iter().map(DatasetWindow::day).collect()
    }

    /// Replays the partition as a stream of daily deltas, oldest first —
    /// the shape a streaming publisher consumes.
    pub fn iter(&self) -> impl Iterator<Item = &DatasetWindow> {
        self.windows.iter()
    }

    /// Reconstructs the concatenated prefix `windows[0..=upto]` as one
    /// dataset: window trajectories appended in window order.
    ///
    /// This is the batch-side twin of incremental publication — a streaming
    /// publisher that has ingested windows `0..=upto` holds exactly this
    /// dataset as its accumulated state, so batch-vs-streaming parity tests
    /// compare like with like. `upto` is clamped to the last window.
    pub fn prefix(&self, upto: usize) -> Dataset {
        let mut out = Dataset::new();
        for window in self.windows.iter().take(upto.saturating_add(1)) {
            out.extend(window.dataset.trajectories().iter().cloned());
        }
        out
    }
}

impl<'a> IntoIterator for &'a WindowedDataset {
    type Item = &'a DatasetWindow;
    type IntoIter = std::slice::Iter<'a, DatasetWindow>;

    fn into_iter(self) -> Self::IntoIter {
        self.windows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Timestamp, DAY_SECONDS};
    use geo::GeoPoint;

    fn rec(user: u64, t: i64, lon: f64) -> LocationRecord {
        LocationRecord::new(
            UserId(user),
            Timestamp::new(t),
            GeoPoint::new(45.0, lon).unwrap(),
        )
    }

    fn multi_day_dataset() -> Dataset {
        Dataset::from_records(vec![
            rec(2, 10, 4.0),
            rec(1, 20, 4.1),
            rec(1, DAY_SECONDS + 30, 4.2),
            rec(2, DAY_SECONDS + 40, 4.3),
            // Day 3 is empty; day 4 has only user 1.
            rec(1, 4 * DAY_SECONDS + 50, 4.4),
        ])
    }

    #[test]
    fn partition_buckets_by_day_and_skips_empty_days() {
        let windowed = WindowedDataset::partition(&multi_day_dataset());
        assert_eq!(windowed.days(), vec![0, 1, 4]);
        assert_eq!(windowed.len(), 3);
        assert!(!windowed.is_empty());
        let w0 = &windowed.windows()[0];
        assert_eq!(w0.day(), 0);
        assert_eq!(w0.users(), vec![UserId(1), UserId(2)]);
        assert_eq!(w0.record_count(), 2);
        let w4 = &windowed.windows()[2];
        assert_eq!(w4.users(), vec![UserId(1)]);
        assert_eq!(w4.record_count(), 1);
    }

    #[test]
    fn partition_preserves_the_record_multiset() {
        let ds = multi_day_dataset();
        let windowed = WindowedDataset::partition(&ds);
        let mut original: Vec<LocationRecord> = ds.iter_records().copied().collect();
        let mut replayed: Vec<LocationRecord> = windowed
            .iter()
            .flat_map(|w| w.dataset().iter_records().copied())
            .collect();
        let key = |r: &LocationRecord| (r.user, r.time, r.point.latitude().to_bits());
        original.sort_by_key(key);
        replayed.sort_by_key(key);
        assert_eq!(original, replayed);
    }

    #[test]
    fn windows_have_stable_per_user_ordering() {
        let windowed = WindowedDataset::partition(&multi_day_dataset());
        for window in &windowed {
            let users: Vec<UserId> = window
                .dataset()
                .trajectories()
                .iter()
                .map(|t| t.user())
                .collect();
            let mut sorted = users.clone();
            sorted.sort();
            assert_eq!(users, sorted, "day {}", window.day());
            for t in window.dataset().trajectories() {
                assert!(!t.is_empty());
                assert!(t
                    .records()
                    .iter()
                    .all(|r| r.time.day_index() == window.day()));
            }
        }
    }

    #[test]
    fn prefix_concatenates_windows_in_order() {
        let windowed = WindowedDataset::partition(&multi_day_dataset());
        let p0 = windowed.prefix(0);
        assert_eq!(p0.record_count(), 2);
        let p1 = windowed.prefix(1);
        assert_eq!(p1.record_count(), 4);
        // Clamped past the end: the full dataset.
        let full = windowed.prefix(usize::MAX);
        assert_eq!(full.record_count(), 5);
        assert_eq!(windowed.prefix(2), full);
        // Prefix trajectories come in window order, then user order.
        let owners: Vec<UserId> = p1.trajectories().iter().map(|t| t.user()).collect();
        assert_eq!(owners, vec![UserId(1), UserId(2), UserId(1), UserId(2)]);
    }

    #[test]
    fn prefix_equals_incremental_extension() {
        // The invariant the streaming publisher's accumulated state relies
        // on: extending a dataset window-by-window equals prefix().
        let windowed = WindowedDataset::partition(&multi_day_dataset());
        let mut accumulated = Dataset::new();
        for (i, window) in windowed.iter().enumerate() {
            accumulated.extend(window.dataset().trajectories().iter().cloned());
            assert_eq!(accumulated, windowed.prefix(i), "prefix {i}");
        }
    }

    #[test]
    fn partition_of_empty_dataset_is_empty() {
        let windowed = WindowedDataset::partition(&Dataset::new());
        assert!(windowed.is_empty());
        assert_eq!(windowed.prefix(0), Dataset::new());
        assert!(windowed.days().is_empty());
    }

    #[test]
    fn negative_days_window_correctly() {
        let ds = Dataset::from_records(vec![rec(1, -10, 4.0), rec(1, 10, 4.1)]);
        let windowed = WindowedDataset::partition(&ds);
        assert_eq!(windowed.days(), vec![-1, 0]);
    }
}
