//! Mobility-data substrate for the crowd-sensing platform.
//!
//! This crate models everything PRIVAPI and APISENSE need to know about
//! *mobility data* — "all timestamped locations where a user has been during
//! the experiment" (paper, §1):
//!
//! * [`LocationRecord`], [`Trajectory`], [`Dataset`] — the data model;
//! * [`staypoint`] — stay-point detection (where a user paused);
//! * [`poi`] — clustering stay points into *points of interest* and labelling
//!   them (home/work/leisure), the sensitive places the paper's privacy
//!   mechanisms protect;
//! * [`gen`] — a synthetic city and population generator standing in for the
//!   proprietary real-life dataset used in the paper (see `DESIGN.md` §2);
//! * [`io`] — JSON-lines / CSV import & export;
//! * [`window`] — day-window partitioning ([`WindowedDataset`]) that replays
//!   a dataset as a stream of daily deltas for streaming publication;
//! * [`filter`] — [`ParticipantFilter`] recruitment rules (user subsets,
//!   regions, daily hours) scoping a campaign's view of the shared
//!   population stream.
//!
//! # Example
//!
//! ```
//! use mobility::gen::{CityModel, PopulationConfig};
//!
//! let city = CityModel::builder().seed(1).build();
//! let dataset = city.generate_population(&PopulationConfig {
//!     users: 3,
//!     days: 1,
//!     ..PopulationConfig::default()
//! });
//! assert_eq!(dataset.user_count(), 3);
//! assert!(dataset.record_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod record;
mod time;

pub mod filter;
pub mod gen;
pub mod io;
pub mod poi;
pub mod staypoint;
pub mod window;

pub use error::MobilityError;
pub use filter::ParticipantFilter;
pub use record::{Dataset, LocationRecord, Trajectory, UserId};
pub use time::{Timestamp, DAY_SECONDS, HOUR_SECONDS, MINUTE_SECONDS};
pub use window::{DatasetWindow, WindowedDataset};
