//! Points of interest: clustering stay points into the sensitive places the
//! paper's mechanisms protect.
//!
//! "Points of interest […] are places where a user spends significant
//! amounts of time like his home, his office, a cinema, etc. These places are
//! highly sensitive because they convey rich semantic information." (paper,
//! §3). POIs are obtained by clustering [`StayPoint`]s: repeated stays within
//! `merge_distance` of each other collapse into one place.

use crate::staypoint::StayPoint;
use geo::{GeoPoint, Meters};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Semantic category of a POI, inferred from visit times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoiKind {
    /// Place with dominant overnight dwell.
    Home,
    /// Place with dominant weekday working-hours dwell.
    Work,
    /// Any other regularly visited place.
    Other,
}

impl fmt::Display for PoiKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoiKind::Home => write!(f, "home"),
            PoiKind::Work => write!(f, "work"),
            PoiKind::Other => write!(f, "other"),
        }
    }
}

/// A point of interest: a cluster of stay episodes at (roughly) one place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// Mean position of the member stays.
    pub centroid: GeoPoint,
    /// Number of stay episodes merged into this POI.
    pub visits: usize,
    /// Total dwell time across all visits, in seconds.
    pub total_dwell_s: i64,
    /// Dwell time spent during night hours (22:00–06:00), in seconds.
    pub night_dwell_s: i64,
    /// Dwell time spent during weekday office hours (09:00–17:00), in seconds.
    pub office_dwell_s: i64,
    /// Inferred semantic category.
    pub kind: PoiKind,
}

impl Poi {
    /// Mean dwell per visit, in seconds.
    pub fn mean_dwell_s(&self) -> i64 {
        if self.visits == 0 {
            0
        } else {
            self.total_dwell_s / self.visits as i64
        }
    }
}

/// Parameters of the POI clustering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoiConfig {
    /// Two stays closer than this merge into the same POI.
    pub merge_distance: Meters,
    /// Minimum number of stay episodes for a cluster to become a POI.
    pub min_visits: usize,
}

impl Default for PoiConfig {
    fn default() -> Self {
        Self {
            merge_distance: Meters::new(250.0),
            min_visits: 1,
        }
    }
}

/// Clusters stay points into POIs with greedy centroid clustering.
///
/// Stays are processed in chronological order; each joins the first existing
/// cluster whose centroid is within `merge_distance`, otherwise it seeds a
/// new cluster. Clusters with fewer than `min_visits` members are dropped.
///
/// # Example
///
/// ```
/// use mobility::poi::{extract_pois, PoiConfig};
/// use mobility::staypoint::StayPoint;
/// use mobility::Timestamp;
/// use geo::GeoPoint;
///
/// let home = GeoPoint::new(45.0, 4.0).unwrap();
/// let stays = vec![
///     StayPoint { centroid: home, arrival: Timestamp::new(0), departure: Timestamp::new(3600) },
///     StayPoint { centroid: home, arrival: Timestamp::new(86_400), departure: Timestamp::new(90_000) },
/// ];
/// let pois = extract_pois(&stays, &PoiConfig::default());
/// assert_eq!(pois.len(), 1);
/// assert_eq!(pois[0].visits, 2);
/// ```
pub fn extract_pois(stays: &[StayPoint], config: &PoiConfig) -> Vec<Poi> {
    struct Cluster {
        lat_sum: f64,
        lon_sum: f64,
        members: Vec<StayPoint>,
    }

    impl Cluster {
        fn centroid(&self) -> GeoPoint {
            let n = self.members.len() as f64;
            GeoPoint::clamped(self.lat_sum / n, self.lon_sum / n)
        }
    }

    let mut clusters: Vec<Cluster> = Vec::new();
    for stay in stays {
        let mut joined = false;
        for cluster in clusters.iter_mut() {
            if cluster.centroid().haversine_distance(&stay.centroid).get()
                <= config.merge_distance.get()
            {
                cluster.lat_sum += stay.centroid.latitude();
                cluster.lon_sum += stay.centroid.longitude();
                cluster.members.push(*stay);
                joined = true;
                break;
            }
        }
        if !joined {
            clusters.push(Cluster {
                lat_sum: stay.centroid.latitude(),
                lon_sum: stay.centroid.longitude(),
                members: vec![*stay],
            });
        }
    }

    let mut pois: Vec<Poi> = clusters
        .into_iter()
        .filter(|c| c.members.len() >= config.min_visits)
        .map(|c| {
            let centroid = c.centroid();
            let visits = c.members.len();
            let total: i64 = c.members.iter().map(|s| s.duration_s()).sum();
            let night: i64 = c.members.iter().map(night_overlap_s).sum();
            let office: i64 = c.members.iter().map(office_overlap_s).sum();
            Poi {
                centroid,
                visits,
                total_dwell_s: total,
                night_dwell_s: night,
                office_dwell_s: office,
                kind: PoiKind::Other, // assigned below
            }
        })
        .collect();

    label_pois(&mut pois);
    // Highest-dwell POIs first: deterministic, and attackers examine the
    // strongest signals first.
    pois.sort_by_key(|p| std::cmp::Reverse(p.total_dwell_s));
    pois
}

/// Assigns Home/Work labels: the cluster with most night dwell becomes Home,
/// the one with most weekday office-hours dwell (excluding Home) becomes
/// Work. Everything else stays `Other`.
fn label_pois(pois: &mut [Poi]) {
    let home_idx = pois
        .iter()
        .enumerate()
        .filter(|(_, p)| p.night_dwell_s > 0)
        .max_by_key(|(_, p)| p.night_dwell_s)
        .map(|(i, _)| i);
    if let Some(h) = home_idx {
        pois[h].kind = PoiKind::Home;
    }
    let work_idx = pois
        .iter()
        .enumerate()
        .filter(|(i, p)| Some(*i) != home_idx && p.office_dwell_s > 0)
        .max_by_key(|(_, p)| p.office_dwell_s)
        .map(|(i, _)| i);
    if let Some(w) = work_idx {
        pois[w].kind = PoiKind::Work;
    }
}

/// Seconds of a stay overlapping night hours (22:00–06:00), day by day.
fn night_overlap_s(stay: &StayPoint) -> i64 {
    window_overlap_s(stay, 22, 30, false) // 22:00 → 06:00 next day
}

/// Seconds of a stay overlapping weekday office hours (09:00–17:00).
fn office_overlap_s(stay: &StayPoint) -> i64 {
    window_overlap_s(stay, 9, 17, true)
}

/// Overlap between `[stay.arrival, stay.departure]` and the daily window
/// `[start_h, end_h)`; `end_h` may exceed 24 to denote wrap past midnight.
/// When `weekdays_only`, weekend days contribute nothing.
fn window_overlap_s(stay: &StayPoint, start_h: i64, end_h: i64, weekdays_only: bool) -> i64 {
    use crate::time::{Timestamp, DAY_SECONDS, HOUR_SECONDS};
    let mut total = 0;
    let first_day = stay.arrival.day_index() - 1; // window may start previous day
    let last_day = stay.departure.day_index();
    for day in first_day..=last_day {
        if weekdays_only {
            let wd = Timestamp::new(day * DAY_SECONDS).weekday();
            if wd >= 5 {
                continue;
            }
        }
        let win_start = day * DAY_SECONDS + start_h * HOUR_SECONDS;
        let win_end = day * DAY_SECONDS + end_h * HOUR_SECONDS;
        let lo = stay.arrival.seconds().max(win_start);
        let hi = stay.departure.seconds().min(win_end);
        if hi > lo {
            total += hi - lo;
        }
    }
    total
}

/// Returns the POI labelled `Home`, if any.
pub fn home_of(pois: &[Poi]) -> Option<&Poi> {
    pois.iter().find(|p| p.kind == PoiKind::Home)
}

/// Returns the POI labelled `Work`, if any.
pub fn work_of(pois: &[Poi]) -> Option<&Poi> {
    pois.iter().find(|p| p.kind == PoiKind::Work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn stay(lat: f64, lon: f64, from: i64, to: i64) -> StayPoint {
        StayPoint {
            centroid: GeoPoint::new(lat, lon).unwrap(),
            arrival: Timestamp::new(from),
            departure: Timestamp::new(to),
        }
    }

    #[test]
    fn empty_input_no_pois() {
        assert!(extract_pois(&[], &PoiConfig::default()).is_empty());
    }

    #[test]
    fn repeated_stays_merge() {
        let stays = vec![
            stay(45.0, 4.0, 0, 3_600),
            stay(45.0005, 4.0, 86_400, 90_000), // ~55 m away: same place
            stay(45.1, 4.1, 172_800, 176_400),  // far away: new place
        ];
        let pois = extract_pois(&stays, &PoiConfig::default());
        assert_eq!(pois.len(), 2);
        let merged = pois.iter().find(|p| p.visits == 2).unwrap();
        assert_eq!(merged.total_dwell_s, 3_600 + 3_600);
    }

    #[test]
    fn min_visits_filters_one_off_stays() {
        let stays = vec![
            stay(45.0, 4.0, 0, 3_600),
            stay(45.0, 4.0, 86_400, 90_000),
            stay(45.2, 4.2, 10_000, 13_600), // visited once
        ];
        let cfg = PoiConfig {
            min_visits: 2,
            ..PoiConfig::default()
        };
        let pois = extract_pois(&stays, &cfg);
        assert_eq!(pois.len(), 1);
        assert_eq!(pois[0].visits, 2);
    }

    #[test]
    fn home_label_from_night_dwell() {
        // Overnight stay 22:00 day0 → 07:00 day1 at home; office stay 9-17 at work.
        let home = stay(45.0, 4.0, 22 * 3_600, 31 * 3_600);
        let work = stay(45.05, 4.05, 86_400 + 9 * 3_600, 86_400 + 17 * 3_600);
        let pois = extract_pois(&[home, work], &PoiConfig::default());
        assert_eq!(pois.len(), 2);
        let h = home_of(&pois).expect("home labelled");
        assert!((h.centroid.latitude() - 45.0).abs() < 1e-6);
        let w = work_of(&pois).expect("work labelled");
        assert!((w.centroid.latitude() - 45.05).abs() < 1e-6);
    }

    #[test]
    fn weekend_office_hours_not_counted_as_work() {
        // Day 5 = Saturday. A 9-17 stay on Saturday has zero office dwell.
        let sat = 5 * 86_400;
        let s = stay(45.0, 4.0, sat + 9 * 3_600, sat + 17 * 3_600);
        assert_eq!(office_overlap_s(&s), 0);
        // Same hours on Monday count fully.
        let mon = stay(45.0, 4.0, 9 * 3_600, 17 * 3_600);
        assert_eq!(office_overlap_s(&mon), 8 * 3_600);
    }

    #[test]
    fn night_overlap_spans_midnight() {
        // 23:00 → 01:00 is 2 h of night.
        let s = stay(45.0, 4.0, 23 * 3_600, 25 * 3_600);
        assert_eq!(night_overlap_s(&s), 2 * 3_600);
        // 20:00 → 21:00 has no night overlap.
        let s2 = stay(45.0, 4.0, 20 * 3_600, 21 * 3_600);
        assert_eq!(night_overlap_s(&s2), 0);
        // Early morning 04:00 → 07:00 overlaps 2 h (04:00–06:00) of the
        // window that started the previous evening.
        let s3 = stay(45.0, 4.0, 4 * 3_600, 7 * 3_600);
        assert_eq!(night_overlap_s(&s3), 2 * 3_600);
    }

    #[test]
    fn pois_sorted_by_dwell() {
        let stays = vec![stay(45.0, 4.0, 0, 1_000), stay(45.1, 4.1, 2_000, 30_000)];
        let pois = extract_pois(&stays, &PoiConfig::default());
        assert!(pois[0].total_dwell_s >= pois[1].total_dwell_s);
    }

    #[test]
    fn mean_dwell() {
        let stays = vec![stay(45.0, 4.0, 0, 1_000), stay(45.0, 4.0, 5_000, 7_000)];
        let pois = extract_pois(&stays, &PoiConfig::default());
        assert_eq!(pois[0].mean_dwell_s(), 1_500);
    }

    #[test]
    fn poi_kind_display() {
        assert_eq!(PoiKind::Home.to_string(), "home");
        assert_eq!(PoiKind::Work.to_string(), "work");
        assert_eq!(PoiKind::Other.to_string(), "other");
    }
}
