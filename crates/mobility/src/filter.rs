//! Participant filtering for multi-campaign deployments.
//!
//! A platform running several concurrent crowd-sensing campaigns over one
//! shared population rarely gives every campaign the whole dataset: a
//! campaign recruits a *subset of users*, covers a *geographic region*, or
//! collects only during certain *hours of the day*. [`ParticipantFilter`]
//! is the declarative form of that recruitment rule, applied to the
//! day-window stream before a campaign's privacy pipeline ever sees the
//! records.
//!
//! Filtering is **deterministic and order-preserving**: a filtered
//! [`DatasetWindow`] keeps the canonical window shape (users sorted, one
//! time-sorted trajectory per user), so a campaign fed filtered windows
//! behaves byte-identically to a standalone publisher whose input was
//! filtered up front — the invariant the multi-campaign orchestrator's
//! parity tests lean on.

use crate::record::{Dataset, LocationRecord, Trajectory, UserId};
use crate::window::DatasetWindow;
use geo::BoundingBox;
use std::collections::BTreeSet;

/// A campaign's recruitment rule: which users and records of the shared
/// population stream it observes.
///
/// Filters compose conjunctively via [`ParticipantFilter::and`]. The
/// distinction between *user-subset* filters (drop whole users, keep every
/// record of a kept user) and *record-level* filters (region, hours) is
/// load-bearing for the orchestrator: only user-subset views can derive
/// per-user attack state from a shared full-population extraction, because
/// a kept user's record history is bitwise the population's.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ParticipantFilter {
    /// Every record passes (the full-population campaign).
    #[default]
    All,
    /// Only the listed users participate; their records pass untouched.
    Users(BTreeSet<UserId>),
    /// Only records inside the region pass (campaigns scoped to a
    /// district or city); users may contribute partial trajectories.
    Region(BoundingBox),
    /// Only records whose local hour falls in `[start_hour, end_hour)`
    /// pass; `start > end` wraps past midnight (a commute-hours or
    /// nightlife campaign).
    Hours {
        /// First included hour (0–23).
        start_hour: i64,
        /// First excluded hour (0–24).
        end_hour: i64,
    },
    /// Both filters must pass.
    And(Box<ParticipantFilter>, Box<ParticipantFilter>),
}

impl ParticipantFilter {
    /// A filter keeping exactly the given users.
    pub fn users<I: IntoIterator<Item = UserId>>(users: I) -> Self {
        ParticipantFilter::Users(users.into_iter().collect())
    }

    /// A filter keeping records inside `region`.
    pub fn region(region: BoundingBox) -> Self {
        ParticipantFilter::Region(region)
    }

    /// A filter keeping records in the daily hour range
    /// `[start_hour, end_hour)` (wraps past midnight when `start > end`).
    pub fn hours(start_hour: i64, end_hour: i64) -> Self {
        ParticipantFilter::Hours {
            start_hour: start_hour.clamp(0, 24),
            end_hour: end_hour.clamp(0, 24),
        }
    }

    /// Conjunction: a record passes only if it passes both filters.
    pub fn and(self, other: ParticipantFilter) -> Self {
        match (self, other) {
            (ParticipantFilter::All, f) | (f, ParticipantFilter::All) => f,
            (a, b) => ParticipantFilter::And(Box::new(a), Box::new(b)),
        }
    }

    /// Whether a single record passes the filter.
    pub fn keeps(&self, record: &LocationRecord) -> bool {
        match self {
            ParticipantFilter::All => true,
            ParticipantFilter::Users(users) => users.contains(&record.user),
            ParticipantFilter::Region(region) => region.contains(&record.point),
            ParticipantFilter::Hours {
                start_hour,
                end_hour,
            } => {
                let hour = record.time.hour_of_day();
                if start_hour <= end_hour {
                    (*start_hour..*end_hour).contains(&hour)
                } else {
                    hour >= *start_hour || hour < *end_hour
                }
            }
            ParticipantFilter::And(a, b) => a.keeps(record) && b.keeps(record),
        }
    }

    /// Whether the filter only ever drops *whole users* — i.e. every kept
    /// user keeps their full record history. [`ParticipantFilter::All`] and
    /// [`ParticipantFilter::Users`] qualify (and conjunctions of them);
    /// region and hour filters truncate kept users' histories and do not.
    pub fn is_user_subset(&self) -> bool {
        match self {
            ParticipantFilter::All | ParticipantFilter::Users(_) => true,
            ParticipantFilter::Region(_) | ParticipantFilter::Hours { .. } => false,
            ParticipantFilter::And(a, b) => a.is_user_subset() && b.is_user_subset(),
        }
    }

    /// Whether the filter is [`ParticipantFilter::All`] (possibly via
    /// degenerate conjunctions): the campaign observes the full stream.
    pub fn is_all(&self) -> bool {
        match self {
            ParticipantFilter::All => true,
            ParticipantFilter::And(a, b) => a.is_all() && b.is_all(),
            _ => false,
        }
    }

    /// Applies the filter to one day window, preserving the canonical
    /// window shape (users sorted, records time-sorted within a user).
    ///
    /// Returns `None` when no record survives — the campaign simply does
    /// not observe that day, exactly as if its recruited participants
    /// produced no data.
    pub fn filter_window(&self, window: &DatasetWindow) -> Option<DatasetWindow> {
        if self.is_all() {
            return Some(window.clone());
        }
        let trajectories: Vec<Trajectory> = window
            .dataset()
            .trajectories()
            .iter()
            .filter_map(|t| {
                let records: Vec<LocationRecord> = t
                    .records()
                    .iter()
                    .filter(|r| self.keeps(r))
                    .copied()
                    .collect();
                if records.is_empty() {
                    None
                } else {
                    Some(Trajectory::new(t.user(), records))
                }
            })
            .collect();
        if trajectories.is_empty() {
            return None;
        }
        Some(DatasetWindow::from_parts(
            window.day(),
            Dataset::from_trajectories(trajectories),
        ))
    }

    /// Applies the filter to a whole dataset — the batch-side twin of
    /// [`ParticipantFilter::filter_window`], used to build the standalone
    /// comparison input in parity tests.
    pub fn filter_dataset(&self, dataset: &Dataset) -> Dataset {
        if self.is_all() {
            return dataset.clone();
        }
        Dataset::from_trajectories(
            dataset
                .trajectories()
                .iter()
                .filter_map(|t| {
                    let records: Vec<LocationRecord> = t
                        .records()
                        .iter()
                        .filter(|r| self.keeps(r))
                        .copied()
                        .collect();
                    if records.is_empty() {
                        None
                    } else {
                        Some(Trajectory::new(t.user(), records))
                    }
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Timestamp, DAY_SECONDS};
    use crate::window::WindowedDataset;
    use geo::GeoPoint;

    fn rec(user: u64, t: i64, lat: f64, lon: f64) -> LocationRecord {
        LocationRecord::new(
            UserId(user),
            Timestamp::new(t),
            GeoPoint::new(lat, lon).unwrap(),
        )
    }

    fn sample() -> Dataset {
        Dataset::from_records(vec![
            rec(1, 8 * 3600, 45.0, 4.0),
            rec(1, 20 * 3600, 45.2, 4.2),
            rec(2, 9 * 3600, 45.1, 4.1),
            rec(3, DAY_SECONDS + 10, 45.0, 4.0),
        ])
    }

    #[test]
    fn all_passes_everything_and_is_user_subset() {
        let f = ParticipantFilter::All;
        assert!(f.is_all());
        assert!(f.is_user_subset());
        let ds = sample();
        assert_eq!(f.filter_dataset(&ds), ds);
    }

    #[test]
    fn user_filter_keeps_whole_users() {
        let f = ParticipantFilter::users([UserId(1)]);
        assert!(f.is_user_subset());
        assert!(!f.is_all());
        let out = f.filter_dataset(&sample());
        assert_eq!(out.users(), vec![UserId(1)]);
        assert_eq!(out.record_count(), 2);
    }

    #[test]
    fn region_filter_truncates_histories() {
        let region = BoundingBox::new(
            GeoPoint::new(44.9, 3.9).unwrap(),
            GeoPoint::new(45.05, 4.05).unwrap(),
        )
        .unwrap();
        let f = ParticipantFilter::region(region);
        assert!(!f.is_user_subset());
        let out = f.filter_dataset(&sample());
        // User 1 keeps only the in-region record; user 2's record is out.
        assert_eq!(out.users(), vec![UserId(1), UserId(3)]);
        assert_eq!(out.record_count(), 2);
    }

    #[test]
    fn hour_filter_wraps_midnight() {
        let f = ParticipantFilter::hours(19, 10);
        assert!(!f.is_user_subset());
        let out = f.filter_dataset(&sample());
        // 8 h and 9 h pass (before 10), 20 h passes (after 19).
        assert_eq!(out.record_count(), 4);
        let narrow = ParticipantFilter::hours(10, 12);
        assert_eq!(narrow.filter_dataset(&sample()).record_count(), 0);
    }

    #[test]
    fn conjunction_composes_and_collapses_all() {
        let f = ParticipantFilter::users([UserId(1), UserId(2)])
            .and(ParticipantFilter::hours(8, 10));
        assert!(!f.is_user_subset());
        let out = f.filter_dataset(&sample());
        assert_eq!(out.record_count(), 2, "8h and 9h records of users 1, 2");
        let collapsed = ParticipantFilter::All.and(ParticipantFilter::users([UserId(1)]));
        assert_eq!(collapsed, ParticipantFilter::users([UserId(1)]));
        assert!(ParticipantFilter::All.and(ParticipantFilter::All).is_all());
    }

    #[test]
    fn window_filtering_preserves_canonical_shape() {
        let windows = WindowedDataset::partition(&sample());
        let f = ParticipantFilter::users([UserId(2), UserId(1)]);
        let filtered = f.filter_window(&windows.windows()[0]).unwrap();
        assert_eq!(filtered.day(), 0);
        assert_eq!(filtered.users(), vec![UserId(1), UserId(2)]);
        // Day 1 has only user 3: fully filtered out.
        assert!(f.filter_window(&windows.windows()[1]).is_none());
        // Filtering the window equals windowing the filtered dataset.
        let refiltered = WindowedDataset::partition(&f.filter_dataset(&sample()));
        assert_eq!(&filtered, &refiltered.windows()[0]);
    }
}
