//! Error type for mobility-data operations.

use std::error::Error;
use std::fmt;

/// Errors produced by the mobility substrate.
#[derive(Debug)]
pub enum MobilityError {
    /// An operation required a non-empty trajectory.
    EmptyTrajectory,
    /// Records were not sorted by timestamp where required.
    UnsortedRecords,
    /// A parameter was invalid (name, offending value).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value rendered as text.
        value: String,
    },
    /// An underlying geospatial error.
    Geo(geo::GeoError),
    /// An I/O error while reading or writing datasets.
    Io(std::io::Error),
    /// A serialization error while reading or writing datasets.
    Serde(JsonError),
    /// A malformed line in a CSV dataset file (1-based line number).
    MalformedCsv {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for MobilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobilityError::EmptyTrajectory => {
                write!(f, "operation requires a non-empty trajectory")
            }
            MobilityError::UnsortedRecords => {
                write!(f, "records must be sorted by timestamp")
            }
            MobilityError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name}: {value}")
            }
            MobilityError::Geo(e) => write!(f, "geospatial error: {e}"),
            MobilityError::Io(e) => write!(f, "i/o error: {e}"),
            MobilityError::Serde(e) => write!(f, "serialization error: {e}"),
            MobilityError::MalformedCsv { line, reason } => {
                write!(f, "malformed csv at line {line}: {reason}")
            }
        }
    }
}

impl Error for MobilityError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MobilityError::Geo(e) => Some(e),
            MobilityError::Io(e) => Some(e),
            MobilityError::Serde(e) => Some(e),
            _ => None,
        }
    }
}

impl From<geo::GeoError> for MobilityError {
    fn from(e: geo::GeoError) -> Self {
        MobilityError::Geo(e)
    }
}

impl From<std::io::Error> for MobilityError {
    fn from(e: std::io::Error) -> Self {
        MobilityError::Io(e)
    }
}

impl From<JsonError> for MobilityError {
    fn from(e: JsonError) -> Self {
        MobilityError::Serde(e)
    }
}

/// A malformed JSON record line (produced by the in-tree JSONL codec in
/// [`crate::io`], which replaces `serde_json` in this offline build).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// Creates an error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for JsonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MobilityError::InvalidParameter {
            name: "users",
            value: "0".into(),
        };
        assert_eq!(e.to_string(), "invalid parameter users: 0");
        assert!(MobilityError::EmptyTrajectory
            .to_string()
            .contains("non-empty"));
    }

    #[test]
    fn source_chains() {
        let inner = geo::GeoError::EmptyPolyline;
        let e = MobilityError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MobilityError>();
    }
}
