//! The mobility data model: records, trajectories and datasets.

use crate::error::MobilityError;
use crate::time::Timestamp;
use geo::{BoundingBox, GeoPoint, Meters, MetersPerSecond};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Opaque identifier of a participant.
///
/// Identifiers are pseudonyms: the platform never stores names, and PRIVAPI's
/// re-identification attack (see the `privapi` crate) measures how easily a
/// pseudonym can be linked back to a mobility profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u64);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user-{}", self.0)
    }
}

/// One timestamped location fix of one user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocationRecord {
    /// The participant who produced this record.
    pub user: UserId,
    /// When the fix was taken.
    pub time: Timestamp,
    /// Where the participant was.
    pub point: GeoPoint,
}

impl LocationRecord {
    /// Creates a record.
    pub const fn new(user: UserId, time: Timestamp, point: GeoPoint) -> Self {
        Self { user, time, point }
    }
}

/// A time-ordered sequence of location records of a single user — typically
/// one day of data (the paper's smoothing unit, §3).
///
/// Invariant: records are sorted by timestamp (ties allowed) and all belong
/// to the same user. Enforced at construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    user: UserId,
    records: Vec<LocationRecord>,
}

impl Trajectory {
    /// Creates a trajectory from records, sorting them by timestamp.
    ///
    /// All records must belong to `user`; records of other users are
    /// discarded (this makes bulk grouping forgiving).
    pub fn new(user: UserId, mut records: Vec<LocationRecord>) -> Self {
        records.retain(|r| r.user == user);
        records.sort_by_key(|r| r.time);
        Self { user, records }
    }

    /// Creates a trajectory from records already sorted by timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::UnsortedRecords`] if the input is not sorted,
    /// and [`MobilityError::InvalidParameter`] if any record belongs to a
    /// different user.
    pub fn from_sorted(
        user: UserId,
        records: Vec<LocationRecord>,
    ) -> Result<Self, MobilityError> {
        if records.windows(2).any(|w| w[1].time < w[0].time) {
            return Err(MobilityError::UnsortedRecords);
        }
        if let Some(r) = records.iter().find(|r| r.user != user) {
            return Err(MobilityError::InvalidParameter {
                name: "records",
                value: format!("record of {} in trajectory of {}", r.user, user),
            });
        }
        Ok(Self { user, records })
    }

    /// The user owning this trajectory.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The records, sorted by timestamp.
    pub fn records(&self) -> &[LocationRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trajectory holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The sequence of points, in time order.
    pub fn points(&self) -> Vec<GeoPoint> {
        self.records.iter().map(|r| r.point).collect()
    }

    /// Timestamp of the first record.
    pub fn start_time(&self) -> Option<Timestamp> {
        self.records.first().map(|r| r.time)
    }

    /// Timestamp of the last record.
    pub fn end_time(&self) -> Option<Timestamp> {
        self.records.last().map(|r| r.time)
    }

    /// Total duration covered, in seconds (zero for < 2 records).
    pub fn duration_s(&self) -> i64 {
        match (self.start_time(), self.end_time()) {
            (Some(a), Some(b)) => b - a,
            _ => 0,
        }
    }

    /// Total path length.
    pub fn length(&self) -> Meters {
        geo::polyline::length(&self.points())
    }

    /// Speed of each segment between consecutive records.
    ///
    /// Segments with zero elapsed time are skipped.
    pub fn segment_speeds(&self) -> Vec<MetersPerSecond> {
        self.records
            .windows(2)
            .filter_map(|w| {
                let dt = w[1].time - w[0].time;
                if dt <= 0 {
                    return None;
                }
                let d = w[0].point.haversine_distance(&w[1].point).get();
                Some(MetersPerSecond::new(d / dt as f64))
            })
            .collect()
    }

    /// Mean segment speed, or `None` for trajectories with < 2 records.
    pub fn mean_speed(&self) -> Option<MetersPerSecond> {
        let speeds = self.segment_speeds();
        if speeds.is_empty() {
            return None;
        }
        let sum: f64 = speeds.iter().map(|s| s.get()).sum();
        Some(MetersPerSecond::new(sum / speeds.len() as f64))
    }

    /// Coefficient of variation of segment speeds (stddev / mean).
    ///
    /// This is the speed-constancy measure used by experiment E2: a perfectly
    /// speed-smoothed trajectory has a coefficient near zero. Returns `None`
    /// when there are fewer than two segments or the mean speed is zero.
    pub fn speed_cv(&self) -> Option<f64> {
        let speeds = self.segment_speeds();
        if speeds.len() < 2 {
            return None;
        }
        let mean: f64 = speeds.iter().map(|s| s.get()).sum::<f64>() / speeds.len() as f64;
        if mean <= f64::EPSILON {
            return None;
        }
        let var: f64 =
            speeds.iter().map(|s| (s.get() - mean).powi(2)).sum::<f64>() / speeds.len() as f64;
        Some(var.sqrt() / mean)
    }

    /// Position at time `t`, linearly interpolated between the surrounding
    /// records. Times outside the covered span clamp to the first/last fix.
    /// Returns `None` for an empty trajectory.
    pub fn position_at(&self, t: Timestamp) -> Option<GeoPoint> {
        let first = self.records.first()?;
        let last = self.records.last()?;
        if t <= first.time {
            return Some(first.point);
        }
        if t >= last.time {
            return Some(last.point);
        }
        // Binary search for the segment containing `t`.
        let idx = self.records.partition_point(|r| r.time <= t);
        let before = &self.records[idx - 1];
        let after = &self.records[idx];
        let span = after.time - before.time;
        if span <= 0 {
            return Some(before.point);
        }
        let frac = (t - before.time) as f64 / span as f64;
        Some(before.point.lerp(&after.point, frac))
    }

    /// Splits the trajectory wherever the gap between consecutive records
    /// exceeds `max_gap_s` seconds.
    pub fn split_by_gap(&self, max_gap_s: i64) -> Vec<Trajectory> {
        if self.records.is_empty() {
            return Vec::new();
        }
        let mut parts = Vec::new();
        let mut current: Vec<LocationRecord> = Vec::new();
        for r in &self.records {
            if let Some(last) = current.last() {
                if r.time - last.time > max_gap_s {
                    parts.push(Trajectory {
                        user: self.user,
                        records: std::mem::take(&mut current),
                    });
                }
            }
            current.push(*r);
        }
        if !current.is_empty() {
            parts.push(Trajectory {
                user: self.user,
                records: current,
            });
        }
        parts
    }

    /// The days (day indexes) this trajectory spans.
    pub fn days(&self) -> Vec<i64> {
        let mut days: Vec<i64> = self.records.iter().map(|r| r.time.day_index()).collect();
        days.dedup();
        days
    }
}

/// A multi-user, multi-day mobility dataset — the unit PRIVAPI anonymizes
/// and publishes.
///
/// Trajectories are held behind [`Arc`]s, making the dataset a
/// **copy-on-write trajectory store**: cloning a dataset, assembling a
/// dataset out of cached per-user trajectories ([`Dataset::from_shared`])
/// and extending one stream prefix from another are all pointer-copy
/// cheap — O(trajectories), never O(records). Equality still compares the
/// pointed-to trajectories by value, so two datasets are equal iff their
/// contents are, shared or not.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    trajectories: Vec<Arc<Trajectory>>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dataset from trajectories.
    pub fn from_trajectories(trajectories: Vec<Trajectory>) -> Self {
        Self {
            trajectories: trajectories.into_iter().map(Arc::new).collect(),
        }
    }

    /// Creates a dataset from already-shared trajectories without copying
    /// any record data (the copy-on-write assembly path).
    pub fn from_shared(trajectories: Vec<Arc<Trajectory>>) -> Self {
        Self { trajectories }
    }

    /// Groups loose records into one trajectory per user.
    pub fn from_records(records: Vec<LocationRecord>) -> Self {
        let mut by_user: BTreeMap<UserId, Vec<LocationRecord>> = BTreeMap::new();
        for r in records {
            by_user.entry(r.user).or_default().push(r);
        }
        Self {
            trajectories: by_user
                .into_iter()
                .map(|(u, rs)| Arc::new(Trajectory::new(u, rs)))
                .collect(),
        }
    }

    /// Adds a trajectory.
    pub fn push(&mut self, trajectory: Trajectory) {
        self.trajectories.push(Arc::new(trajectory));
    }

    /// Adds an already-shared trajectory (no record data copied).
    pub fn push_shared(&mut self, trajectory: Arc<Trajectory>) {
        self.trajectories.push(trajectory);
    }

    /// All trajectories (shared handles; deref to [`Trajectory`]).
    pub fn trajectories(&self) -> &[Arc<Trajectory>] {
        &self.trajectories
    }

    /// Consumes the dataset into its trajectories, in dataset order.
    /// Trajectories still shared with another dataset are deep-cloned;
    /// uniquely-owned ones are moved out.
    pub fn into_trajectories(self) -> Vec<Trajectory> {
        self.trajectories
            .into_iter()
            .map(Arc::unwrap_or_clone)
            .collect()
    }

    /// Consumes the dataset into its shared trajectory handles, in dataset
    /// order (never copies record data).
    pub fn into_shared(self) -> Vec<Arc<Trajectory>> {
        self.trajectories
    }

    /// Number of trajectories (one per user *per day* for generated data).
    pub fn trajectory_count(&self) -> usize {
        self.trajectories.len()
    }

    /// Distinct users, sorted.
    pub fn users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.trajectories.iter().map(|t| t.user()).collect();
        users.sort();
        users.dedup();
        users
    }

    /// Number of distinct users.
    pub fn user_count(&self) -> usize {
        self.users().len()
    }

    /// Total number of records across all trajectories.
    pub fn record_count(&self) -> usize {
        self.trajectories.iter().map(|t| t.len()).sum()
    }

    /// All trajectories belonging to `user`.
    pub fn trajectories_of(&self, user: UserId) -> Vec<&Trajectory> {
        self.trajectories
            .iter()
            .filter(|t| t.user() == user)
            .map(|t| t.as_ref())
            .collect()
    }

    /// Shared handles of all trajectories belonging to `user`, in dataset
    /// order (no record data copied).
    pub fn shared_of(&self, user: UserId) -> Vec<Arc<Trajectory>> {
        self.trajectories
            .iter()
            .filter(|t| t.user() == user)
            .cloned()
            .collect()
    }

    /// All records of `user` across all of their trajectories, time-sorted.
    pub fn records_of(&self, user: UserId) -> Vec<LocationRecord> {
        let mut records: Vec<LocationRecord> = self
            .trajectories
            .iter()
            .filter(|t| t.user() == user)
            .flat_map(|t| t.records().iter().copied())
            .collect();
        records.sort_by_key(|r| r.time);
        records
    }

    /// Iterator over every record in the dataset.
    pub fn iter_records(&self) -> impl Iterator<Item = &LocationRecord> + '_ {
        self.trajectories.iter().flat_map(|t| t.records().iter())
    }

    /// Smallest bounding box covering every record.
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        let points: Vec<GeoPoint> = self.iter_records().map(|r| r.point).collect();
        BoundingBox::from_points(points.iter()).ok()
    }

    /// Applies `f` to every trajectory, producing a transformed dataset.
    ///
    /// This is the hook anonymization strategies use: each trajectory is
    /// rewritten independently.
    pub fn map_trajectories<F>(&self, mut f: F) -> Dataset
    where
        F: FnMut(&Trajectory) -> Trajectory,
    {
        Dataset {
            trajectories: self.trajectories.iter().map(|t| Arc::new(f(t))).collect(),
        }
    }
}

impl FromIterator<Trajectory> for Dataset {
    fn from_iter<I: IntoIterator<Item = Trajectory>>(iter: I) -> Self {
        Dataset {
            trajectories: iter.into_iter().map(Arc::new).collect(),
        }
    }
}

impl FromIterator<Arc<Trajectory>> for Dataset {
    fn from_iter<I: IntoIterator<Item = Arc<Trajectory>>>(iter: I) -> Self {
        Dataset {
            trajectories: iter.into_iter().collect(),
        }
    }
}

impl Extend<Trajectory> for Dataset {
    fn extend<I: IntoIterator<Item = Trajectory>>(&mut self, iter: I) {
        self.trajectories.extend(iter.into_iter().map(Arc::new));
    }
}

impl Extend<Arc<Trajectory>> for Dataset {
    fn extend<I: IntoIterator<Item = Arc<Trajectory>>>(&mut self, iter: I) {
        self.trajectories.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::DAY_SECONDS;

    fn rec(user: u64, t: i64, lat: f64, lon: f64) -> LocationRecord {
        LocationRecord::new(
            UserId(user),
            Timestamp::new(t),
            GeoPoint::new(lat, lon).unwrap(),
        )
    }

    #[test]
    fn trajectory_new_sorts_and_filters() {
        let records = vec![
            rec(1, 100, 45.0, 4.0),
            rec(1, 50, 45.0, 4.0),
            rec(2, 75, 45.0, 4.0), // other user, dropped
        ];
        let t = Trajectory::new(UserId(1), records);
        assert_eq!(t.len(), 2);
        assert_eq!(t.start_time(), Some(Timestamp::new(50)));
        assert_eq!(t.end_time(), Some(Timestamp::new(100)));
    }

    #[test]
    fn from_sorted_validates() {
        let sorted = vec![rec(1, 0, 45.0, 4.0), rec(1, 10, 45.0, 4.0)];
        assert!(Trajectory::from_sorted(UserId(1), sorted.clone()).is_ok());
        let unsorted = vec![rec(1, 10, 45.0, 4.0), rec(1, 0, 45.0, 4.0)];
        assert!(matches!(
            Trajectory::from_sorted(UserId(1), unsorted),
            Err(MobilityError::UnsortedRecords)
        ));
        let wrong_user = vec![rec(2, 0, 45.0, 4.0)];
        assert!(Trajectory::from_sorted(UserId(1), wrong_user).is_err());
    }

    #[test]
    fn duration_and_length() {
        let t = Trajectory::new(
            UserId(1),
            vec![rec(1, 0, 45.0, 4.0), rec(1, 100, 45.0, 4.01)],
        );
        assert_eq!(t.duration_s(), 100);
        assert!(t.length().get() > 700.0 && t.length().get() < 800.0);
    }

    #[test]
    fn segment_speeds_skip_zero_dt() {
        let t = Trajectory::new(
            UserId(1),
            vec![
                rec(1, 0, 45.0, 4.0),
                rec(1, 0, 45.0, 4.001), // simultaneous fix: skipped
                rec(1, 100, 45.0, 4.002),
            ],
        );
        assert_eq!(t.segment_speeds().len(), 1);
    }

    #[test]
    fn speed_cv_constant_speed_is_zero() {
        // Equally spaced points, equal time steps → constant speed.
        let records: Vec<LocationRecord> = (0..10)
            .map(|i| rec(1, i * 60, 45.0, 4.0 + 0.001 * i as f64))
            .collect();
        let t = Trajectory::new(UserId(1), records);
        let cv = t.speed_cv().unwrap();
        assert!(cv < 1e-6, "cv = {cv}");
    }

    #[test]
    fn speed_cv_detects_stops() {
        // Move, stop for a long time, move again → high variation.
        let mut records = Vec::new();
        for i in 0..5 {
            records.push(rec(1, i * 60, 45.0, 4.0 + 0.001 * i as f64));
        }
        for i in 5..20 {
            records.push(rec(1, i * 60, 45.0, 4.004)); // stopped
        }
        for i in 20..25 {
            records.push(rec(1, i * 60, 45.0, 4.004 + 0.001 * (i - 19) as f64));
        }
        let t = Trajectory::new(UserId(1), records);
        assert!(t.speed_cv().unwrap() > 0.5);
    }

    #[test]
    fn split_by_gap() {
        let t = Trajectory::new(
            UserId(1),
            vec![
                rec(1, 0, 45.0, 4.0),
                rec(1, 60, 45.0, 4.0),
                rec(1, 10_000, 45.0, 4.1),
                rec(1, 10_060, 45.0, 4.1),
            ],
        );
        let parts = t.split_by_gap(300);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 2);
        assert_eq!(parts[1].len(), 2);
        assert!(Trajectory::new(UserId(1), vec![])
            .split_by_gap(60)
            .is_empty());
    }

    #[test]
    fn dataset_grouping_and_counts() {
        let ds = Dataset::from_records(vec![
            rec(1, 0, 45.0, 4.0),
            rec(2, 0, 45.0, 4.0),
            rec(1, 60, 45.0, 4.0),
        ]);
        assert_eq!(ds.user_count(), 2);
        assert_eq!(ds.record_count(), 3);
        assert_eq!(ds.trajectories_of(UserId(1)).len(), 1);
        assert_eq!(ds.records_of(UserId(1)).len(), 2);
        assert_eq!(ds.users(), vec![UserId(1), UserId(2)]);
    }

    #[test]
    fn dataset_bounding_box() {
        let ds = Dataset::from_records(vec![rec(1, 0, 45.0, 4.0), rec(1, 60, 46.0, 5.0)]);
        let bbox = ds.bounding_box().unwrap();
        assert_eq!(bbox.min().latitude(), 45.0);
        assert_eq!(bbox.max().longitude(), 5.0);
        assert!(Dataset::new().bounding_box().is_none());
    }

    #[test]
    fn map_trajectories_transforms() {
        let ds = Dataset::from_records(vec![rec(1, 0, 45.0, 4.0), rec(1, 60, 45.0, 4.1)]);
        let emptied = ds.map_trajectories(|t| Trajectory::new(t.user(), Vec::new()));
        assert_eq!(emptied.record_count(), 0);
        assert_eq!(emptied.trajectory_count(), ds.trajectory_count());
    }

    #[test]
    fn days_span() {
        let t = Trajectory::new(
            UserId(1),
            vec![
                rec(1, 0, 45.0, 4.0),
                rec(1, DAY_SECONDS + 5, 45.0, 4.0),
                rec(1, DAY_SECONDS + 10, 45.0, 4.0),
            ],
        );
        assert_eq!(t.days(), vec![0, 1]);
    }

    #[test]
    fn position_at_interpolates() {
        let t = Trajectory::new(
            UserId(1),
            vec![rec(1, 0, 45.0, 4.0), rec(1, 100, 45.0, 4.1)],
        );
        // Before start / after end clamp.
        assert_eq!(
            t.position_at(Timestamp::new(-5)).unwrap(),
            GeoPoint::new(45.0, 4.0).unwrap()
        );
        assert_eq!(
            t.position_at(Timestamp::new(500)).unwrap(),
            GeoPoint::new(45.0, 4.1).unwrap()
        );
        // Midpoint.
        let mid = t.position_at(Timestamp::new(50)).unwrap();
        assert!((mid.longitude() - 4.05).abs() < 1e-9);
        // Quarter point.
        let q = t.position_at(Timestamp::new(25)).unwrap();
        assert!((q.longitude() - 4.025).abs() < 1e-9);
        // Empty trajectory → None.
        assert!(Trajectory::new(UserId(1), vec![])
            .position_at(Timestamp::new(0))
            .is_none());
    }

    #[test]
    fn position_at_handles_duplicate_times() {
        let t = Trajectory::new(
            UserId(1),
            vec![
                rec(1, 10, 45.0, 4.0),
                rec(1, 10, 45.0, 4.2),
                rec(1, 20, 45.0, 4.4),
            ],
        );
        let p = t.position_at(Timestamp::new(10)).unwrap();
        assert!(p.longitude() <= 4.4);
        let p15 = t.position_at(Timestamp::new(15)).unwrap();
        assert!((p15.longitude() - 4.3).abs() < 1e-9);
    }

    #[test]
    fn dataset_collect_and_extend() {
        let t1 = Trajectory::new(UserId(1), vec![rec(1, 0, 45.0, 4.0)]);
        let t2 = Trajectory::new(UserId(2), vec![rec(2, 0, 45.0, 4.0)]);
        let mut ds: Dataset = vec![t1].into_iter().collect();
        ds.extend(vec![t2]);
        assert_eq!(ds.user_count(), 2);
    }
}
