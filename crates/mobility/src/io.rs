//! Dataset import and export.
//!
//! Two interchange formats are supported:
//!
//! * **JSON-lines** — one [`LocationRecord`] per line, the format the
//!   Honeycomb uses to persist collected datasets and PRIVAPI uses to
//!   publish anonymized ones;
//! * **CSV** — `user,timestamp,latitude,longitude`, for spreadsheet-level
//!   interoperability.

use crate::error::{JsonError, MobilityError};
use crate::record::{Dataset, LocationRecord, UserId};
use crate::time::Timestamp;
use geo::GeoPoint;
use std::io::{BufRead, BufReader, Read, Write};

/// Writes a dataset as JSON-lines (one record per line).
///
/// A `&mut` reference can be passed for `writer` (C-RW-VALUE).
///
/// # Errors
///
/// Propagates I/O and serialization errors.
pub fn write_jsonl<W: Write>(dataset: &Dataset, mut writer: W) -> Result<(), MobilityError> {
    for record in dataset.iter_records() {
        writeln!(
            writer,
            r#"{{"user":{},"time":{},"lat":{:?},"lon":{:?}}}"#,
            record.user.0,
            record.time.seconds(),
            record.point.latitude(),
            record.point.longitude()
        )?;
    }
    Ok(())
}

/// Reads a dataset from JSON-lines, grouping records per user.
///
/// # Errors
///
/// Propagates I/O errors and fails on any malformed line.
pub fn read_jsonl<R: Read>(reader: R) -> Result<Dataset, MobilityError> {
    let buf = BufReader::new(reader);
    let mut records = Vec::new();
    for line in buf.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        records.push(record_from_json(&line)?);
    }
    Ok(Dataset::from_records(records))
}

/// Parses one record from the JSON object layout written by
/// [`write_jsonl`]: `{"user":u64,"time":i64,"lat":f64,"lon":f64}`.
///
/// Field order is flexible and unknown fields are rejected; this in-tree
/// codec replaces `serde_json`, which is unavailable in the offline build.
fn record_from_json(line: &str) -> Result<LocationRecord, JsonError> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|rest| rest.strip_suffix('}'))
        .ok_or_else(|| JsonError::new(format!("expected a JSON object, got {line:?}")))?;
    let mut user: Option<u64> = None;
    let mut time: Option<i64> = None;
    let mut lat: Option<f64> = None;
    let mut lon: Option<f64> = None;
    for field in body.split(',') {
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| JsonError::new(format!("malformed field {field:?}")))?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        let bad_num = || JsonError::new(format!("bad number {value:?} for field {key:?}"));
        match key {
            "user" => user = Some(value.parse().map_err(|_| bad_num())?),
            "time" => time = Some(value.parse().map_err(|_| bad_num())?),
            "lat" => lat = Some(value.parse().map_err(|_| bad_num())?),
            "lon" => lon = Some(value.parse().map_err(|_| bad_num())?),
            other => return Err(JsonError::new(format!("unknown field {other:?}"))),
        }
    }
    let missing = |name| JsonError::new(format!("missing field {name:?}"));
    let point = GeoPoint::new(
        lat.ok_or_else(|| missing("lat"))?,
        lon.ok_or_else(|| missing("lon"))?,
    )
    .map_err(|e| JsonError::new(e.to_string()))?;
    Ok(LocationRecord::new(
        UserId(user.ok_or_else(|| missing("user"))?),
        Timestamp::new(time.ok_or_else(|| missing("time"))?),
        point,
    ))
}

/// Writes a dataset as CSV with a header line.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv<W: Write>(dataset: &Dataset, mut writer: W) -> Result<(), MobilityError> {
    writeln!(writer, "user,timestamp,latitude,longitude")?;
    for r in dataset.iter_records() {
        writeln!(
            writer,
            "{},{},{:.7},{:.7}",
            r.user.0,
            r.time.seconds(),
            r.point.latitude(),
            r.point.longitude()
        )?;
    }
    Ok(())
}

/// Reads a dataset from CSV produced by [`write_csv`] (header optional).
///
/// # Errors
///
/// Returns [`MobilityError::MalformedCsv`] with a 1-based line number on any
/// malformed row.
pub fn read_csv<R: Read>(reader: R) -> Result<Dataset, MobilityError> {
    let buf = BufReader::new(reader);
    let mut records = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || (idx == 0 && trimmed.starts_with("user")) {
            continue;
        }
        let mut parts = trimmed.split(',');
        let parse_err = |reason: &str| MobilityError::MalformedCsv {
            line: idx + 1,
            reason: reason.to_string(),
        };
        let user: u64 = parts
            .next()
            .ok_or_else(|| parse_err("missing user"))?
            .trim()
            .parse()
            .map_err(|_| parse_err("bad user id"))?;
        let ts: i64 = parts
            .next()
            .ok_or_else(|| parse_err("missing timestamp"))?
            .trim()
            .parse()
            .map_err(|_| parse_err("bad timestamp"))?;
        let lat: f64 = parts
            .next()
            .ok_or_else(|| parse_err("missing latitude"))?
            .trim()
            .parse()
            .map_err(|_| parse_err("bad latitude"))?;
        let lon: f64 = parts
            .next()
            .ok_or_else(|| parse_err("missing longitude"))?
            .trim()
            .parse()
            .map_err(|_| parse_err("bad longitude"))?;
        let point = GeoPoint::new(lat, lon).map_err(|e| MobilityError::MalformedCsv {
            line: idx + 1,
            reason: e.to_string(),
        })?;
        records.push(LocationRecord::new(UserId(user), Timestamp::new(ts), point));
    }
    Ok(Dataset::from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Trajectory;

    fn sample_dataset() -> Dataset {
        let recs = vec![
            LocationRecord::new(
                UserId(1),
                Timestamp::new(0),
                GeoPoint::new(45.0, 4.0).unwrap(),
            ),
            LocationRecord::new(
                UserId(1),
                Timestamp::new(60),
                GeoPoint::new(45.001, 4.001).unwrap(),
            ),
            LocationRecord::new(
                UserId(2),
                Timestamp::new(30),
                GeoPoint::new(45.5, 4.5).unwrap(),
            ),
        ];
        Dataset::from_records(recs)
    }

    #[test]
    fn jsonl_roundtrip() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_jsonl(&ds, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.record_count(), ds.record_count());
        assert_eq!(back.user_count(), ds.user_count());
        assert_eq!(back.records_of(UserId(1)), ds.records_of(UserId(1)));
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_jsonl(&ds, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("\n\n");
        let back = read_jsonl(text.as_bytes()).unwrap();
        assert_eq!(back.record_count(), 3);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        let res = read_jsonl("not json\n".as_bytes());
        assert!(matches!(res, Err(MobilityError::Serde(_))));
    }

    #[test]
    fn csv_roundtrip() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("user,timestamp,latitude,longitude"));
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.record_count(), 3);
        assert_eq!(back.user_count(), 2);
        // Positions survive the 7-decimal round trip to ~cm precision.
        let orig = ds.records_of(UserId(2))[0].point;
        let readback = back.records_of(UserId(2))[0].point;
        assert!(orig.haversine_distance(&readback).get() < 0.05);
    }

    #[test]
    fn csv_reports_line_numbers() {
        let text = "user,timestamp,latitude,longitude\n1,0,45.0,4.0\n1,zzz,45.0,4.0\n";
        match read_csv(text.as_bytes()) {
            Err(MobilityError::MalformedCsv { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected MalformedCsv, got {other:?}"),
        }
    }

    #[test]
    fn csv_rejects_out_of_range_coordinates() {
        let text = "1,0,95.0,4.0\n";
        assert!(matches!(
            read_csv(text.as_bytes()),
            Err(MobilityError::MalformedCsv { line: 1, .. })
        ));
    }

    #[test]
    fn empty_inputs_give_empty_datasets() {
        assert_eq!(read_jsonl("".as_bytes()).unwrap().record_count(), 0);
        assert_eq!(read_csv("".as_bytes()).unwrap().record_count(), 0);
    }

    #[test]
    fn write_into_trajectory_order_independent() {
        // Order of trajectories does not affect the parsed per-user data.
        let t1 = Trajectory::new(
            UserId(1),
            vec![LocationRecord::new(
                UserId(1),
                Timestamp::new(0),
                GeoPoint::new(45.0, 4.0).unwrap(),
            )],
        );
        let t2 = Trajectory::new(
            UserId(2),
            vec![LocationRecord::new(
                UserId(2),
                Timestamp::new(0),
                GeoPoint::new(46.0, 5.0).unwrap(),
            )],
        );
        let mut buf1 = Vec::new();
        write_jsonl(
            &Dataset::from_trajectories(vec![t1.clone(), t2.clone()]),
            &mut buf1,
        )
        .unwrap();
        let mut buf2 = Vec::new();
        write_jsonl(&Dataset::from_trajectories(vec![t2, t1]), &mut buf2).unwrap();
        let a = read_jsonl(buf1.as_slice()).unwrap();
        let b = read_jsonl(buf2.as_slice()).unwrap();
        assert_eq!(a.records_of(UserId(1)), b.records_of(UserId(1)));
        assert_eq!(a.records_of(UserId(2)), b.records_of(UserId(2)));
    }
}
