//! Timestamps for mobility records.
//!
//! Mobility analyses care about *time-of-day* and *day boundaries* much more
//! than calendar dates, so [`Timestamp`] is a plain count of seconds since an
//! arbitrary epoch (day 0, 00:00). Weekdays are derived cyclically, with day
//! 0 being a Monday.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Number of seconds in one minute.
pub const MINUTE_SECONDS: i64 = 60;
/// Number of seconds in one hour.
pub const HOUR_SECONDS: i64 = 3_600;
/// Number of seconds in one day.
pub const DAY_SECONDS: i64 = 86_400;

/// A point in simulated time: seconds since epoch (day 0 at midnight).
///
/// # Example
///
/// ```
/// use mobility::Timestamp;
///
/// let t = Timestamp::from_day_time(2, 8, 30, 0); // day 2, 08:30:00
/// assert_eq!(t.day_index(), 2);
/// assert_eq!(t.hour_of_day(), 8);
/// assert_eq!(t.weekday(), 2); // Wednesday (day 0 = Monday)
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Creates a timestamp from raw seconds since epoch.
    pub const fn new(seconds: i64) -> Self {
        Self(seconds)
    }

    /// Creates a timestamp from a day index and a wall-clock time.
    pub const fn from_day_time(day: i64, hour: i64, minute: i64, second: i64) -> Self {
        Self(day * DAY_SECONDS + hour * HOUR_SECONDS + minute * MINUTE_SECONDS + second)
    }

    /// Seconds since epoch.
    pub const fn seconds(self) -> i64 {
        self.0
    }

    /// The day this timestamp falls in (floor division, so negative
    /// timestamps land in negative days).
    pub const fn day_index(self) -> i64 {
        self.0.div_euclid(DAY_SECONDS)
    }

    /// Seconds elapsed since the start of the day, in `[0, 86400)`.
    pub const fn seconds_of_day(self) -> i64 {
        self.0.rem_euclid(DAY_SECONDS)
    }

    /// Hour of the day in `[0, 24)`.
    pub const fn hour_of_day(self) -> i64 {
        self.seconds_of_day() / HOUR_SECONDS
    }

    /// Day of week in `[0, 7)`; day 0 of the epoch is a Monday.
    pub const fn weekday(self) -> i64 {
        self.day_index().rem_euclid(7)
    }

    /// Whether this timestamp falls on a Saturday or Sunday.
    pub const fn is_weekend(self) -> bool {
        self.weekday() >= 5
    }

    /// Whether the time of day falls in the night window `[22:00, 06:00)`.
    pub const fn is_night(self) -> bool {
        let h = self.hour_of_day();
        h >= 22 || h < 6
    }

    /// Index of the hour slot since epoch (used by traffic matrices).
    pub const fn hour_slot(self) -> i64 {
        self.0.div_euclid(HOUR_SECONDS)
    }

    /// Timestamp at the start of this timestamp's day.
    pub const fn start_of_day(self) -> Timestamp {
        Timestamp(self.day_index() * DAY_SECONDS)
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;
    /// Adds a number of seconds.
    fn add(self, seconds: i64) -> Timestamp {
        Timestamp(self.0 + seconds)
    }
}

impl Sub<i64> for Timestamp {
    type Output = Timestamp;
    /// Subtracts a number of seconds.
    fn sub(self, seconds: i64) -> Timestamp {
        Timestamp(self.0 - seconds)
    }
}

impl Sub for Timestamp {
    type Output = i64;
    /// Difference between two timestamps, in seconds.
    fn sub(self, other: Timestamp) -> i64 {
        self.0 - other.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.seconds_of_day();
        write!(
            f,
            "d{} {:02}:{:02}:{:02}",
            self.day_index(),
            s / HOUR_SECONDS,
            (s % HOUR_SECONDS) / MINUTE_SECONDS,
            s % MINUTE_SECONDS
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_time_construction() {
        let t = Timestamp::from_day_time(3, 14, 45, 30);
        assert_eq!(t.seconds(), 3 * DAY_SECONDS + 14 * 3600 + 45 * 60 + 30);
        assert_eq!(t.day_index(), 3);
        assert_eq!(t.hour_of_day(), 14);
        assert_eq!(t.seconds_of_day(), 14 * 3600 + 45 * 60 + 30);
    }

    #[test]
    fn weekday_cycles() {
        assert_eq!(Timestamp::from_day_time(0, 12, 0, 0).weekday(), 0);
        assert_eq!(Timestamp::from_day_time(5, 12, 0, 0).weekday(), 5);
        assert!(Timestamp::from_day_time(5, 12, 0, 0).is_weekend());
        assert!(Timestamp::from_day_time(6, 12, 0, 0).is_weekend());
        assert!(!Timestamp::from_day_time(7, 12, 0, 0).is_weekend());
        assert_eq!(Timestamp::from_day_time(7, 12, 0, 0).weekday(), 0);
    }

    #[test]
    fn night_window() {
        assert!(Timestamp::from_day_time(0, 23, 0, 0).is_night());
        assert!(Timestamp::from_day_time(0, 2, 0, 0).is_night());
        assert!(!Timestamp::from_day_time(0, 6, 0, 0).is_night());
        assert!(!Timestamp::from_day_time(0, 12, 0, 0).is_night());
        assert!(Timestamp::from_day_time(0, 22, 0, 0).is_night());
    }

    #[test]
    fn negative_timestamps_floor_correctly() {
        let t = Timestamp::new(-1);
        assert_eq!(t.day_index(), -1);
        assert_eq!(t.seconds_of_day(), DAY_SECONDS - 1);
        assert_eq!(t.weekday(), 6);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_day_time(1, 0, 0, 0);
        assert_eq!((t + 60).seconds(), DAY_SECONDS + 60);
        assert_eq!((t - 60).seconds(), DAY_SECONDS - 60);
        assert_eq!(t + 60 - t, 60);
    }

    #[test]
    fn display_format() {
        let t = Timestamp::from_day_time(2, 8, 5, 9);
        assert_eq!(t.to_string(), "d2 08:05:09");
    }

    #[test]
    fn hour_slot_advances_hourly() {
        let t0 = Timestamp::from_day_time(0, 10, 59, 59);
        let t1 = Timestamp::from_day_time(0, 11, 0, 0);
        assert_eq!(t0.hour_slot() + 1, t1.hour_slot());
    }

    #[test]
    fn start_of_day() {
        let t = Timestamp::from_day_time(4, 13, 37, 21);
        assert_eq!(t.start_of_day(), Timestamp::from_day_time(4, 0, 0, 0));
    }
}
