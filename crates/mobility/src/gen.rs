//! Synthetic mobility-data generation.
//!
//! The paper evaluates its protection mechanisms on a proprietary real-life
//! GPS dataset. This module is the documented substitute (`DESIGN.md` §2): a
//! synthetic mid-size city with residential, business and leisure sites, and
//! a population of commuters with per-user schedules. The generated traces
//! have the structure the attacks exploit — long dwells at semantically
//! meaningful places, commutes at realistic speeds, GPS jitter — together
//! with exact ground truth, which makes privacy metrics measurable.
//!
//! Two auxiliary models, [`random_waypoint`] and [`levy_flight`], provide
//! unstructured workloads for stress tests and benchmarks.

use crate::poi::PoiKind;
use crate::record::{Dataset, LocationRecord, Trajectory, UserId};
use crate::time::{Timestamp, DAY_SECONDS, HOUR_SECONDS};
use geo::{GeoPoint, Meters};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Samples a normally distributed value with the Box–Muller transform.
///
/// Kept local to avoid a `rand_distr` dependency.
fn sample_normal(rng: &mut StdRng, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std_dev * z
}

/// Adds isotropic Gaussian jitter of standard deviation `sigma_m` metres.
fn jitter(rng: &mut StdRng, p: GeoPoint, sigma_m: f64) -> GeoPoint {
    if sigma_m <= 0.0 {
        return p;
    }
    let dlat_m = sample_normal(rng, 0.0, sigma_m);
    let dlon_m = sample_normal(rng, 0.0, sigma_m);
    let cos_lat = p.latitude().to_radians().cos().max(0.01);
    GeoPoint::clamped(
        p.latitude() + dlat_m / 111_320.0,
        p.longitude() + dlon_m / (111_320.0 * cos_lat),
    )
}

/// A ground-truth point of interest a user actually frequented.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruthPoi {
    /// Site position.
    pub site: GeoPoint,
    /// Semantic kind of the site.
    pub kind: PoiKind,
}

/// Ground truth of a generated dataset: per-user visited sites.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    pois: BTreeMap<UserId, Vec<TruthPoi>>,
}

impl GroundTruth {
    /// Registers a visited site, de-duplicating within 10 m.
    fn record_visit(&mut self, user: UserId, site: GeoPoint, kind: PoiKind) {
        let entry = self.pois.entry(user).or_default();
        if !entry
            .iter()
            .any(|p| p.site.haversine_distance(&site).get() < 10.0)
        {
            entry.push(TruthPoi { site, kind });
        }
    }

    /// Ground-truth POIs of one user.
    pub fn pois_of(&self, user: UserId) -> &[TruthPoi] {
        self.pois.get(&user).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Users with at least one ground-truth POI.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.pois.keys().copied()
    }

    /// Total number of ground-truth POIs across all users.
    pub fn total_pois(&self) -> usize {
        self.pois.values().map(Vec::len).sum()
    }
}

/// A generated dataset together with its ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedData {
    /// The mobility dataset.
    pub dataset: Dataset,
    /// Per-user ground-truth POIs.
    pub truth: GroundTruth,
}

/// Configuration of a population generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of participants.
    pub users: usize,
    /// Number of simulated days.
    pub days: usize,
    /// Sampling interval of the location sensor, in seconds.
    pub sampling_interval_s: i64,
    /// GPS noise standard deviation, in metres.
    pub gps_noise_m: f64,
    /// Probability of an evening leisure trip on a weekday.
    pub leisure_probability: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            users: 50,
            days: 7,
            sampling_interval_s: 60,
            gps_noise_m: 5.0,
            leisure_probability: 0.35,
        }
    }
}

/// The daily agenda profile of one simulated commuter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PersonProfile {
    /// The participant.
    pub user: UserId,
    /// Home site.
    pub home: GeoPoint,
    /// Workplace site.
    pub work: GeoPoint,
    /// Favourite leisure sites (restaurants, gyms, cinemas...).
    pub leisure: Vec<GeoPoint>,
    /// Mean home-departure hour (e.g. 8.0 = 08:00).
    pub departure_hour: f64,
    /// Mean workday length in hours.
    pub work_hours: f64,
    /// Mean commute travel speed, metres per second.
    pub speed_mps: f64,
}

/// A synthetic city: a set of home, work and leisure sites around a centre.
///
/// Built once (deterministically from a seed) and reused to generate any
/// number of populations. See [`CityModel::builder`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CityModel {
    center: GeoPoint,
    radius_m: f64,
    homes: Vec<GeoPoint>,
    workplaces: Vec<GeoPoint>,
    leisure_sites: Vec<GeoPoint>,
    seed: u64,
}

/// Builder for [`CityModel`].
#[derive(Debug, Clone)]
pub struct CityBuilder {
    center: GeoPoint,
    radius_m: f64,
    home_sites: usize,
    work_sites: usize,
    leisure_sites: usize,
    seed: u64,
}

impl Default for CityBuilder {
    fn default() -> Self {
        Self {
            // A mid-size European city centre (Lyon, where PRIVAPI was built).
            center: GeoPoint::clamped(45.7578, 4.8320),
            radius_m: 8_000.0,
            home_sites: 400,
            work_sites: 80,
            leisure_sites: 120,
            seed: 0xC0FFEE,
        }
    }
}

impl CityBuilder {
    /// Sets the RNG seed (site layout and population are derived from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the city centre.
    pub fn center(mut self, center: GeoPoint) -> Self {
        self.center = center;
        self
    }

    /// Sets the city radius in metres.
    pub fn radius_m(mut self, radius_m: f64) -> Self {
        self.radius_m = radius_m;
        self
    }

    /// Sets the number of candidate home sites.
    pub fn home_sites(mut self, n: usize) -> Self {
        self.home_sites = n.max(1);
        self
    }

    /// Sets the number of candidate workplace sites.
    pub fn work_sites(mut self, n: usize) -> Self {
        self.work_sites = n.max(1);
        self
    }

    /// Sets the number of candidate leisure sites.
    pub fn leisure_sites(mut self, n: usize) -> Self {
        self.leisure_sites = n.max(1);
        self
    }

    /// Materializes the city: site positions are drawn deterministically.
    pub fn build(self) -> CityModel {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5EED_C117_u64);
        let ring_site = |rng: &mut StdRng, r_min: f64, r_max: f64| -> GeoPoint {
            let r = rng.gen_range(r_min..r_max);
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            self.center
                .destination(geo::Degrees::new(theta.to_degrees()), Meters::new(r))
        };
        // Homes in a residential annulus, workplaces packed near the centre,
        // leisure anywhere.
        let homes = (0..self.home_sites)
            .map(|_| ring_site(&mut rng, 0.15 * self.radius_m, 0.95 * self.radius_m))
            .collect();
        let workplaces = (0..self.work_sites)
            .map(|_| ring_site(&mut rng, 0.0, 0.35 * self.radius_m))
            .collect();
        let leisure_sites = (0..self.leisure_sites)
            .map(|_| ring_site(&mut rng, 0.0, 0.9 * self.radius_m))
            .collect();
        CityModel {
            center: self.center,
            radius_m: self.radius_m,
            homes,
            workplaces,
            leisure_sites,
            seed: self.seed,
        }
    }
}

/// A named population scenario: a deterministic bundle of city layout,
/// schedule parameters and daily participation density.
///
/// Multi-campaign deployments and the benchmark drivers need *diverse*
/// populations without every call site hand-tuning a [`CityBuilder`] and a
/// [`PopulationConfig`]; a preset names the whole bundle so two callers
/// asking for `Commuter` at the same seed get byte-identical data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioPreset {
    /// Dense weekday commuters: compact city, frequent sampling, few
    /// leisure trips, near-daily participation.
    Commuter,
    /// Leisure-heavy visitors: wide city, many leisure sites, long dwell
    /// at attractions, moderate participation.
    Tourist,
    /// A blend of the above — the default "whole population" shape.
    Mixed,
    /// A sparse rural area: large radius, few sites, coarse sampling and
    /// low daily participation (most users silent on most days).
    SparseRural,
}

impl ScenarioPreset {
    /// Every preset, in a stable order.
    pub const ALL: [ScenarioPreset; 4] = [
        ScenarioPreset::Commuter,
        ScenarioPreset::Tourist,
        ScenarioPreset::Mixed,
        ScenarioPreset::SparseRural,
    ];

    /// Parses a preset name (`commuter`, `tourist`, `mixed`,
    /// `sparse_rural`).
    ///
    /// # Errors
    ///
    /// Returns the offending name (unknown presets must never silently
    /// fall back to a default scenario).
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "commuter" => Ok(ScenarioPreset::Commuter),
            "tourist" => Ok(ScenarioPreset::Tourist),
            "mixed" => Ok(ScenarioPreset::Mixed),
            "sparse_rural" => Ok(ScenarioPreset::SparseRural),
            other => Err(format!(
                "unknown scenario preset {other:?}; use commuter|tourist|mixed|sparse_rural"
            )),
        }
    }

    /// The preset's canonical name (inverse of [`ScenarioPreset::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioPreset::Commuter => "commuter",
            ScenarioPreset::Tourist => "tourist",
            ScenarioPreset::Mixed => "mixed",
            ScenarioPreset::SparseRural => "sparse_rural",
        }
    }

    /// The preset's city layout, derived deterministically from `seed`.
    pub fn city(&self, seed: u64) -> CityModel {
        let builder = CityModel::builder().seed(seed);
        match self {
            ScenarioPreset::Commuter => builder
                .radius_m(5_000.0)
                .home_sites(300)
                .work_sites(60)
                .leisure_sites(40),
            ScenarioPreset::Tourist => builder
                .radius_m(10_000.0)
                .home_sites(150)
                .work_sites(30)
                .leisure_sites(240),
            ScenarioPreset::Mixed => builder,
            ScenarioPreset::SparseRural => builder
                .radius_m(20_000.0)
                .home_sites(120)
                .work_sites(15)
                .leisure_sites(25),
        }
        .build()
    }

    /// The preset's schedule parameters for a `users × days` population.
    pub fn population(&self, users: usize, days: usize) -> PopulationConfig {
        match self {
            ScenarioPreset::Commuter => PopulationConfig {
                users,
                days,
                sampling_interval_s: 90,
                gps_noise_m: 5.0,
                leisure_probability: 0.15,
            },
            ScenarioPreset::Tourist => PopulationConfig {
                users,
                days,
                sampling_interval_s: 120,
                gps_noise_m: 8.0,
                leisure_probability: 0.8,
            },
            ScenarioPreset::Mixed => PopulationConfig {
                users,
                days,
                sampling_interval_s: 120,
                gps_noise_m: 5.0,
                leisure_probability: 0.35,
            },
            ScenarioPreset::SparseRural => PopulationConfig {
                users,
                days,
                sampling_interval_s: 300,
                gps_noise_m: 12.0,
                leisure_probability: 0.2,
            },
        }
    }

    /// The preset's daily participation percentage, applied through
    /// [`thin_participation`] (the generator itself produces
    /// everyone-every-day data; real crowd-sensing participation is
    /// sparse, and sparser still in rural deployments).
    pub fn participation_pct(&self) -> u64 {
        match self {
            ScenarioPreset::Commuter => 70,
            ScenarioPreset::Tourist => 45,
            ScenarioPreset::Mixed => 50,
            ScenarioPreset::SparseRural => 20,
        }
    }

    /// Generates the preset's dataset (with ground truth) for
    /// `users × days` at `seed`, participation already thinned to
    /// [`ScenarioPreset::participation_pct`]. Fully deterministic per
    /// `(preset, users, days, seed)`.
    pub fn generate(&self, users: usize, days: usize, seed: u64) -> GeneratedData {
        let data = self
            .city(seed)
            .generate_with_truth(&self.population(users, days));
        GeneratedData {
            dataset: thin_participation(&data.dataset, self.participation_pct()),
            truth: data.truth,
        }
    }
}

impl std::fmt::Display for ScenarioPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Thins a dataset to a sparse-participation shape: every record of the
/// first day is kept (so a streaming session starts with everyone's
/// history), and each later `(user, day)` pair is kept with probability
/// `participation_pct` % under a deterministic hash — the same records
/// are dropped on every run. Equivalent to
/// [`thin_participation_salted`] at salt `0`.
pub fn thin_participation(dataset: &Dataset, participation_pct: u64) -> Dataset {
    thin_participation_salted(dataset, participation_pct, 0)
}

/// [`thin_participation`] with an explicit hash salt, so property tests
/// can vary *which* `(user, day)` pairs drop out across seeds while every
/// caller shares one thinning implementation.
pub fn thin_participation_salted(
    dataset: &Dataset,
    participation_pct: u64,
    salt: u64,
) -> Dataset {
    let Some(first_day) = dataset.iter_records().map(|r| r.time.day_index()).min() else {
        return Dataset::new();
    };
    let keep = |user: UserId, day: i64| {
        day == first_day
            || user
                .0
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((day as u64).wrapping_mul(0x85EB_CA6B))
                .wrapping_add(salt.wrapping_mul(0xC2B2_AE3D))
                % 100
                < participation_pct
    };
    Dataset::from_records(
        dataset
            .iter_records()
            .filter(|r| keep(r.user, r.time.day_index()))
            .copied()
            .collect(),
    )
}

/// One scheduled activity in a simulated day.
#[derive(Debug, Clone)]
enum Segment {
    /// Dwell at a site between two times.
    Stay {
        site: GeoPoint,
        kind: PoiKind,
        from: i64,
        to: i64,
    },
    /// Travel along a path between two times.
    Travel {
        path: Vec<GeoPoint>,
        from: i64,
        to: i64,
    },
}

impl CityModel {
    /// Starts building a city.
    pub fn builder() -> CityBuilder {
        CityBuilder::default()
    }

    /// The city centre.
    pub fn center(&self) -> GeoPoint {
        self.center
    }

    /// The city radius in metres.
    pub fn radius(&self) -> Meters {
        Meters::new(self.radius_m)
    }

    /// Number of (home, work, leisure) candidate sites.
    pub fn site_counts(&self) -> (usize, usize, usize) {
        (
            self.homes.len(),
            self.workplaces.len(),
            self.leisure_sites.len(),
        )
    }

    /// Derives the persistent profile of user `id` for this city.
    pub fn profile_of(&self, id: UserId) -> PersonProfile {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let home = self.homes[rng.gen_range(0..self.homes.len())];
        let work = self.workplaces[rng.gen_range(0..self.workplaces.len())];
        let mut leisure = Vec::new();
        let favourites = rng.gen_range(1..=3usize);
        for _ in 0..favourites {
            leisure.push(self.leisure_sites[rng.gen_range(0..self.leisure_sites.len())]);
        }
        PersonProfile {
            user: id,
            home,
            work,
            leisure,
            departure_hour: sample_normal(&mut rng, 8.2, 0.5).clamp(6.0, 10.5),
            work_hours: sample_normal(&mut rng, 8.0, 0.6).clamp(6.0, 10.0),
            speed_mps: sample_normal(&mut rng, 8.5, 1.5).clamp(4.0, 14.0),
        }
    }

    /// Generates a population's mobility dataset (no ground truth).
    pub fn generate_population(&self, config: &PopulationConfig) -> Dataset {
        self.generate_with_truth(config).dataset
    }

    /// Generates a population's mobility dataset together with ground truth.
    pub fn generate_with_truth(&self, config: &PopulationConfig) -> GeneratedData {
        let mut dataset = Dataset::new();
        let mut truth = GroundTruth::default();
        for uid in 0..config.users {
            let user = UserId(uid as u64);
            let profile = self.profile_of(user);
            for day in 0..config.days {
                let mut rng = StdRng::seed_from_u64(
                    self.seed
                        ^ (uid as u64).wrapping_mul(0x517C_C1B7_2722_0A95)
                        ^ (day as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
                );
                let segments = self.plan_day(&profile, day as i64, config, &mut rng);
                for seg in &segments {
                    if let Segment::Stay {
                        site,
                        kind,
                        from,
                        to,
                    } = seg
                    {
                        // Only dwell episodes long enough to be POIs count
                        // as ground truth (matches the 15-min stay rule).
                        if to - from >= 15 * 60 {
                            truth.record_visit(user, *site, *kind);
                        }
                    }
                }
                let records = sample_segments(
                    user,
                    &segments,
                    day as i64,
                    config.sampling_interval_s,
                    config.gps_noise_m,
                    &mut rng,
                );
                dataset.push(Trajectory::new(user, records));
            }
        }
        GeneratedData { dataset, truth }
    }

    /// Plans the activity segments of one user-day.
    fn plan_day(
        &self,
        profile: &PersonProfile,
        day: i64,
        config: &PopulationConfig,
        rng: &mut StdRng,
    ) -> Vec<Segment> {
        let day_start = day * DAY_SECONDS;
        let day_end = (day + 1) * DAY_SECONDS;
        let weekend = Timestamp::new(day_start).is_weekend();
        let mut segments = Vec::new();
        let mut clock = day_start;
        let mut here = profile.home;

        let travel_to = |segments: &mut Vec<Segment>,
                         clock: &mut i64,
                         from: GeoPoint,
                         to: GeoPoint,
                         rng: &mut StdRng| {
            let path = manhattan_path(from, to, rng);
            let dist = geo::polyline::length(&path).get();
            let speed = sample_normal(rng, profile.speed_mps, 0.8).clamp(3.0, 16.0);
            let duration = (dist / speed).ceil() as i64;
            segments.push(Segment::Travel {
                path,
                from: *clock,
                to: *clock + duration,
            });
            *clock += duration;
        };

        if !weekend {
            // Morning at home.
            let depart =
                day_start + (sample_normal(rng, profile.departure_hour, 0.25) * 3_600.0) as i64;
            let depart =
                depart.clamp(day_start + 4 * HOUR_SECONDS, day_start + 12 * HOUR_SECONDS);
            segments.push(Segment::Stay {
                site: profile.home,
                kind: PoiKind::Home,
                from: clock,
                to: depart,
            });
            clock = depart;
            // Commute to work.
            travel_to(&mut segments, &mut clock, here, profile.work, rng);
            here = profile.work;
            // Work day.
            let work_end = clock
                + (sample_normal(rng, profile.work_hours, 0.4).clamp(4.0, 11.0) * 3_600.0)
                    as i64;
            let work_end = work_end.min(day_end - 2 * HOUR_SECONDS);
            segments.push(Segment::Stay {
                site: profile.work,
                kind: PoiKind::Work,
                from: clock,
                to: work_end,
            });
            clock = work_end;
            // Possibly an evening leisure trip.
            if !profile.leisure.is_empty() && rng.gen_bool(config.leisure_probability) {
                let spot = profile.leisure[rng.gen_range(0..profile.leisure.len())];
                travel_to(&mut segments, &mut clock, here, spot, rng);
                here = spot;
                let leave = (clock
                    + (sample_normal(rng, 2.0, 0.4).clamp(0.75, 3.5) * 3_600.0) as i64)
                    .min(day_end - HOUR_SECONDS / 2);
                if leave > clock {
                    segments.push(Segment::Stay {
                        site: spot,
                        kind: PoiKind::Other,
                        from: clock,
                        to: leave,
                    });
                    clock = leave;
                }
            }
            // Home for the night.
            if here != profile.home {
                travel_to(&mut segments, &mut clock, here, profile.home, rng);
            }
            if clock < day_end {
                segments.push(Segment::Stay {
                    site: profile.home,
                    kind: PoiKind::Home,
                    from: clock,
                    to: day_end,
                });
            }
        } else {
            // Weekend: optional late-morning outing, otherwise home.
            let outing = !profile.leisure.is_empty() && rng.gen_bool(0.6);
            if outing {
                let leave = day_start
                    + (sample_normal(rng, 11.0, 1.0).clamp(8.0, 15.0) * 3_600.0) as i64;
                segments.push(Segment::Stay {
                    site: profile.home,
                    kind: PoiKind::Home,
                    from: clock,
                    to: leave,
                });
                clock = leave;
                let spot = profile.leisure[rng.gen_range(0..profile.leisure.len())];
                travel_to(&mut segments, &mut clock, here, spot, rng);
                here = spot;
                let back = (clock
                    + (sample_normal(rng, 2.5, 0.7).clamp(1.0, 5.0) * 3_600.0) as i64)
                    .min(day_end - HOUR_SECONDS);
                if back > clock {
                    segments.push(Segment::Stay {
                        site: spot,
                        kind: PoiKind::Other,
                        from: clock,
                        to: back,
                    });
                    clock = back;
                }
                travel_to(&mut segments, &mut clock, here, profile.home, rng);
            }
            if clock < day_end {
                segments.push(Segment::Stay {
                    site: profile.home,
                    kind: PoiKind::Home,
                    from: clock,
                    to: day_end,
                });
            }
        }
        segments
    }
}

/// An L-shaped (Manhattan street grid) path between two points, with a small
/// jitter on the corner so routes are not perfectly axis-aligned.
fn manhattan_path(from: GeoPoint, to: GeoPoint, rng: &mut StdRng) -> Vec<GeoPoint> {
    let corner = if rng.gen_bool(0.5) {
        GeoPoint::clamped(from.latitude(), to.longitude())
    } else {
        GeoPoint::clamped(to.latitude(), from.longitude())
    };
    let corner = jitter(rng, corner, 30.0);
    vec![from, corner, to]
}

/// Samples location records from activity segments at a fixed interval.
fn sample_segments(
    user: UserId,
    segments: &[Segment],
    day: i64,
    interval_s: i64,
    gps_noise_m: f64,
    rng: &mut StdRng,
) -> Vec<LocationRecord> {
    let interval_s = interval_s.max(1);
    let day_start = day * DAY_SECONDS;
    let day_end = (day + 1) * DAY_SECONDS;
    let mut records = Vec::with_capacity(((day_end - day_start) / interval_s) as usize);
    let mut seg_idx = 0;
    let mut t = day_start;
    while t < day_end {
        // Advance to the segment containing `t`.
        while seg_idx < segments.len() {
            let (_, to) = segment_bounds(&segments[seg_idx]);
            if t < to {
                break;
            }
            seg_idx += 1;
        }
        if seg_idx >= segments.len() {
            break;
        }
        let pos = match &segments[seg_idx] {
            Segment::Stay { site, .. } => *site,
            Segment::Travel { path, from, to } => {
                let span = (to - from).max(1);
                let frac = ((t - from) as f64 / span as f64).clamp(0.0, 1.0);
                let total = geo::polyline::length(path);
                geo::polyline::point_at_distance(path, total * frac).unwrap_or_else(|_| path[0])
            }
        };
        records.push(LocationRecord::new(
            user,
            Timestamp::new(t),
            jitter(rng, pos, gps_noise_m),
        ));
        t += interval_s;
    }
    records
}

fn segment_bounds(seg: &Segment) -> (i64, i64) {
    match seg {
        Segment::Stay { from, to, .. } => (*from, *to),
        Segment::Travel { from, to, .. } => (*from, *to),
    }
}

/// Generates a random-waypoint trace: pick a target uniformly in the disk,
/// travel to it at constant speed, pause, repeat. Unstructured workload used
/// by benchmarks.
pub fn random_waypoint(
    user: UserId,
    center: GeoPoint,
    radius_m: f64,
    duration_s: i64,
    interval_s: i64,
    seed: u64,
) -> Trajectory {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();
    let mut pos = center;
    let mut t: i64 = 0;
    let interval_s = interval_s.max(1);
    while t < duration_s {
        let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let r = radius_m * rng.gen_range(0.0f64..1.0).sqrt();
        let target = center.destination(geo::Degrees::new(theta.to_degrees()), Meters::new(r));
        let speed = rng.gen_range(1.0..12.0);
        let dist = pos.haversine_distance(&target).get();
        let travel = (dist / speed).ceil() as i64;
        let steps = (travel / interval_s).max(1);
        for s in 0..steps {
            if t >= duration_s {
                break;
            }
            let frac = s as f64 / steps as f64;
            records.push(LocationRecord::new(
                user,
                Timestamp::new(t),
                pos.lerp(&target, frac),
            ));
            t += interval_s;
        }
        pos = target;
        let pause = rng.gen_range(0..600);
        let pause_steps = pause / interval_s;
        for _ in 0..pause_steps {
            if t >= duration_s {
                break;
            }
            records.push(LocationRecord::new(user, Timestamp::new(t), pos));
            t += interval_s;
        }
    }
    Trajectory::new(user, records)
}

/// Generates a Lévy-flight trace: step lengths follow a heavy-tailed Pareto
/// distribution, producing the burst-and-dwell structure observed in human
/// mobility studies.
pub fn levy_flight(
    user: UserId,
    center: GeoPoint,
    radius_m: f64,
    steps: usize,
    interval_s: i64,
    seed: u64,
) -> Trajectory {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();
    let mut pos = center;
    let alpha = 1.6; // Pareto tail exponent
    let min_step = 20.0;
    for i in 0..steps {
        records.push(LocationRecord::new(
            user,
            Timestamp::new(i as i64 * interval_s.max(1)),
            pos,
        ));
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let step = (min_step / u.powf(1.0 / alpha)).min(radius_m);
        let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let next = pos.destination(geo::Degrees::new(theta.to_degrees()), Meters::new(step));
        // Reflect back toward the centre when leaving the disk.
        pos = if center.haversine_distance(&next).get() > radius_m {
            center
        } else {
            next
        };
    }
    Trajectory::new(user, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staypoint::{detect_all, StayPointConfig};

    fn small_config() -> PopulationConfig {
        PopulationConfig {
            users: 4,
            days: 2,
            sampling_interval_s: 120,
            gps_noise_m: 5.0,
            leisure_probability: 0.5,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let city1 = CityModel::builder().seed(99).build();
        let city2 = CityModel::builder().seed(99).build();
        let a = city1.generate_population(&small_config());
        let b = city2.generate_population(&small_config());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CityModel::builder()
            .seed(1)
            .build()
            .generate_population(&small_config());
        let b = CityModel::builder()
            .seed(2)
            .build()
            .generate_population(&small_config());
        assert_ne!(a, b);
    }

    #[test]
    fn counts_match_config() {
        let cfg = small_config();
        let data = CityModel::builder()
            .seed(5)
            .build()
            .generate_with_truth(&cfg);
        assert_eq!(data.dataset.user_count(), cfg.users);
        assert_eq!(data.dataset.trajectory_count(), cfg.users * cfg.days);
        // ~720 records per user-day at 120 s sampling.
        let expected = (cfg.users * cfg.days) as f64 * (86_400.0 / 120.0);
        let actual = data.dataset.record_count() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.05,
            "records: {actual} vs expected {expected}"
        );
    }

    #[test]
    fn records_sorted_and_within_day() {
        let data = CityModel::builder()
            .seed(5)
            .build()
            .generate_with_truth(&small_config());
        for traj in data.dataset.trajectories() {
            let day = traj.records()[0].time.day_index();
            for w in traj.records().windows(2) {
                assert!(w[0].time <= w[1].time);
            }
            for r in traj.records() {
                assert_eq!(r.time.day_index(), day, "record crossed day boundary");
            }
        }
    }

    #[test]
    fn ground_truth_includes_home_and_work() {
        let data = CityModel::builder()
            .seed(7)
            .build()
            .generate_with_truth(&small_config());
        for user in data.dataset.users() {
            let pois = data.truth.pois_of(user);
            assert!(
                pois.iter().any(|p| p.kind == PoiKind::Home),
                "{user} missing home"
            );
            // Two weekdays in the window → work must appear.
            assert!(
                pois.iter().any(|p| p.kind == PoiKind::Work),
                "{user} missing work"
            );
        }
    }

    #[test]
    fn stay_points_found_at_ground_truth_sites() {
        let data = CityModel::builder()
            .seed(11)
            .build()
            .generate_with_truth(&small_config());
        let user = data.dataset.users()[0];
        let trajs = data.dataset.trajectories_of(user);
        let stays = detect_all(trajs.iter().copied(), &StayPointConfig::default());
        assert!(!stays.is_empty(), "no stay points detected");
        // Every ground-truth POI should have at least one nearby stay.
        for poi in data.truth.pois_of(user) {
            let found = stays
                .iter()
                .any(|s| s.centroid.haversine_distance(&poi.site).get() < 250.0);
            assert!(found, "no stay near {:?}", poi.kind);
        }
    }

    #[test]
    fn city_sites_within_radius() {
        let city = CityModel::builder().seed(3).radius_m(5_000.0).build();
        let (h, w, l) = city.site_counts();
        assert!(h > 0 && w > 0 && l > 0);
        for site in city
            .homes
            .iter()
            .chain(city.workplaces.iter())
            .chain(city.leisure_sites.iter())
        {
            let d = city.center().haversine_distance(site).get();
            assert!(d <= 5_000.0 * 0.96, "site {d} m from centre");
        }
    }

    #[test]
    fn profile_is_stable() {
        let city = CityModel::builder().seed(21).build();
        let p1 = city.profile_of(UserId(3));
        let p2 = city.profile_of(UserId(3));
        assert_eq!(p1.home, p2.home);
        assert_eq!(p1.work, p2.work);
        assert_eq!(p1.leisure.len(), p2.leisure.len());
        assert!(p1.departure_hour >= 6.0 && p1.departure_hour <= 10.5);
        assert!(p1.speed_mps >= 4.0 && p1.speed_mps <= 14.0);
    }

    #[test]
    fn weekday_has_commute_speeds() {
        // Day 0 is a Monday: traces must contain moving segments.
        let data =
            CityModel::builder()
                .seed(13)
                .build()
                .generate_with_truth(&PopulationConfig {
                    users: 1,
                    days: 1,
                    ..small_config()
                });
        let traj = &data.dataset.trajectories()[0];
        let max_speed = traj
            .segment_speeds()
            .iter()
            .map(|s| s.get())
            .fold(0.0, f64::max);
        assert!(max_speed > 2.0, "no movement detected: {max_speed}");
    }

    #[test]
    fn random_waypoint_stays_in_disk() {
        let center = GeoPoint::clamped(45.75, 4.83);
        let t = random_waypoint(UserId(9), center, 2_000.0, 3_600, 30, 77);
        assert!(!t.is_empty());
        for r in t.records() {
            assert!(center.haversine_distance(&r.point).get() <= 2_100.0);
        }
    }

    #[test]
    fn levy_flight_is_bounded_and_sized() {
        let center = GeoPoint::clamped(45.75, 4.83);
        let t = levy_flight(UserId(9), center, 3_000.0, 200, 60, 123);
        assert_eq!(t.len(), 200);
        for r in t.records() {
            assert!(center.haversine_distance(&r.point).get() <= 3_100.0);
        }
    }

    #[test]
    fn scenario_presets_are_deterministic_and_distinct() {
        for preset in ScenarioPreset::ALL {
            let a = preset.generate(4, 3, 7);
            let b = preset.generate(4, 3, 7);
            assert_eq!(a.dataset, b.dataset, "{preset}");
            assert!(a.dataset.record_count() > 0, "{preset}");
            assert_eq!(ScenarioPreset::parse(preset.name()), Ok(preset));
        }
        // Different presets at the same seed give different data.
        let commuter = ScenarioPreset::Commuter.generate(4, 3, 7);
        let rural = ScenarioPreset::SparseRural.generate(4, 3, 7);
        assert_ne!(commuter.dataset, rural.dataset);
        // Rural data is sparser both in sampling and participation.
        assert!(rural.dataset.record_count() < commuter.dataset.record_count());
        assert!(ScenarioPreset::parse("urban").is_err());
    }

    #[test]
    fn thinning_is_deterministic_and_keeps_the_first_day() {
        let data =
            CityModel::builder()
                .seed(5)
                .build()
                .generate_population(&PopulationConfig {
                    users: 5,
                    days: 3,
                    sampling_interval_s: 300,
                    ..small_config()
                });
        let thinned = thin_participation(&data, 50);
        assert_eq!(thinned, thin_participation(&data, 50));
        assert!(thinned.record_count() < data.record_count());
        // Day 0 keeps every user; 100 % keeps every record; 0 % keeps only
        // day 0.
        let windows = crate::window::WindowedDataset::partition(&thinned);
        assert_eq!(windows.windows()[0].users().len(), 5);
        assert_eq!(
            thin_participation(&data, 100).record_count(),
            data.record_count()
        );
        assert_eq!(
            crate::window::WindowedDataset::partition(&thin_participation(&data, 0)).len(),
            1
        );
        assert_eq!(thin_participation(&Dataset::new(), 50).record_count(), 0);
        // A different salt drops a different (user, day) set; salt 0 is
        // the unsalted helper.
        assert_eq!(thin_participation_salted(&data, 50, 0), thinned);
        assert_ne!(thin_participation_salted(&data, 50, 1), thinned);
    }

    #[test]
    fn sample_normal_roughly_centred() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| sample_normal(&mut rng, 5.0, 2.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }
}
