//! Stay-point detection.
//!
//! A *stay point* is a maximal sub-sequence of a trajectory during which the
//! user remained within a small radius for a minimum amount of time — the
//! raw signal from which points of interest are built. The detector follows
//! Li et al., "Mining user similarity based on location history" (ACM GIS
//! 2008), the algorithm used by the paper's companion work on POI attacks.

use crate::record::Trajectory;
use crate::time::Timestamp;
use geo::{GeoPoint, Meters};
use serde::{Deserialize, Serialize};

/// A detected stay episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StayPoint {
    /// Mean position over the stay.
    pub centroid: GeoPoint,
    /// Time the user arrived.
    pub arrival: Timestamp,
    /// Time the user left.
    pub departure: Timestamp,
}

impl StayPoint {
    /// Dwell time of the stay, in seconds.
    pub fn duration_s(&self) -> i64 {
        self.departure - self.arrival
    }
}

/// Parameters of the stay-point detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StayPointConfig {
    /// Maximum roaming distance within a stay.
    pub distance_threshold: Meters,
    /// Minimum dwell time, in seconds, for a pause to count as a stay.
    pub time_threshold_s: i64,
}

impl Default for StayPointConfig {
    /// The defaults used by the paper's companion attack work:
    /// 200 m roaming radius, 15 minutes minimum dwell.
    fn default() -> Self {
        Self {
            distance_threshold: Meters::new(200.0),
            time_threshold_s: 15 * 60,
        }
    }
}

/// Detects stay points in a single trajectory.
///
/// # Example
///
/// ```
/// use mobility::{LocationRecord, Timestamp, Trajectory, UserId};
/// use mobility::staypoint::{detect, StayPointConfig};
/// use geo::GeoPoint;
///
/// // 30 minutes parked at the same spot.
/// let records: Vec<LocationRecord> = (0..30)
///     .map(|i| LocationRecord::new(
///         UserId(1),
///         Timestamp::new(i * 60),
///         GeoPoint::new(45.0, 4.0).unwrap(),
///     ))
///     .collect();
/// let t = Trajectory::new(UserId(1), records);
/// let stays = detect(&t, &StayPointConfig::default());
/// assert_eq!(stays.len(), 1);
/// assert!(stays[0].duration_s() >= 15 * 60);
/// ```
pub fn detect(trajectory: &Trajectory, config: &StayPointConfig) -> Vec<StayPoint> {
    let records = trajectory.records();
    let mut stays = Vec::new();
    let n = records.len();
    let mut i = 0;
    while i < n {
        // Find the longest window [i, j) staying within the radius of p_i.
        let mut j = i + 1;
        while j < n {
            let d = records[i].point.haversine_distance(&records[j].point).get();
            if d > config.distance_threshold.get() {
                break;
            }
            j += 1;
        }
        // records[i..j] are all within distance_threshold of records[i].
        let last = j - 1;
        let dwell = records[last].time - records[i].time;
        if dwell >= config.time_threshold_s {
            let count = (last - i + 1) as f64;
            let lat = records[i..=last]
                .iter()
                .map(|r| r.point.latitude())
                .sum::<f64>()
                / count;
            let lon = records[i..=last]
                .iter()
                .map(|r| r.point.longitude())
                .sum::<f64>()
                / count;
            stays.push(StayPoint {
                centroid: GeoPoint::clamped(lat, lon),
                arrival: records[i].time,
                departure: records[last].time,
            });
            i = j;
        } else {
            i += 1;
        }
    }
    stays
}

/// Detects stay points across many trajectories (e.g. all days of one user).
pub fn detect_all<'a, I>(trajectories: I, config: &StayPointConfig) -> Vec<StayPoint>
where
    I: IntoIterator<Item = &'a Trajectory>,
{
    let mut stays: Vec<StayPoint> = trajectories
        .into_iter()
        .flat_map(|t| detect(t, config))
        .collect();
    stays.sort_by_key(|s| s.arrival);
    stays
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LocationRecord, UserId};

    fn rec(t: i64, lat: f64, lon: f64) -> LocationRecord {
        LocationRecord::new(
            UserId(1),
            Timestamp::new(t),
            GeoPoint::new(lat, lon).unwrap(),
        )
    }

    fn cfg() -> StayPointConfig {
        StayPointConfig::default()
    }

    #[test]
    fn empty_trajectory_no_stays() {
        let t = Trajectory::new(UserId(1), vec![]);
        assert!(detect(&t, &cfg()).is_empty());
    }

    #[test]
    fn moving_trajectory_no_stays() {
        // 1 km/min straight line: never within 200 m for 15 min.
        let records: Vec<LocationRecord> = (0..60)
            .map(|i| rec(i * 60, 45.0, 4.0 + 0.01 * i as f64))
            .collect();
        let t = Trajectory::new(UserId(1), records);
        assert!(detect(&t, &cfg()).is_empty());
    }

    #[test]
    fn single_long_stay_detected() {
        let records: Vec<LocationRecord> = (0..60).map(|i| rec(i * 60, 45.0, 4.0)).collect();
        let t = Trajectory::new(UserId(1), records);
        let stays = detect(&t, &cfg());
        assert_eq!(stays.len(), 1);
        assert_eq!(stays[0].arrival, Timestamp::new(0));
        assert_eq!(stays[0].departure, Timestamp::new(59 * 60));
        assert!(
            stays[0]
                .centroid
                .haversine_distance(&GeoPoint::new(45.0, 4.0).unwrap())
                .get()
                < 1.0
        );
    }

    #[test]
    fn short_pause_ignored() {
        // Only 10 minutes of dwell: below the 15-minute threshold.
        let records: Vec<LocationRecord> = (0..10).map(|i| rec(i * 60, 45.0, 4.0)).collect();
        let t = Trajectory::new(UserId(1), records);
        assert!(detect(&t, &cfg()).is_empty());
    }

    #[test]
    fn two_stays_with_commute_between() {
        let mut records = Vec::new();
        // Stay A: 0..30 min at (45.0, 4.0).
        for i in 0..30 {
            records.push(rec(i * 60, 45.0, 4.0));
        }
        // Commute: 30..40 min moving east fast.
        for i in 30..40 {
            records.push(rec(i * 60, 45.0, 4.0 + 0.01 * (i - 29) as f64));
        }
        // Stay B: 40..70 min at (45.0, 4.1).
        for i in 40..70 {
            records.push(rec(i * 60, 45.0, 4.1));
        }
        let t = Trajectory::new(UserId(1), records);
        let stays = detect(&t, &cfg());
        assert_eq!(stays.len(), 2);
        assert!(stays[0].centroid.longitude() < 4.05);
        assert!(stays[1].centroid.longitude() > 4.05);
        assert!(stays[0].departure <= stays[1].arrival);
    }

    #[test]
    fn jittered_stay_still_detected() {
        // GPS noise of ±50 m around a fixed spot stays within the 200 m radius.
        let records: Vec<LocationRecord> = (0..30)
            .map(|i| {
                let jitter = if i % 2 == 0 { 0.0004 } else { -0.0004 };
                rec(i * 60, 45.0 + jitter, 4.0)
            })
            .collect();
        let t = Trajectory::new(UserId(1), records);
        let stays = detect(&t, &cfg());
        assert_eq!(stays.len(), 1);
    }

    #[test]
    fn detect_all_merges_and_sorts() {
        let day0: Vec<LocationRecord> = (0..30).map(|i| rec(i * 60, 45.0, 4.0)).collect();
        let day1: Vec<LocationRecord> =
            (0..30).map(|i| rec(86_400 + i * 60, 45.0, 4.1)).collect();
        let t0 = Trajectory::new(UserId(1), day0);
        let t1 = Trajectory::new(UserId(1), day1);
        // Pass them in reverse order; output must still be time-sorted.
        let stays = detect_all([&t1, &t0], &cfg());
        assert_eq!(stays.len(), 2);
        assert!(stays[0].arrival < stays[1].arrival);
    }

    #[test]
    fn custom_thresholds() {
        let records: Vec<LocationRecord> = (0..10).map(|i| rec(i * 60, 45.0, 4.0)).collect();
        let t = Trajectory::new(UserId(1), records);
        let lenient = StayPointConfig {
            distance_threshold: Meters::new(200.0),
            time_threshold_s: 5 * 60,
        };
        assert_eq!(detect(&t, &lenient).len(), 1);
    }
}
