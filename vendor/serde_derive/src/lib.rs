//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! the workspace vendors a minimal substitute. The `serde` facade crate
//! provides blanket implementations of `Serialize` / `Deserialize` for every
//! type, which means these derive macros only need to *exist* (so that
//! `#[derive(Serialize, Deserialize)]` resolves) — they expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; the `serde` facade blanket-implements the trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the `serde` facade blanket-implements the trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
