//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal facade. It provides:
//!
//! * [`Serialize`] / [`Deserialize`] marker traits, blanket-implemented for
//!   every type, so generic bounds written against serde still compile;
//! * re-exports of the no-op derive macros from `serde_derive`, so
//!   `#[derive(Serialize, Deserialize)]` resolves.
//!
//! No actual (de)serialization is performed anywhere in the workspace today;
//! when a real serde becomes available, deleting `vendor/serde*` and
//! pointing the workspace dependency at crates.io restores full behaviour
//! without touching any consuming code.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types. Blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented for all types.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker mirroring serde's owned-deserialization helper trait.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
