//! Offline stand-in for `rand` 0.8.
//!
//! crates.io is unreachable in this build environment, so the workspace
//! vendors a small, self-contained implementation of the API subset it
//! actually uses: `rngs::StdRng`, `SeedableRng::{from_seed, seed_from_u64}`,
//! and `Rng::{gen, gen_range, gen_bool}` over integer and float ranges.
//!
//! The generator is xoshiro256** (public-domain algorithm by Blackman &
//! Vigna) seeded through SplitMix64 — statistically solid for simulation
//! workloads, deterministic per seed. Streams differ from the real
//! `StdRng` (ChaCha12), which is fine: the workspace only relies on
//! determinism and distribution quality, never on exact stream values.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of rand 0.8's trait).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values producible directly from raw bits (backs [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly sampleable from half-open and closed intervals.
pub trait SampleUniform: Sized {
    /// Draws from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $ty
            }
            fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $ty
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::from_rng(rng) * (hi - lo)
    }
    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

/// Ranges that can be sampled uniformly (backs [`Rng::gen_range`]).
///
/// Implemented once over [`SampleUniform`] (like the real rand) so that an
/// untyped literal range such as `0..600` keeps driving type inference.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(*self.start(), *self.end(), rng)
    }
}

/// High-level sampling API (subset of rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Deterministic per seed; streams differ from the crates.io `StdRng`
    /// (ChaCha12), which no consumer relies on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut mixed = 0u64;
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes[..chunk.len()].copy_from_slice(chunk);
                mixed ^= u64::from_le_bytes(bytes).rotate_left(i as u32 * 16 + 1);
            }
            Self::from_u64(mixed)
        }

        fn seed_from_u64(state: u64) -> Self {
            Self::from_u64(state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.5f64);
            assert!((-2.0..3.5).contains(&f));
            let i = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }
}
