//! Offline stand-in for `rayon`.
//!
//! crates.io is unreachable in this build environment, so the workspace
//! vendors the small API subset it uses: `par_iter()`/`par_iter_mut()`
//! over slices and `Vec`s, `map`, and order-preserving `collect()` into a
//! `Vec`. Unlike a mock, the implementation is genuinely parallel: work is
//! split into one contiguous chunk per available core and executed on
//! scoped OS threads, so data-parallel speedups are real on multi-core
//! hosts while results stay in input order (bit-identical to a sequential
//! run for pure maps).

use std::num::NonZeroUsize;

/// Entry points re-exported the way rayon's prelude does.
pub mod prelude {
    pub use crate::{
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParSlice, ParSliceMap,
        ParSliceMut, ParSliceMutMap,
    };
}

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Types whose references can be iterated in parallel.
pub trait IntoParallelRefIterator<'a> {
    /// Item yielded by the parallel iterator.
    type Item: 'a;
    /// The parallel iterator type.
    type Iter;

    /// Creates a parallel iterator over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

/// A borrowed slice awaiting a parallel transformation.
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Lazily attaches the mapping function.
    pub fn map<R, F>(self, f: F) -> ParSliceMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParSliceMap {
            items: self.items,
            f,
        }
    }

    /// Number of items to process.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there is nothing to process.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator; consumed by [`ParSliceMap::collect`].
pub struct ParSliceMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParSliceMap<'a, T, F>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Runs the map on scoped threads and gathers results in input order.
    ///
    /// `C` is anything constructible from the ordered `Vec` of results
    /// (in practice `Vec<R>` itself), mirroring how call sites write
    /// `collect::<Vec<_>>()` against real rayon.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(self.run())
    }

    fn run(self) -> Vec<R> {
        let n = self.items.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut chunks: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for handle in handles {
                chunks.push(handle.join().expect("worker thread panicked"));
            }
        });
        let mut out = Vec::with_capacity(n);
        for part in chunks {
            out.extend(part);
        }
        out
    }
}

/// Types whose mutable references can be iterated in parallel.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item yielded by the parallel iterator.
    type Item: 'a;
    /// The parallel iterator type.
    type Iter;

    /// Creates a parallel iterator over `&mut self`.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = ParSliceMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        ParSliceMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = ParSliceMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        ParSliceMut { items: self }
    }
}

/// A mutably borrowed slice awaiting a parallel transformation.
pub struct ParSliceMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParSliceMut<'a, T> {
    /// Lazily attaches the mapping function.
    pub fn map<R, F>(self, f: F) -> ParSliceMutMap<'a, T, F>
    where
        F: Fn(&'a mut T) -> R + Sync,
        R: Send,
    {
        ParSliceMutMap {
            items: self.items,
            f,
        }
    }

    /// Number of items to process.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there is nothing to process.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped mutable parallel iterator; consumed by
/// [`ParSliceMutMap::collect`].
pub struct ParSliceMutMap<'a, T, F> {
    items: &'a mut [T],
    f: F,
}

impl<'a, T, F, R> ParSliceMutMap<'a, T, F>
where
    T: Send,
    F: Fn(&'a mut T) -> R + Sync,
    R: Send,
{
    /// Runs the map on scoped threads and gathers results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(self.run())
    }

    fn run(self) -> Vec<R> {
        let n = self.items.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return self.items.iter_mut().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut chunks: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks_mut(chunk)
                .map(|part| scope.spawn(move || part.iter_mut().map(f).collect::<Vec<R>>()))
                .collect();
            for handle in handles {
                chunks.push(handle.join().expect("worker thread panicked"));
            }
        });
        let mut out = Vec::with_capacity(n);
        for part in chunks {
            out.extend(part);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn closures_capture_environment() {
        let offset = 100;
        let input = vec![1, 2, 3];
        let out: Vec<i32> = input.par_iter().map(|x| x + offset).collect();
        assert_eq!(out, vec![101, 102, 103]);
    }

    #[test]
    fn mut_map_mutates_in_place_and_preserves_order() {
        let mut items: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = items
            .par_iter_mut()
            .map(|x| {
                *x *= 2;
                *x + 1
            })
            .collect();
        let expected_items: Vec<u64> = (0..10_000).map(|x| x * 2).collect();
        let expected_out: Vec<u64> = expected_items.iter().map(|x| x + 1).collect();
        assert_eq!(items, expected_items);
        assert_eq!(out, expected_out);
    }

    #[test]
    fn mut_map_on_empty_and_single() {
        let mut empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter_mut().map(|x| *x).collect();
        assert!(out.is_empty());
        let mut one = [41u32];
        let out: Vec<u32> = one
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .collect();
        assert_eq!(out, vec![42]);
        assert_eq!(one, [42]);
    }
}
