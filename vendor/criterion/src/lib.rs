//! Offline stand-in for `criterion`.
//!
//! crates.io is unreachable in this build environment, so the workspace
//! vendors a small wall-clock harness exposing the API subset its benches
//! use: `Criterion::benchmark_group`, `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are intentionally simple — mean, min and max over the sample
//! runs — but timings are real, so relative comparisons (e.g. sequential vs
//! parallel engine runs) are meaningful. Passing `--test` (as
//! `cargo test --benches` does) runs each benchmark once, functioning as a
//! smoke test.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Things accepted where a benchmark name is expected.
pub trait IntoBenchmarkId {
    /// Converts into a printable id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    /// Accumulated measurements, one per sample.
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    smoke_test: bool,
}

impl Bencher {
    /// Times `routine`, running enough iterations to fill the measurement
    /// window (or exactly one iteration in `--test` smoke mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_test {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
            return;
        }
        // Warm-up: run until the warm-up window elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
        }
        // Measurement: spread `sample_size` samples across the window.
        let per_sample = self.measurement.div_f64(self.sample_size.max(1) as f64);
        for _ in 0..self.sample_size {
            let mut iters = 0u64;
            let start = Instant::now();
            loop {
                std::hint::black_box(routine());
                iters += 1;
                if start.elapsed() >= per_sample {
                    break;
                }
            }
            self.samples.push(start.elapsed().div_f64(iters as f64));
        }
    }
}

/// A named set of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            smoke_test: self.criterion.smoke_test,
        };
        f(&mut bencher);
        report(&self.name, &id, &bencher.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; reporting is incremental).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &BenchmarkId, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mean = samples
        .iter()
        .sum::<Duration>()
        .div_f64(samples.len() as f64);
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{group}/{id}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
        samples.len()
    );
}

/// The benchmark driver.
pub struct Criterion {
    smoke_test: bool,
}

impl Default for Criterion {
    /// Reads the command line: `--test` (passed by `cargo test --benches`)
    /// switches to one-iteration smoke mode.
    fn default() -> Self {
        Self {
            smoke_test: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }

    /// Runs one stand-alone benchmark with default settings.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { smoke_test: true };
        let mut calls = 0u32;
        let mut group = c.benchmark_group("test");
        group.bench_function("counts", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
