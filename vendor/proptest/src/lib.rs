//! Offline stand-in for `proptest`.
//!
//! crates.io is unreachable in this build environment, so the workspace
//! vendors a compact property-testing engine covering the API subset its
//! test suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`Strategy`] with `prop_map`, range strategies, tuple strategies,
//!   `any::<T>()`, `prop::collection::vec`, `prop::option::of`, and
//!   `.{a,b}`-style string patterns,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike the real crate there is no shrinking: a failing case reports the
//! generated inputs verbatim. Case generation is fully deterministic (the
//! seed is derived from the test name and case index), so failures are
//! reproducible run over run.

use std::fmt;
use std::ops::Range;

/// Deterministic generator backing every strategy (xoshiro256**).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the generator for one (test, case) pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1_0000_0000_01B3);
        }
        h ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut sm = h;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Self { s }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Failure of a single property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Drives one property over `config.cases` deterministic cases.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first failing case.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(name, case);
        if let Err(e) = property(&mut rng) {
            panic!(
                "property {name} failed at case {case}/{}:\n{e}",
                config.cases
            );
        }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy_int {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $ty
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Pattern-string strategy: supports the `<atom>{min,max}` regex subset,
/// where `<atom>` is `.` (any char except newline) or a character class
/// such as `[a-z]` / `[a-z0-9_]`.
///
/// `.` draws from printable ASCII with an occasional multi-byte character.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let parsed = parse_repeat_pattern(self).unwrap_or_else(|| {
            panic!(
                "unsupported string pattern {self:?}; this stand-in knows \
                 `.{{min,max}}` and `[class]{{min,max}}` only"
            )
        });
        let (atom, min, max) = parsed;
        let len = min + rng.below((max - min + 1) as u64) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            match &atom {
                PatternAtom::AnyChar => {
                    let roll = rng.below(100);
                    if roll < 92 {
                        out.push((0x20 + rng.below(0x5F) as u8) as char);
                    } else {
                        const EXOTIC: [char; 8] = ['é', 'ü', 'λ', '中', '—', '😀', '\t', '§'];
                        out.push(EXOTIC[rng.below(EXOTIC.len() as u64) as usize]);
                    }
                }
                PatternAtom::Class(chars) => {
                    out.push(chars[rng.below(chars.len() as u64) as usize]);
                }
            }
        }
        out
    }
}

/// One repeatable unit of a string pattern.
enum PatternAtom {
    /// `.` — any character except newline.
    AnyChar,
    /// `[...]` — the expanded member set of a character class.
    Class(Vec<char>),
}

/// Parses `<atom>{min,max}` into its atom and bounds.
fn parse_repeat_pattern(pattern: &str) -> Option<(PatternAtom, usize, usize)> {
    let (atom, rest) = if let Some(rest) = pattern.strip_prefix('.') {
        (PatternAtom::AnyChar, rest)
    } else if let Some(after) = pattern.strip_prefix('[') {
        let (class, rest) = after.split_once(']')?;
        let members = expand_class(class)?;
        (PatternAtom::Class(members), rest)
    } else {
        return None;
    };
    let bounds = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = bounds.split_once(',')?;
    let min: usize = min.trim().parse().ok()?;
    let max: usize = max.trim().parse().ok()?;
    (min <= max).then_some((atom, min, max))
}

/// Expands a character class body (`a-z0-9_`) into its members.
fn expand_class(class: &str) -> Option<Vec<char>> {
    let chars: Vec<char> = class.chars().collect();
    let mut members = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                members.push(c);
            }
            i += 3;
        } else {
            members.push(chars[i]);
            i += 1;
        }
    }
    (!members.is_empty()).then_some(members)
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Like proptest's default f64 strategy, excludes NaN/infinities.
        loop {
            let v = f64::from_bits(rng.next_u64());
            if v.is_finite() {
                return v;
            }
        }
    }
}

/// The canonical strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Combinator modules mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        /// Strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.len.end - self.len.start) as u64;
                let len = self.len.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy for `Option<S::Value>` (half `None`, half `Some`).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// Strategy returned by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.next_u64() & 1 == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests (subset of proptest's macro of the same name).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal muncher expanding each property into a `#[test]` fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest($cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                __outcome.map_err(|e| {
                    $crate::TestCaseError::fail(format!("{e}\n  inputs: {}", __inputs))
                })
            });
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Property-style assertion: fails the case (not the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property-style equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn dot_repeat_parsing() {
        assert!(matches!(
            super::parse_repeat_pattern(".{0,20}"),
            Some((super::PatternAtom::AnyChar, 0, 20))
        ));
        assert!(matches!(
            super::parse_repeat_pattern("[a-z]{1,3}"),
            Some((super::PatternAtom::Class(_), 1, 3))
        ));
        assert!(super::parse_repeat_pattern("[a-z]+").is_none());
        assert_eq!(super::expand_class("a-c_"), Some(vec!['a', 'b', 'c', '_']));
    }

    #[test]
    fn determinism_per_name_and_case() {
        let a = crate::TestRng::for_case("x", 0).next_u64();
        let b = crate::TestRng::for_case("x", 0).next_u64();
        let c = crate::TestRng::for_case("x", 1).next_u64();
        let d = crate::TestRng::for_case("y", 0).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3..10i64, f in -1.0..1.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u64..5, ".{0,4}"), 0..6).prop_map(|pairs| pairs.len()),
            o in prop::option::of(any::<u64>()),
        ) {
            prop_assert!(v < 6);
            if o.is_none() { return Ok(()); }
            prop_assert_eq!(o.is_some(), true);
        }
    }
}
