//! Offline stand-in for `bytes`.
//!
//! crates.io is unreachable in this build environment, so the workspace
//! vendors the API subset its wire codec and transports use. [`Bytes`] is a
//! cheaply cloneable (`Arc`-backed) immutable buffer with a cursor;
//! [`BytesMut`] is a growable buffer. Both speak the big-endian [`Buf`] /
//! [`BufMut`] vocabulary of the real crate.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read-side buffer vocabulary (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copies `n` bytes out as an owned [`Bytes`], consuming them.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
    /// Reads `N` bytes into an array, consuming them.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads a big-endian `u8`.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }
    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }
    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take_array())
    }
    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_array())
    }
}

/// Write-side buffer vocabulary (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a big-endian `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self::from(slice.to_vec())
    }

    /// View of the unread bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether all bytes were consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unread bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "copy_to_bytes past end of Bytes");
        let out = Bytes::copy_from_slice(&self.as_slice()[..n]);
        self.start += n;
        out
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.len(), "read past end of Bytes");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.as_slice()[..N]);
        self.start += N;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(slice: &[u8]) -> Self {
        Self::copy_from_slice(slice)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:02x?})", self.as_slice())
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `n` bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to past end of BytesMut");
        let rest = self.data.split_off(n);
        let head = std::mem::replace(&mut self.data, rest);
        BytesMut { data: head }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of BytesMut");
        self.data.drain(..n);
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "copy_to_bytes past end of BytesMut");
        let head: Vec<u8> = self.data.drain(..n).collect();
        Bytes::from(head)
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.len(), "read past end of BytesMut");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[..N]);
        self.data.drain(..N);
        out
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(slice: &[u8]) -> Self {
        Self {
            data: slice.to_vec(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:02x?})", &self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(300);
        buf.put_u32(70_000);
        buf.put_u64(u64::MAX);
        buf.put_i64(-5);
        buf.put_f64(std::f64::consts::PI);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 300);
        assert_eq!(b.get_u32(), 70_000);
        assert_eq!(b.get_u64(), u64::MAX);
        assert_eq!(b.get_i64(), -5);
        assert_eq!(b.get_f64(), std::f64::consts::PI);
        assert_eq!(b.as_slice(), b"xyz");
    }

    #[test]
    fn split_and_advance() {
        let mut buf = BytesMut::from(&b"0123456789"[..]);
        buf.advance(2);
        let head = buf.split_to(3).freeze();
        assert_eq!(head.as_slice(), b"234");
        assert_eq!(&buf[..], b"56789");
    }

    #[test]
    fn bytes_cursor_and_clone_independence() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let mut c = b.clone();
        c.advance(2);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(c.as_slice(), &[3, 4]);
        assert_eq!(c.copy_to_bytes(2).as_slice(), &[3, 4]);
        assert!(c.is_empty());
    }
}
