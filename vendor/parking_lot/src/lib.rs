//! Offline stand-in for `parking_lot`.
//!
//! crates.io is unreachable in this build environment, so the workspace
//! vendors a thin facade over `std::sync` exposing parking_lot's
//! non-poisoning API: `lock()` / `read()` / `write()` return guards
//! directly, recovering the data if a previous holder panicked.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers–writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
