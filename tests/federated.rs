//! Federated release tests: device-local anonymization with
//! byte-for-byte central parity under hostile fleets (experiment E15).
//!
//! **Invariant.** For every `UserLocal` strategy, the release assembled
//! from per-device protected uploads is **byte-identical** to the central
//! release of the same windowed raw prefix
//! ([`privapi::federated::central_release`] under the final broadcast
//! config) — network chaos, participation thinning, dropouts and config
//! upgrade waves change retries, re-uploads and audit counters, never the
//! released bytes. When parity *cannot* hold — a device uploading under an
//! obsolete config version, or a poisoning adversary fabricating fixes —
//! the offending records are quarantined and the divergence is **exactly
//! accounted** at all three layers: the collect-layer
//! [`FederationDelta`], the session-layer
//! [`privapi::federated::SessionTotals`], and the campaign-layer
//! [`DayReport::degraded`] flag. Stale or poisoned records never reach a
//! published window unflagged.

use crowdsense::apisense::campaigns::CampaignGateway;
use crowdsense::apisense::federated::{run_federated_fleet, FederatedFleetConfig};
use crowdsense::apisense::hive::TaskId;
use crowdsense::campaign::{Campaign, CampaignError};
use crowdsense::mobility::UserId;
use crowdsense::privapi::federated::{FederationPolicy, StrategySpec};
use crowdsense::privapi::pipeline::PrivApiConfig;
use crowdsense::privapi::pool::StrategyPool;
use crowdsense::privapi::strategy::{AnonymizationStrategy, StrategyInfo};
use crowdsense::simnet::fault::Crash;
use crowdsense::simnet::{FaultPlan, NodeId};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Every broadcastable mechanism, spanning all `UserLocality` shapes the
/// federation contract admits (including grid-anchored cloaking).
const ALL_SPECS: [StrategySpec; 6] = [
    StrategySpec::SpeedSmoothing { epsilon_m: 100.0 },
    StrategySpec::GeoIndistinguishability { epsilon: 0.01 },
    StrategySpec::SpatialCloaking { cell_m: 250.0 },
    StrategySpec::GaussianPerturbation { sigma_m: 50.0 },
    StrategySpec::TemporalDownsampling { window_s: 600 },
    StrategySpec::Identity,
];

/// The headline invariant, stated deterministically for every mechanism
/// family: a fault-free federated fleet reassembles the central release
/// byte for byte, while uplinking raw data for the calibration cohort
/// only.
#[test]
fn federated_release_matches_central_for_every_strategy() {
    for (i, &spec) in ALL_SPECS.iter().enumerate() {
        let mut config = FederatedFleetConfig::small(41 + i as u64);
        config.spec = spec;
        let outcome = run_federated_fleet(&config);
        assert!(
            outcome.is_clean(),
            "{spec:?}: fault-free deltas must be clean: {:?}",
            outcome.deltas
        );
        assert!(
            outcome.parity(),
            "{spec:?}: federated release must equal the central release"
        );
        assert!(outcome.release.record_count() > 0, "{spec:?}: non-trivial");
        // Raw exposure shrinks to the cohort; the protected lane and the
        // config broadcast carry the rest.
        assert!(outcome.raw_bytes_uplinked < outcome.central_raw_bytes);
        assert!(outcome.protected_bytes_uplinked > 0);
        assert!(outcome.config_bytes_broadcast > 0);
        assert_eq!(outcome.session_totals.stale_records, 0);
        assert_eq!(outcome.session_totals.implausible_records, 0);
    }
}

/// Grid-anchor broadcast regression: a cloaking device whose *local* view
/// of the bounding box is arbitrarily drifted (each device only ever sees
/// its own trajectory) still cloaks onto the campaign grid, because the
/// quantized anchor rides in the broadcast config instead of being
/// re-derived locally. Byte parity over the anchored grid is exactly the
/// property that breaks if the anchor is re-derived per device.
#[test]
fn broadcast_grid_anchor_pins_cloaking_to_the_campaign_grid() {
    let mut config = FederatedFleetConfig::small(43);
    config.spec = StrategySpec::SpatialCloaking { cell_m: 250.0 };
    let outcome = run_federated_fleet(&config);
    assert!(outcome.parity(), "anchored cloaking must match central");
    assert!(
        outcome.final_config.grid_anchor.is_some(),
        "cloaking configs must carry the quantized anchor"
    );
    // The anchor is the *fleet* box, not any single device's: with more
    // than one user the two differ, so parity here certifies the
    // broadcast anchor actually won over the device-local view.
    assert!(outcome.cohort.len() < 6, "cohort is a strict subset");
}

/// Scenario: stale-config device. One device is deaf to config frames
/// across a version upgrade, keeps uploading under the obsolete version,
/// and must be quarantined with exact counters — then converge back to
/// parity once the retransmitted config finally lands.
#[test]
fn stale_config_uploads_quarantine_then_converge() {
    let mut config = FederatedFleetConfig::small(47);
    // Count-preserving mechanisms on both sides of the upgrade, so the
    // audit counters (which count *protected* records) can be asserted
    // against the raw oracle exactly.
    config.spec = StrategySpec::Identity;
    // Upgrade right after the day-0 close; device 3 cannot hear config
    // frames from just before the upgrade until well into day 1, so its
    // day-1 upload goes out under v1.
    config.upgrade_at_close = Some((0, StrategySpec::GaussianPerturbation { sigma_m: 50.0 }));
    config.deaf = vec![(3, 100_000, 176_000)];
    let outcome = run_federated_fleet(&config);

    assert_eq!(outcome.final_config.version, 2);
    let day1 = &outcome.deltas[1];
    assert_eq!(day1.config_version, 2);
    // Exact accounting: exactly one stale batch (device 3's v1 day-1
    // upload), carrying exactly that device's day-1 records.
    let stale_day1_records = outcome.baseline.windows()[1]
        .dataset()
        .records_of(UserId(3))
        .len() as u64;
    assert_eq!(day1.stale_batches, 1);
    assert_eq!(day1.stale_devices, 1);
    assert_eq!(day1.stale_records, stale_day1_records);
    // The upgrade invalidated everyone's day-0 uploads: the whole fleet
    // re-uploads day 0 under v2 before the day-1 close.
    let day0_records = outcome.baseline.windows()[0].record_count() as u64;
    assert_eq!(day1.reuploaded_records, day0_records);
    assert_eq!(day1.straggler_devices, 0, "the deaf device caught up");
    // Session layer agrees, and the stale user is flagged by name.
    assert_eq!(outcome.session_totals.stale_records, stale_day1_records);
    assert_eq!(
        outcome.stale_users,
        BTreeSet::from([UserId(3)]),
        "exactly the deaf device's user is flagged"
    );
    // Convergence: after the catch-up, the release is byte-identical to
    // the central release under v2 — stale data never leaked into it.
    assert!(outcome.parity(), "post-upgrade release must reach parity");
}

/// Scenario: dropout mid-window. A device crashes before it can upload
/// day 0 and restarts mid-day-1: the day-0 window publishes short (the
/// straggler is counted), the catch-up upload is accounted as a re-upload,
/// and the final release still reaches full parity.
#[test]
fn dropout_device_catches_up_to_full_parity() {
    let mut config = FederatedFleetConfig::small(53);
    // Count-preserving mechanism: the per-window protected-record counts
    // can then be asserted against the raw oracle exactly.
    config.spec = StrategySpec::GaussianPerturbation { sigma_m: 50.0 };
    // Device index 2 → NodeId(3): the hive is node 0, devices follow in
    // user order.
    config.fleet.faults = FaultPlan::none().with_crash(Crash {
        node: NodeId(3),
        at_ms: 40_000,
        restart_ms: 120_000,
    });
    let outcome = run_federated_fleet(&config);

    let day0_device_records = outcome.baseline.windows()[0]
        .dataset()
        .records_of(UserId(2))
        .len() as u64;
    let day0_total = outcome.baseline.windows()[0].record_count() as u64;
    // Day 0 closes without the crashed device, visibly degraded.
    assert_eq!(outcome.deltas[0].straggler_devices, 1);
    assert_eq!(
        outcome.deltas[0].protected_records,
        day0_total - day0_device_records
    );
    assert!(!outcome.deltas[0].is_clean());
    // Day 1 absorbs the catch-up as an exact re-upload.
    assert_eq!(outcome.deltas[1].reuploaded_records, day0_device_records);
    assert_eq!(outcome.deltas[1].straggler_devices, 0);
    assert_eq!(outcome.deltas[1].stale_batches, 0);
    // Nothing was lost: the final release equals the full central one.
    assert!(outcome.parity(), "the dropout must only delay, never lose");
}

/// Scenario: mixed-version fleet (upgrade wave). A config upgrade between
/// closes makes every device re-anonymize and re-upload its history; the
/// wave is fully accounted as re-uploads (no staleness — devices converge
/// before finalizing new days) and ends in parity under the new version.
#[test]
fn upgrade_wave_reuploads_history_and_converges() {
    let mut config = FederatedFleetConfig::small(59);
    config.upgrade_at_close = Some((0, StrategySpec::TemporalDownsampling { window_s: 600 }));
    let outcome = run_federated_fleet(&config);

    assert_eq!(outcome.final_config.version, 2);
    assert_eq!(
        outcome.final_config.spec,
        StrategySpec::TemporalDownsampling { window_s: 600 }
    );
    // Day 0 published under v1, clean.
    assert_eq!(outcome.deltas[0].config_version, 1);
    assert!(outcome.deltas[0].is_clean());
    // Day 1 carries the wave: everyone's day 0 re-uploaded under v2,
    // nobody stale, nobody straggling.
    let day0_total = outcome.baseline.windows()[0].record_count() as u64;
    assert_eq!(outcome.deltas[1].reuploaded_records, day0_total);
    assert_eq!(outcome.deltas[1].stale_records, 0);
    assert_eq!(outcome.deltas[1].straggler_devices, 0);
    assert!(outcome.stale_users.is_empty());
    assert!(outcome.parity(), "the wave must converge to v2 parity");
}

/// Scenario: poisoning adversary. A device substitutes fabricated
/// far-away fixes for its protected output. The plausibility gate rejects
/// every batch whole, the device is flagged at all three layers, and the
/// release equals the central release over the *honest* sub-fleet — the
/// poison steers nothing.
#[test]
fn poisoned_device_is_rejected_and_counted_at_every_layer() {
    let mut config = FederatedFleetConfig::small(61);
    config.poisoned = vec![4];
    let outcome = run_federated_fleet(&config);

    // Collect layer: every close saw the rejection.
    for delta in &outcome.deltas {
        assert_eq!(delta.poisoned_devices, 1, "flagged at every close");
        assert!(
            delta.straggler_devices >= 1,
            "a poisoned device never validly reports"
        );
    }
    let rejected: u64 = outcome.deltas.iter().map(|d| d.implausible_records).sum();
    assert!(rejected > 0, "the fabricated fixes were rejected");
    // Session layer: the same count, exactly.
    assert_eq!(outcome.session_totals.implausible_records, rejected);
    assert_eq!(outcome.poisoned_devices, BTreeSet::from([4]));
    // Release layer: byte-identical to the honest central counterfactual,
    // and *not* to the full one — the device is excluded, not blended.
    let honest = outcome.central_excluding(&BTreeSet::from([UserId(4)]));
    assert_eq!(outcome.release, honest, "poison must steer nothing");
    assert!(!outcome.parity(), "the poisoned user's data is missing");
    // No fabricated coordinate ever reached a published window.
    for window in &outcome.windows {
        assert!(
            window.dataset().records_of(UserId(4)).is_empty(),
            "day {}: poisoned records must never publish",
            window.day()
        );
    }
}

/// Satellite: chaos-compose regression. The full federated pipeline —
/// config broadcast, device-local anonymization, protected upload,
/// version checks — under two of the seeded `FaultPlan::chaos` schedules
/// (burst loss, duplication, reordering) plus a mid-day crash/restart.
/// The faults must actually injure the network, and parity must hold
/// anyway.
#[test]
fn federated_pipeline_survives_seeded_chaos_schedules() {
    for (fault_seed, crash_device) in [(0xC0FFEE_u64, 1_u32), (0x5EED_0007_u64, 4_u32)] {
        let mut config = FederatedFleetConfig::small(23);
        config.fleet.faults = FaultPlan::chaos(fault_seed).with_crash(Crash {
            node: NodeId(1 + crash_device),
            at_ms: 10_000 + (fault_seed % 20_000),
            restart_ms: 40_000 + (fault_seed % 10_000),
        });
        let outcome = run_federated_fleet(&config);
        assert!(
            outcome.stats.dropped + outcome.stats.duplicated + outcome.stats.reordered > 0,
            "seed {fault_seed:#x}: the chaos schedule must actually injure: {}",
            outcome.stats
        );
        assert!(
            outcome.stats.retries > 0,
            "seed {fault_seed:#x}: injury must be visible in transport retries"
        );
        assert!(
            outcome.is_clean(),
            "seed {fault_seed:#x}: absorbed chaos leaves clean deltas: {:?}",
            outcome.deltas
        );
        assert!(
            outcome.parity(),
            "seed {fault_seed:#x}: chaos must never change released bytes"
        );
    }
}

/// Campaign wiring: a federated campaign pooling a strategy that cannot
/// run device-locally is rejected at registration — a non-federable
/// winner would force devices to upload raw, silently voiding the policy.
#[test]
fn non_federable_pool_is_rejected_at_registration() {
    #[derive(Debug)]
    struct Opaque;
    impl AnonymizationStrategy for Opaque {
        fn info(&self) -> StrategyInfo {
            StrategyInfo {
                name: "opaque".into(),
                params: String::new(),
            }
        }
        // Default `locality()` (NonLocal) and `spec()` (None): the
        // conservative contract for external strategies.
        fn anonymize(
            &self,
            dataset: &crowdsense::mobility::Dataset,
            _seed: u64,
        ) -> crowdsense::mobility::Dataset {
            dataset.clone()
        }
    }

    let mut gateway = CampaignGateway::new();
    let campaign = Campaign::new(1, "opaque-study", PrivApiConfig::default())
        .with_pool(StrategyPool::new().with(Box::new(Opaque)))
        .with_federation(FederationPolicy::new(2));
    let err = gateway.open(TaskId(1), campaign).unwrap_err();
    match err {
        CampaignError::NonFederable { strategy, .. } => {
            assert!(
                strategy.contains("opaque"),
                "names the offender: {strategy}"
            )
        }
        other => panic!("expected NonFederable, got {other:?}"),
    }
    // The default publication pool is fully federable.
    gateway
        .open(
            TaskId(2),
            Campaign::new(2, "federable", PrivApiConfig::default())
                .with_federation(FederationPolicy::new(2)),
        )
        .expect("every built-in candidate runs device-locally");
}

/// Campaign wiring: federated windows publish through the gateway with
/// both provenance ledgers stamped, and degradation at either layer flips
/// the day report's `degraded()` flag.
#[test]
fn federated_windows_publish_with_federation_provenance() {
    let mut config = FederatedFleetConfig::small(67);
    config.upgrade_at_close = Some((0, StrategySpec::GaussianPerturbation { sigma_m: 50.0 }));
    let outcome = run_federated_fleet(&config);

    let mut gateway = CampaignGateway::new();
    gateway
        .open(
            TaskId(9),
            Campaign::new(9, "federated", PrivApiConfig::default())
                .with_federation(FederationPolicy::new(2)),
        )
        .unwrap();
    let mut degraded_reports = 0;
    for (i, (window, delta)) in outcome.windows.iter().zip(&outcome.deltas).enumerate() {
        let ingest = outcome.cohort_deltas.get(i).copied();
        let report = gateway
            .publish_day_federated(window, ingest, *delta)
            .expect("protocol-ordered federated windows always publish");
        assert_eq!(report.federation.as_ref(), Some(delta));
        assert_eq!(
            report.degraded(),
            !delta.is_clean() || ingest.is_some_and(|d| !d.is_clean())
        );
        if report.degraded() {
            degraded_reports += 1;
        }
    }
    assert!(
        degraded_reports > 0,
        "the upgrade wave's re-uploads must surface as degraded reports"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The acceptance property, over 32 seeded cases spanning participation
    /// thinning, mechanism rotation and fault schedules (chaos plus a
    /// crash/restart): the federated release is byte-identical to the
    /// central release for every `UserLocal` strategy, and the run stays
    /// exactly accounted (no stale, no implausible, no silent mixing).
    #[test]
    fn federated_parity_holds_under_thinning_and_chaos(
        fleet_seed in 0u64..1_000,
        participation in 60u64..101,
        spec_index in 0usize..6,
        fault_seed in any::<u64>(),
        chaos in any::<bool>(),
        crash_device in 0u32..6,
    ) {
        let mut config = FederatedFleetConfig::small(fleet_seed);
        config.participation_pct = participation;
        config.spec = ALL_SPECS[spec_index];
        if chaos {
            config.fleet.faults = FaultPlan::chaos(fault_seed).with_crash(Crash {
                node: NodeId(1 + crash_device),
                at_ms: 10_000 + (fault_seed % 20_000),
                restart_ms: 40_000 + (fault_seed % 10_000),
            });
        }
        let outcome = run_federated_fleet(&config);

        prop_assert!(
            outcome.parity(),
            "spec {:?} pct {} seed {} chaos {}: drift",
            ALL_SPECS[spec_index], participation, fleet_seed, chaos
        );
        prop_assert!(outcome.is_clean(), "deltas: {:?}", outcome.deltas);
        prop_assert_eq!(outcome.session_totals.stale_records, 0);
        prop_assert_eq!(outcome.session_totals.implausible_records, 0);
        prop_assert!(outcome.stale_users.is_empty());
        prop_assert!(outcome.poisoned_devices.is_empty());
        // The cohort's raw exposure never exceeds the central deployment's.
        prop_assert!(outcome.raw_bytes_uplinked <= outcome.central_raw_bytes);
    }
}
