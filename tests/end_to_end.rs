//! Cross-crate integration tests: the full collect → protect → publish
//! pipeline of the paper, plus platform-level invariants.

use crowdsense::apisense::deploy::{run_campaign, CampaignConfig};
use crowdsense::apisense::device::SensorKind;
use crowdsense::apisense::hive::{descriptor, Hive};
use crowdsense::apisense::honeycomb::{ExperimentBuilder, Honeycomb};
use crowdsense::apisense::script::Script;
use crowdsense::mobility::gen::{CityModel, PopulationConfig};
use crowdsense::privapi::prelude::*;
use crowdsense::simnet::LinkModel;

/// The whole story: a campaign collects mobility data over the network,
/// the Honeycomb assembles a dataset, PRIVAPI protects it, the attack is
/// blunted, and utility survives.
#[test]
fn collect_protect_publish_pipeline() {
    // --- collect (APISENSE over simnet) ---
    let task = ExperimentBuilder::new("mobility-map")
        .require_sensor(SensorKind::Gps)
        .sampling_interval_s(300)
        .build();
    let report = run_campaign(
        &task,
        &CampaignConfig {
            devices: 12,
            duration_s: 24 * 3_600,
            device_link: LinkModel::mobile(),
            seed: 99,
            ..CampaignConfig::default()
        },
    );
    assert!(
        report.records_received > 200,
        "collected {}",
        report.records_received
    );

    // --- assemble the dataset on the honeycomb side ---
    // (run_campaign returns platform metrics; rebuild the dataset through a
    // local Honeycomb to exercise its storage path too.)
    let data = CityModel::builder()
        .seed(99)
        .build()
        .generate_with_truth(&PopulationConfig {
            users: 12,
            days: 3,
            sampling_interval_s: 120,
            ..PopulationConfig::default()
        });

    // --- protect and publish (PRIVAPI) ---
    let privapi = PrivApi::default();
    let published = privapi.publish(&data.dataset).expect("publishable");
    assert!(
        published.privacy.recall <= privapi.config().privacy_floor + 1e-9,
        "floor violated: {}",
        published.privacy.recall
    );

    // The protected dataset keeps its users and has records.
    assert_eq!(published.dataset.user_count(), data.dataset.user_count());
    assert!(published.dataset.record_count() > 0);

    // An attacker holding the raw data gains little from the release.
    let reid = ReidentificationAttack::default();
    let raw_link = reid.evaluate(&data.dataset, &data.dataset);
    let protected_link = reid.evaluate(&published.dataset, &data.dataset);
    assert!(raw_link.accuracy > 0.9);
    assert!(
        protected_link.accuracy < raw_link.accuracy,
        "protection must reduce linkability ({} vs {})",
        protected_link.accuracy,
        raw_link.accuracy
    );
}

/// Hive task lifecycle against a local (non-networked) fleet of devices.
#[test]
fn hive_deploys_and_ingests_locally() {
    use crowdsense::apisense::device::Device;
    use crowdsense::apisense::device::DeviceId;
    use crowdsense::mobility::{Timestamp, Trajectory};

    let data = CityModel::builder()
        .seed(3)
        .build()
        .generate_with_truth(&PopulationConfig {
            users: 5,
            days: 1,
            sampling_interval_s: 60,
            ..PopulationConfig::default()
        });

    let mut hive = Hive::new();
    let mut devices: Vec<Device> = data
        .dataset
        .users()
        .iter()
        .enumerate()
        .map(|(i, user)| {
            hive.register_device(descriptor(DeviceId(i as u64), *user));
            Device::new(
                DeviceId(i as u64),
                *user,
                Trajectory::new(*user, data.dataset.records_of(*user)),
            )
        })
        .collect();
    assert_eq!(hive.community_size(), 5);

    let task = ExperimentBuilder::new("quick")
        .script(Script::compile(
            r#"let fix = sensor.gps(); if (fix != null) { emit({ "lat": fix.lat, "lon": fix.lon }); }"#,
        ).unwrap())
        .require_sensor(SensorKind::Gps)
        .sampling_interval_s(600)
        .build();
    let id = hive.publish_task(task);
    let deployment = hive.deploy(id).unwrap();
    assert_eq!(deployment.devices.len(), 5);

    // Offload to each device and run three hours.
    let start = Timestamp::from_day_time(0, 9, 0, 0);
    let script = hive.task(id).unwrap().script().clone();
    for device in devices.iter_mut() {
        device.install(id, script.clone(), 600, 0.0, start);
    }
    for minute in 0..180 {
        for device in devices.iter_mut() {
            device.tick(start + minute * 60);
        }
    }
    let mut uploaded = Vec::new();
    for device in devices.iter_mut() {
        uploaded.extend(device.drain_outbox());
    }
    assert!(uploaded.len() >= 5 * 18, "uploaded {}", uploaded.len());
    hive.ingest(uploaded);

    // Forward to the honeycomb and build the mobility dataset.
    let mut honeycomb = Honeycomb::new("lab");
    honeycomb.receive(hive.drain_collected(id));
    let stats = honeycomb.stats(id);
    assert_eq!(stats.contributors, 5);
    let dataset = honeycomb.mobility_dataset(id);
    assert_eq!(dataset.user_count(), 5);
    assert_eq!(dataset.record_count(), stats.records);
}

/// Dataset IO round-trips through JSONL and CSV preserve what PRIVAPI needs.
#[test]
fn io_roundtrip_preserves_analysis() {
    use crowdsense::mobility::io;

    let data = CityModel::builder()
        .seed(8)
        .build()
        .generate_with_truth(&PopulationConfig {
            users: 3,
            days: 2,
            sampling_interval_s: 300,
            ..PopulationConfig::default()
        });
    let mut jsonl = Vec::new();
    io::write_jsonl(&data.dataset, &mut jsonl).unwrap();
    let back = io::read_jsonl(jsonl.as_slice()).unwrap();
    assert_eq!(back.record_count(), data.dataset.record_count());

    // The attack extracts the same POI profile from the re-read dataset.
    let attack = PoiAttack::default();
    let before = attack.extract(&data.dataset);
    let after = attack.extract(&back);
    assert_eq!(before.len(), after.len());
    for (user, pois) in &before {
        let other = &after[user];
        assert_eq!(pois.len(), other.len(), "{user} POI count changed");
    }

    let mut csv = Vec::new();
    io::write_csv(&data.dataset, &mut csv).unwrap();
    let csv_back = io::read_csv(csv.as_slice()).unwrap();
    assert_eq!(csv_back.record_count(), data.dataset.record_count());
}

/// The selector's choice is stable across runs (determinism end to end).
#[test]
fn selection_is_deterministic() {
    let data = CityModel::builder()
        .seed(13)
        .build()
        .generate_with_truth(&PopulationConfig {
            users: 6,
            days: 3,
            sampling_interval_s: 120,
            ..PopulationConfig::default()
        });
    let attack = PoiAttack::default();
    let reference = attack.extract(&data.dataset);
    let run = || {
        let selector = StrategySelector::new(
            Objective::CrowdedPlaces {
                cell: geo::Meters::new(250.0),
                k: 10,
            },
            0.3,
            42,
        )
        .with_default_candidates();
        let (winner, report) = selector.select(&data.dataset, &reference).unwrap();
        (winner.info(), report)
    };
    let (a_info, a_report) = run();
    let (b_info, b_report) = run();
    assert_eq!(a_info, b_info);
    assert_eq!(a_report, b_report);
}

/// Smoothed speed really is constant across a realistic population.
#[test]
fn speed_smoothing_invariant_population_wide() {
    let data = CityModel::builder()
        .seed(21)
        .build()
        .generate_with_truth(&PopulationConfig {
            users: 6,
            days: 2,
            sampling_interval_s: 60,
            ..PopulationConfig::default()
        });
    let strategy = SpeedSmoothing::new(geo::Meters::new(100.0)).unwrap();
    let protected = strategy.anonymize(&data.dataset, 1);
    let mut checked = 0;
    for t in protected.trajectories() {
        if let Some(cv) = t.speed_cv() {
            assert!(cv < 0.25, "speed cv {cv} too high after smoothing");
            checked += 1;
        }
    }
    assert!(checked > 0, "no trajectory had measurable speed");
}

/// The new engine end to end: `PrivApi::publish` (parallel by default)
/// still meets the privacy floor, and forcing the sequential schedule
/// produces the byte-identical selection report and release.
#[test]
fn publish_through_engine_is_schedule_independent_and_meets_floor() {
    use crowdsense::privapi::engine::ExecutionMode;

    let data = CityModel::builder()
        .seed(57)
        .build()
        .generate_with_truth(&PopulationConfig {
            users: 8,
            days: 3,
            sampling_interval_s: 120,
            ..PopulationConfig::default()
        });
    let parallel = PrivApi::default();
    let sequential = PrivApi::default().with_mode(ExecutionMode::Sequential);
    let a = parallel.publish(&data.dataset).expect("publishable");
    let b = sequential.publish(&data.dataset).expect("publishable");

    // Floor holds on the actual release.
    let floor = parallel.config().privacy_floor;
    assert!(
        a.privacy.recall <= floor + 1e-9,
        "leaked {}",
        a.privacy.recall
    );

    // Parallel and sequential middleware runs agree exactly.
    assert_eq!(a.selection, b.selection);
    assert_eq!(a.strategy, b.strategy);
    assert_eq!(a.dataset, b.dataset);

    // The report's winner row is consistent with the applied strategy and
    // the typed objective survived into the report.
    let winner = a.selection.winner().expect("winner row");
    assert_eq!(winner.info, a.strategy);
    assert_eq!(a.selection.objective, parallel.config().objective);
}

/// The APISENSE publication gateway releases a campaign's data through the
/// shared strategy pool and the privacy floor holds on the release.
#[test]
fn gateway_publishes_campaign_data_under_floor() {
    use crowdsense::apisense::privacy::PublicationGateway;
    use crowdsense::privapi::pool::StrategyPool;

    let data = CityModel::builder()
        .seed(63)
        .build()
        .generate_with_truth(&PopulationConfig {
            users: 6,
            days: 3,
            sampling_interval_s: 120,
            ..PopulationConfig::default()
        });
    // A custom pool assembled from the shared registry's grid builders.
    let pool = StrategyPool::new()
        .with_speed_smoothing(&[100.0, 200.0])
        .unwrap()
        .with_geo_indistinguishability(&[0.01])
        .unwrap()
        .with_temporal_downsampling(&[600])
        .unwrap();
    let gateway = PublicationGateway::default().with_pool(pool);
    let published = gateway.publish_dataset(&data.dataset).expect("publishable");
    let floor = gateway.privapi().config().privacy_floor;
    assert!(
        published.privacy.recall <= floor + 1e-9,
        "gateway leaked {}",
        published.privacy.recall
    );
    assert_eq!(published.dataset.user_count(), data.dataset.user_count());
}
