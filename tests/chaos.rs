//! Chaos tests: the headline robustness invariant of the reliable
//! ingestion layer, stated over many seeded fault schedules.
//!
//! **Invariant.** Whenever every datum eventually arrives before its day's
//! grace deadline, the campaign windows published from a fault-injected
//! fleet run are **byte-identical** to the fault-free run's — loss bursts,
//! duplicated frames, reordered delivery and device crash/restarts change
//! retries and latencies, never published bytes. When data *cannot* arrive
//! in time (a partitioned region's stragglers), the affected windows are
//! degraded instead of wrong: the late records quarantine into the next
//! window and the per-window [`IngestDelta`] audit counters account for
//! every single record.
//!
//! The ascending-day contract of the publication stream
//! ([`PrivapiError::StreamError`] / [`CampaignError::Stream`]) is satisfied
//! *by protocol* — the collector closes days exactly once, in order — so
//! no fault schedule may ever surface a stream error.

use crowdsense::apisense::campaigns::CampaignGateway;
use crowdsense::apisense::collect::window_fingerprint;
use crowdsense::apisense::fleet::{run_fleet, FleetConfig};
use crowdsense::apisense::hive::TaskId;
use crowdsense::campaign::Campaign;
use crowdsense::mobility::LocationRecord;
use crowdsense::privapi::attack::PoiAttack;
use crowdsense::privapi::pipeline::PrivApiConfig;
use crowdsense::privapi::streaming::{IngestDelta, PopulationCache};
use crowdsense::simnet::fault::{Crash, Partition};
use crowdsense::simnet::{FaultPlan, NodeId};
use mobility::DAY_SECONDS;
use proptest::prelude::*;

/// Sorted record multiset of a window sequence, for conservation checks.
fn record_multiset<'a>(
    windows: impl Iterator<Item = &'a crowdsense::mobility::DatasetWindow>,
) -> Vec<(u64, i64, u64, u64)> {
    let mut records: Vec<(u64, i64, u64, u64)> = windows
        .flat_map(|w| w.dataset().iter_records())
        .map(|r: &LocationRecord| {
            (
                r.user.0,
                r.time.seconds(),
                r.point.latitude().to_bits(),
                r.point.longitude().to_bits(),
            )
        })
        .collect();
    records.sort_unstable();
    records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// 32 seeded chaos schedules (burst loss, duplication, reordering,
    /// plus a mid-day crash/restart): every datum still arrives within its
    /// grace window, so every published window must be byte-identical to
    /// the fault-free oracle and every delta clean.
    #[test]
    fn chaos_windows_are_byte_identical_to_the_fault_free_run(
        fault_seed in any::<u64>(),
        crash_device in 0u32..6,
    ) {
        let mut config = FleetConfig::small(23);
        // Crash one device mid-day-0; it restarts long before the close.
        config.faults = FaultPlan::chaos(fault_seed).with_crash(Crash {
            node: NodeId(1 + crash_device),
            at_ms: 10_000 + (fault_seed % 20_000),
            restart_ms: 40_000 + (fault_seed % 10_000),
        });
        let outcome = run_fleet(&config);

        prop_assert!(outcome.is_clean(), "deltas: {:?}", outcome.deltas);
        prop_assert_eq!(outcome.published_records(), outcome.generated_records);
        let published: Vec<_> = outcome.nonempty_windows().collect();
        prop_assert_eq!(published.len(), outcome.baseline.len());
        for (got, want) in published.iter().zip(&outcome.baseline) {
            prop_assert_eq!(
                window_fingerprint(got),
                window_fingerprint(want),
                "day {} drifted under fault seed {}",
                want.day(),
                fault_seed
            );
        }
    }

    /// Partitioned-region straggler schedules: a random slice of the fleet
    /// is severed across the day-0 close. The late records must quarantine
    /// into a later window with exact audit counters — nothing lost,
    /// nothing duplicated, the full record multiset conserved.
    #[test]
    fn partition_stragglers_quarantine_with_exact_counters(
        fault_seed in any::<u64>(),
        severed in 1u32..5,
    ) {
        let mut config = FleetConfig::small(29);
        let day_end = DAY_SECONDS as u64;
        config.faults = FaultPlan::chaos(fault_seed).with_partition(Partition {
            from_ms: day_end - 10_000 - (fault_seed % 20_000),
            until_ms: day_end + config.grace_s + 1_000 + (fault_seed % 20_000),
            nodes: (0..severed).map(|i| NodeId(1 + i)).collect(),
        });
        let outcome = run_fleet(&config);

        prop_assert!(!outcome.is_clean(), "a day-close partition must degrade");
        let quarantined: u64 = outcome.deltas.iter().map(|d| d.records_quarantined).sum();
        let on_time: u64 = outcome.deltas.iter().map(|d| d.records).sum();
        prop_assert!(quarantined > 0);
        // Exact accounting: every generated record is published exactly
        // once — on time or quarantined — and the multiset of published
        // records equals the generated dataset's.
        prop_assert_eq!(on_time + quarantined, outcome.generated_records);
        prop_assert_eq!(outcome.published_records(), outcome.generated_records);
        prop_assert_eq!(
            record_multiset(outcome.windows.iter()),
            record_multiset(outcome.baseline.iter())
        );
        // The day-0 shortfall against the oracle is exactly what later
        // windows report as quarantined.
        let baseline_day0 = outcome.baseline.windows()[0].record_count() as u64;
        let published_day0 = outcome.windows[0].record_count() as u64;
        prop_assert_eq!(quarantined, baseline_day0 - published_day0);
        prop_assert!(outcome.deltas[0].straggler_devices >= 1);
    }
}

/// The protocol boundary, stated directly: duplicated and out-of-order
/// delivery of day batches is absorbed by the ingest dedup watermark and
/// never reaches the publication stream — the stream guard that *would*
/// reject a replayed day stays unexercised.
#[test]
fn duplicate_and_reordered_delivery_never_surfaces_as_stream_error() {
    let mut config = FleetConfig::small(31);
    config.faults = FaultPlan::none()
        .with_duplication(0.5)
        .with_reordering(0.5, 2_000);
    let outcome = run_fleet(&config);
    assert!(
        outcome.stats.duplicated > 0 && outcome.stats.reordered > 0,
        "the schedule must actually duplicate and reorder: {}",
        outcome.stats
    );
    assert!(outcome.is_clean(), "absorbed faults leave clean deltas");

    // Feed the collector's windows straight into the strict stream
    // consumers: the population cache and a full campaign gateway. Both
    // must accept every window — the protocol already serialized the days.
    let probe = PoiAttack::default();
    let mut cache = PopulationCache::new();
    let mut gateway = CampaignGateway::new();
    gateway
        .open(
            TaskId(1),
            Campaign::new(1, "chaos", PrivApiConfig::default()),
        )
        .unwrap();
    for (window, delta) in outcome.windows.iter().zip(&outcome.deltas) {
        cache
            .advance(&probe, window)
            .expect("protocol-ordered windows can never violate the stream guard");
        let report = gateway
            .publish_day_with_ingest(window, *delta)
            .expect("gateway accepts every protocol-ordered window");
        assert_eq!(report.ingest.as_ref(), Some(delta));
        assert!(!report.degraded(), "clean deltas are not degraded");
    }

    // Negative control: the guard itself still works — replaying a day is
    // a harness bug and must be rejected loudly.
    let replay = cache.advance(&probe, &outcome.windows[0]);
    assert!(replay.is_err(), "the ascending-day guard must still exist");
}

/// Degraded-mode publication end to end: a partitioned fleet's windows
/// flow through the campaign gateway; the degraded windows carry their
/// quarantine counters into the day reports, and publication still
/// succeeds for every window.
#[test]
fn degraded_windows_publish_with_ingest_provenance() {
    let mut config = FleetConfig::small(37);
    let day_end = DAY_SECONDS as u64;
    config.faults = FaultPlan::none().with_partition(Partition {
        from_ms: day_end - 15_000,
        until_ms: day_end + config.grace_s + 5_000,
        nodes: vec![NodeId(1), NodeId(2)],
    });
    let outcome = run_fleet(&config);
    assert!(!outcome.is_clean());

    let mut gateway = CampaignGateway::new();
    gateway
        .open(
            TaskId(7),
            Campaign::new(7, "degraded", PrivApiConfig::default()),
        )
        .unwrap();
    let mut degraded_reports = 0;
    for (window, delta) in outcome.windows.iter().zip(&outcome.deltas) {
        let report = gateway.publish_day_with_ingest(window, *delta).unwrap();
        if report.degraded() {
            degraded_reports += 1;
            let ingest: IngestDelta = report.ingest.unwrap();
            assert!(
                ingest.straggler_devices > 0
                    || ingest.records_quarantined > 0
                    || ingest.records_deferred > 0,
                "degradation must be visible in the counters: {ingest}"
            );
        }
    }
    assert!(
        degraded_reports > 0,
        "the partition must surface in reports"
    );
}
