//! Multi-campaign orchestration: three concurrent privacy-preserving
//! campaigns — a city-wide crowd study, a commuter-subset study and a
//! traffic study with its own attack parameters — publishing daily over
//! one shared population stream, with the original-side attack extraction
//! paid once for the whole same-configuration group.
//!
//! ```bash
//! cargo run --release --example multi_campaign
//! ```

use crowdsense::campaign::{Campaign, CampaignOutcome, Orchestrator};
use crowdsense::mobility::gen::ScenarioPreset;
use crowdsense::mobility::{ParticipantFilter, UserId, WindowedDataset};
use crowdsense::privapi::prelude::*;

fn main() {
    // A commuter population, thinned to sparse daily participation so the
    // cross-window caches have inactive users to reuse.
    let data = ScenarioPreset::Commuter.generate(10, 5, 42);
    let dataset = crowdsense::mobility::gen::thin_participation(&data.dataset, 35);
    let windows = WindowedDataset::partition(&dataset);
    println!(
        "population: {} users, {} records, {} day windows\n",
        dataset.user_count(),
        dataset.record_count(),
        windows.len()
    );

    let probe = PoiAttack::default();
    let mut orchestrator = Orchestrator::new();
    // Campaign 1: city-wide crowd analysis (default attack parameters).
    orchestrator
        .register(
            Campaign::new(1, "crowded-places", PrivApiConfig::default())
                .with_attack(probe.clone()),
        )
        .unwrap();
    // Campaign 2: the same policy scoped to half the population — its
    // original-side state derives from campaign 1's shared session
    // whenever the extraction grids agree.
    orchestrator
        .register(
            Campaign::new(2, "commuter-cohort", PrivApiConfig::default())
                .with_attack(probe.clone())
                .with_filter(ParticipantFilter::users((0..5).map(UserId))),
        )
        .unwrap();
    // Campaign 3: a traffic study under its own objective. Same attack
    // configuration, so it still rides the shared session.
    orchestrator
        .register(
            Campaign::new(
                3,
                "traffic-forecast",
                PrivApiConfig {
                    objective: Objective::Traffic {
                        cell: geo::Meters::new(500.0),
                    },
                    ..PrivApiConfig::default()
                },
            )
            .with_attack(probe.clone()),
        )
        .unwrap();
    println!(
        "3 campaigns registered over {} shared extraction session(s)\n",
        orchestrator.shared_sessions()
    );

    for window in &windows {
        let report = orchestrator.advance_day(window).unwrap();
        println!("day {}:", report.day);
        for (id, outcome) in &report.outcomes {
            match outcome {
                CampaignOutcome::Published(release) => println!(
                    "  {id}: released under {} (recall {:.2}, {} users reused, \
                     {} derived from the shared session)",
                    release.published.strategy,
                    release.published.privacy.recall,
                    release.delta.users_reused,
                    release.delta.users_derived,
                ),
                CampaignOutcome::Skipped(reason) => println!("  {id}: skipped ({reason:?})"),
                CampaignOutcome::Failed(error) => println!("  {id}: failed ({error})"),
            }
        }
    }
    println!(
        "\ntotal per-user extractions: {} (three campaigns, one original-side pass)",
        probe.user_extractions()
    );
}
