//! Quickstart: generate a mobility dataset, protect it with PRIVAPI's
//! speed-smoothing strategy, and check what an attacker can still learn.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use crowdsense::mobility::gen::{CityModel, PopulationConfig};
use crowdsense::privapi::prelude::*;

fn main() {
    // 1. A synthetic city and a week of mobility for a small crowd.
    //    (Stand-in for the paper's proprietary real-life dataset.)
    let city = CityModel::builder().seed(42).build();
    let data = city.generate_with_truth(&PopulationConfig {
        users: 10,
        days: 7,
        sampling_interval_s: 60,
        ..PopulationConfig::default()
    });
    println!(
        "generated {} records for {} users ({} ground-truth POIs)",
        data.dataset.record_count(),
        data.dataset.user_count(),
        data.truth.total_pois()
    );

    // 2. Attack the raw data: this is what publishing without protection
    //    would leak.
    let attack = PoiAttack::default();
    let raw_report = attack.evaluate(&data.dataset, &data.truth);
    println!(
        "raw data      : POI recall {:.0}% (found {}/{} sensitive places)",
        raw_report.recall * 100.0,
        raw_report.matched,
        raw_report.reference_pois
    );

    // 3. Protect with the paper's novel strategy: speed smoothing.
    let strategy = SpeedSmoothing::new(geo::Meters::new(100.0)).expect("valid epsilon");
    let protected = strategy.anonymize(&data.dataset, 7);
    let smoothed_report = attack.evaluate(&protected, &data.truth);
    println!(
        "speed-smoothed: POI recall {:.0}% ({} extracted POIs)",
        smoothed_report.recall * 100.0,
        smoothed_report.extracted_pois
    );

    // 4. Utility check: can an analyst still find crowded places?
    let utility =
        crowded_places_utility(&data.dataset, &protected, geo::Meters::new(250.0), 20)
            .expect("non-empty dataset");
    println!(
        "utility       : {:.0}% of the top-20 crowded cells preserved",
        utility.precision_at_k * 100.0
    );

    // 5. Or let PRIVAPI pick the optimal strategy itself.
    let privapi = PrivApi::default();
    let published = privapi.publish(&data.dataset).expect("feasible strategy");
    println!(
        "PRIVAPI chose : {} (residual recall {:.0}%)",
        published.strategy,
        published.privacy.recall * 100.0
    );
}
