//! Federated release: devices anonymize locally under a broadcast
//! strategy config, and the server assembles a release that is
//! byte-identical to the central one — without ever seeing non-cohort
//! raw data (`DESIGN.md` §3.12).
//!
//! ```bash
//! cargo run --release --example federated_release
//! ```

use crowdsense::apisense::federated::{run_federated_fleet, FederatedFleetConfig};
use crowdsense::mobility::UserId;
use crowdsense::privapi::federated::StrategySpec;
use crowdsense::simnet::FaultPlan;
use std::collections::BTreeSet;

fn main() {
    // 1. A fault-free federated fleet: the Hive broadcasts the winning
    //    strategy as a versioned config frame, each device runs
    //    `anonymize_user` locally and uploads only protected whole-day
    //    batches; raw data is uplinked by the calibration cohort alone.
    let config = FederatedFleetConfig::small(42);
    let outcome = run_federated_fleet(&config);
    println!(
        "fault-free    : {} protected records released under config v{} ({:?})",
        outcome.release.record_count(),
        outcome.final_config.version,
        outcome.final_config.spec
    );
    println!(
        "                parity with central release: {} (clean deltas: {})",
        outcome.parity(),
        outcome.is_clean()
    );
    println!(
        "                raw uplink {} B (cohort of {}) vs {} B central — {} B protected, {} B config broadcast",
        outcome.raw_bytes_uplinked,
        outcome.cohort.len(),
        outcome.central_raw_bytes,
        outcome.protected_bytes_uplinked,
        outcome.config_bytes_broadcast
    );

    // 2. The same fleet under seeded chaos (loss, duplication,
    //    reordering): retries go up, the released bytes do not change.
    let mut chaos = FederatedFleetConfig::small(42);
    chaos.fleet.faults = FaultPlan::chaos(7);
    let injured = run_federated_fleet(&chaos);
    println!(
        "under chaos   : parity {} with {} retransmissions, {} drops",
        injured.parity(),
        injured.stats.retries,
        injured.stats.dropped + injured.stats.dropped_by_fault
    );

    // 3. An upgrade wave: the server bumps the config mid-campaign while
    //    one device is deaf to the broadcast. Its stale-version uploads
    //    are quarantined — counted, never mixed — until it catches up
    //    and re-uploads history under the new version.
    let mut upgrade = FederatedFleetConfig::small(42);
    upgrade.spec = StrategySpec::Identity;
    upgrade.upgrade_at_close = Some((0, StrategySpec::GaussianPerturbation { sigma_m: 50.0 }));
    upgrade.deaf = vec![(3, 100_000, 176_000)];
    let waved = run_federated_fleet(&upgrade);
    println!(
        "upgrade wave  : v{} final, {} stale records quarantined, {} re-uploaded, parity {}",
        waved.final_config.version,
        waved.session_totals.stale_records,
        waved
            .deltas
            .iter()
            .map(|d| d.reuploaded_records)
            .sum::<u64>(),
        waved.parity()
    );

    // 4. A poisoning adversary fabricating implausible fixes: the whole
    //    batch is rejected at the plausibility gate and the release
    //    equals the central release over the honest sub-fleet.
    let mut hostile = FederatedFleetConfig::small(42);
    hostile.poisoned = vec![4];
    let attacked = run_federated_fleet(&hostile);
    let honest = attacked.central_excluding(&BTreeSet::from([UserId(4)]));
    println!(
        "poisoned fleet: {} implausible records rejected from device(s) {:?}; release == honest central: {}",
        attacked.session_totals.implausible_records,
        attacked.poisoned_devices,
        attacked.release == honest
    );
}
