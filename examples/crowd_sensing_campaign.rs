//! A full APISENSE campaign: a Honeycomb describes a network-quality task
//! as a script, the Hive offloads it to a simulated smartphone fleet over a
//! lossy mobile network, and the collected dataset flows back — exactly the
//! architecture of the paper's Figure 1.
//!
//! ```bash
//! cargo run --release --example crowd_sensing_campaign
//! ```

use crowdsense::apisense::deploy::{run_campaign, CampaignConfig};
use crowdsense::apisense::device::SensorKind;
use crowdsense::apisense::honeycomb::ExperimentBuilder;
use crowdsense::apisense::incentives::{
    simulate_campaign, CampaignConfig as IncentiveConfig, IncentiveStrategy,
};
use crowdsense::apisense::script::Script;
use crowdsense::simnet::LinkModel;

fn main() {
    // The experimenter writes the sensing task as a script — the same
    // "code-as-data" model as APISENSE's JavaScript tasks.
    let script = Script::compile(
        r#"
        // Sample connectivity together with the location, but only when the
        // battery can afford it.
        let level = sensor.battery();
        if (level > 0.2) {
            let fix = sensor.gps();
            if (fix != null) {
                emit({
                    "lat": fix.lat,
                    "lon": fix.lon,
                    "rssi": sensor.network(),
                    "battery": level
                });
            }
        }
        "#,
    )
    .expect("script compiles");

    let task = ExperimentBuilder::new("network-quality-map")
        .script(script)
        .require_sensor(SensorKind::Gps)
        .require_sensor(SensorKind::NetworkQuality)
        .sampling_interval_s(300)
        .min_battery(0.2)
        .incentive(IncentiveStrategy::WinWin)
        .build();

    println!("campaign: {}", task.name());
    for devices in [10usize, 50, 100] {
        let report = run_campaign(
            &task,
            &CampaignConfig {
                devices,
                duration_s: 4 * 3_600,
                device_link: LinkModel::mobile(),
                seed: 0xCAFE,
                ..CampaignConfig::default()
            },
        );
        println!(
            "  {devices:>4} devices: {} records in 4 h ({:.2} rec/s), deploy p50 {} ms / p95 {} ms, delivery {:.1}%",
            report.records_received,
            report.throughput_rps,
            report.deploy_latency_p50_ms,
            report.deploy_latency_p95_ms,
            report.delivery_ratio * 100.0
        );
    }

    // What keeps the crowd contributing? The task declared a win-win
    // incentive; compare against plain volunteering.
    println!("\nincentive outlook over 28 days (300-user community):");
    for strategy in [IncentiveStrategy::None, IncentiveStrategy::WinWin] {
        let report = simulate_campaign(&strategy, &IncentiveConfig::default());
        println!(
            "  {:<8} mean daily contributors {:>5.1}, retention {:.2}",
            report.strategy, report.mean_active, report.retention
        );
    }
}
