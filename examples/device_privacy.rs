//! The device-side privacy layer in action: the user keeps control of her
//! phone — which sensors are shared, when, and where (paper, §2).
//!
//! ```bash
//! cargo run --release --example device_privacy
//! ```

use crowdsense::apisense::device::{Device, DeviceId, SensorKind};
use crowdsense::apisense::hive::TaskId;
use crowdsense::apisense::privacy::{ExclusionZone, PrivacyPreferences, TimeWindow};
use crowdsense::apisense::script::Script;
use crowdsense::mobility::gen::{CityModel, PopulationConfig};
use crowdsense::mobility::{Timestamp, Trajectory};

fn main() {
    // A user's real day of mobility.
    let city = CityModel::builder().seed(5).build();
    let data = city.generate_with_truth(&PopulationConfig {
        users: 1,
        days: 1,
        sampling_interval_s: 60,
        ..PopulationConfig::default()
    });
    let user = data.dataset.users()[0];
    let home = data
        .truth
        .pois_of(user)
        .iter()
        .find(|p| p.kind == crowdsense::mobility::poi::PoiKind::Home)
        .expect("home exists")
        .site;
    let trajectory = Trajectory::new(user, data.dataset.records_of(user));

    let script = Script::compile(
        r#"let fix = sensor.gps(); if (fix != null) { emit({ "lat": fix.lat, "lon": fix.lon }); }"#,
    )
    .expect("script compiles");

    let scenarios: Vec<(&str, PrivacyPreferences)> = vec![
        (
            "no preferences (share everything)",
            PrivacyPreferences::default(),
        ),
        (
            "home exclusion zone (250 m)",
            PrivacyPreferences::default()
                .with_exclusion_zone(ExclusionZone::new(home, geo::Meters::new(250.0))),
        ),
        (
            "daytime only (08:00-20:00)",
            PrivacyPreferences::default().with_time_window(TimeWindow::new(8, 20)),
        ),
        (
            "blur 100 m",
            PrivacyPreferences::default().with_blur(geo::Meters::new(100.0)),
        ),
        (
            "GPS opted out entirely",
            PrivacyPreferences::default().without_sensor(SensorKind::Gps),
        ),
    ];

    println!("one simulated day, GPS sampling every 5 minutes:\n");
    for (label, prefs) in scenarios {
        let mut device =
            Device::new(DeviceId(1), user, trajectory.clone()).with_preferences(prefs);
        let start = Timestamp::from_day_time(0, 0, 0, 0);
        device.install(TaskId(1), script.clone(), 300, 0.0, start);
        for minute in 0..(24 * 60) {
            device.tick(start + minute * 60);
        }
        let published = device.drain_outbox();
        println!(
            "{label:<38} produced {:>4}, published {:>4}, suppressed {:>4}",
            device.records_produced(),
            published.len(),
            device.records_suppressed()
        );
    }
}
