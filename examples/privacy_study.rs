//! Reproduces the paper's headline motivation (§3): a state-of-the-art
//! protection mechanism (geo-indistinguishability) still lets an attacker
//! re-identify over 60 % of the points of interest, while PRIVAPI's speed
//! smoothing removes the dwell signal the attack needs.
//!
//! ```bash
//! cargo run --release --example privacy_study
//! ```

use crowdsense::mobility::gen::{CityModel, PopulationConfig};
use crowdsense::privapi::prelude::*;

fn main() {
    let city = CityModel::builder().seed(2014).build();
    let data = city.generate_with_truth(&PopulationConfig {
        users: 20,
        days: 7,
        sampling_interval_s: 60,
        ..PopulationConfig::default()
    });
    let attack = PoiAttack::default();
    // As in the paper's companion study, the reference is what the attack
    // can extract from the *unprotected* dataset.
    let reference = attack.extract(&data.dataset);

    println!("POI retrieval attack against protection mechanisms");
    println!(
        "(reference: {} POIs extractable from raw data)\n",
        reference.values().map(Vec::len).sum::<usize>()
    );
    println!("{:<48} {:>8} {:>10}", "mechanism", "recall", "precision");

    let mut rows: Vec<(String, PoiAttackReportRow)> = Vec::new();
    let strategies: Vec<Box<dyn crowdsense::privapi::strategy::AnonymizationStrategy>> = vec![
        Box::new(Identity::new()),
        Box::new(GeoIndistinguishability::new(0.01).unwrap()),
        Box::new(GeoIndistinguishability::for_radius(geo::Meters::new(200.0)).unwrap()),
        Box::new(GeoIndistinguishability::new(0.005).unwrap()),
        Box::new(SpeedSmoothing::new(geo::Meters::new(50.0)).unwrap()),
        Box::new(SpeedSmoothing::new(geo::Meters::new(100.0)).unwrap()),
        Box::new(SpeedSmoothing::new(geo::Meters::new(200.0)).unwrap()),
    ];
    for strategy in &strategies {
        let protected = strategy.anonymize(&data.dataset, 7);
        let report = attack.evaluate_reference(&protected, &reference);
        println!(
            "{:<48} {:>7.1}% {:>9.1}%",
            strategy.info().to_string(),
            report.recall * 100.0,
            report.precision * 100.0
        );
        rows.push((
            strategy.info().to_string(),
            PoiAttackReportRow {
                recall: report.recall,
            },
        ));
    }

    // Re-identification: can pseudonyms be linked back to raw profiles?
    println!("\nre-identification attack (linking pseudonyms to profiles)");
    let reid = ReidentificationAttack::default();
    for strategy in &strategies {
        let protected = strategy.anonymize(&data.dataset, 7);
        let report = reid.evaluate(&protected, &data.dataset);
        println!(
            "{:<48} {:>3}/{} users linked ({:.0}%)",
            strategy.info().to_string(),
            report.correct,
            report.attempted,
            report.accuracy * 100.0
        );
    }

    // The paper's claim, checked programmatically.
    let geo_i = rows
        .iter()
        .find(|(name, _)| name.contains("0.0069"))
        .expect("geo-i row");
    assert!(
        geo_i.1.recall >= 0.6,
        "expected the geo-I baseline to leak ≥ 60 % of POIs, got {:.2}",
        geo_i.1.recall
    );
    println!(
        "\n✔ paper claim reproduced: geo-indistinguishability at its practical \
         setting leaks {:.0}% ≥ 60% of POIs; speed smoothing leaks only {:.0}%",
        geo_i.1.recall * 100.0,
        rows.last().expect("smoothing rows exist").1.recall * 100.0
    );
}

struct PoiAttackReportRow {
    recall: f64,
}
