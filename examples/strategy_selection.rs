//! Utility-driven strategy selection: "there is not one unique anonymization
//! strategy that always performs well" (paper, §3). PRIVAPI picks a
//! different optimal mechanism depending on the analysis the dataset is
//! destined for, under the same privacy floor.
//!
//! ```bash
//! cargo run --release --example strategy_selection
//! ```

use crowdsense::mobility::gen::{CityModel, PopulationConfig};
use crowdsense::privapi::prelude::*;

fn main() {
    let city = CityModel::builder().seed(77).build();
    let data = city.generate_with_truth(&PopulationConfig {
        users: 12,
        days: 5,
        sampling_interval_s: 120,
        ..PopulationConfig::default()
    });
    let attack = PoiAttack::default();
    let reference = attack.extract(&data.dataset);

    let objectives = [
        Objective::CrowdedPlaces {
            cell: geo::Meters::new(250.0),
            k: 20,
        },
        Objective::Traffic {
            cell: geo::Meters::new(500.0),
        },
        Objective::Distortion,
    ];

    // One shared pool definition drives middleware, experiments and
    // examples alike; the engine evaluates it in parallel.
    for objective in objectives {
        let selector =
            StrategySelector::new(objective, 0.25, 7).with_pool(StrategyPool::default_pool());
        match selector.select(&data.dataset, &reference) {
            Ok((winner, report)) => {
                println!("{report}");
                println!("→ for {objective}, PRIVAPI deploys: {}\n", winner.info());
            }
            Err(e) => println!("objective {objective}: {e}\n"),
        }
    }
}
